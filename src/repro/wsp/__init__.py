"""Wave Synchronous Parallel (WSP) — the paper's synchronization model.

* :mod:`repro.wsp.staleness` — the s_local / s_global arithmetic and the
  admission rule.
* :mod:`repro.wsp.placement` — default (round-robin), local, and sharded
  (size-balanced / locality-aware / contention-aware) parameter placement.
* :mod:`repro.wsp.parameter_server` — sharded PS simulation with wave
  clocks.
* :mod:`repro.wsp.runtime` — N virtual workers + PS, the full HetPipe
  system.
* :mod:`repro.wsp.measure` — steady-state measurement harness.
"""

from repro.wsp.measure import HetPipeMetrics, measure_hetpipe, measure_run
from repro.wsp.parameter_server import ParameterServerSim
from repro.wsp.placement import (
    PlacementRequest,
    build_placements,
    contention_aware_placement,
    exact_split,
    local_placement,
    locality_aware_placement,
    round_robin_placement,
    size_balanced_placement,
    validate_local_placement,
)
from repro.wsp.runtime import HetPipeRuntime, VirtualWorkerStats
from repro.wsp.staleness import (
    admission_limit,
    desired_version_after_wave,
    global_staleness,
    local_staleness,
    missing_updates,
)

__all__ = [
    "HetPipeMetrics",
    "HetPipeRuntime",
    "ParameterServerSim",
    "PlacementRequest",
    "VirtualWorkerStats",
    "admission_limit",
    "build_placements",
    "contention_aware_placement",
    "desired_version_after_wave",
    "exact_split",
    "global_staleness",
    "local_placement",
    "locality_aware_placement",
    "local_staleness",
    "measure_hetpipe",
    "measure_run",
    "missing_updates",
    "round_robin_placement",
    "size_balanced_placement",
    "validate_local_placement",
]
