"""Steady-state measurement of a full HetPipe run (Fig. 4 / Table 4).

Runs the :class:`~repro.wsp.runtime.HetPipeRuntime` until a warmup
number of waves is globally complete, then measures a window of further
waves: aggregate images/s, average per-wave waiting time, the idle
fraction of waiting, and cross-node traffic split into pipeline
(activations/gradients) and parameter-synchronization bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cluster.topology import Cluster
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.partition.spec import PartitionPlan
from repro.wsp.runtime import HetPipeRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import RunSpec
    from repro.obs.core import ObsCollector, ObsReport


@dataclass(frozen=True)
class HetPipeMetrics:
    """Measured behaviour of a HetPipe configuration."""

    model_name: str
    num_virtual_workers: int
    nm: int
    d: int
    placement: str
    throughput: float  # images/s, all virtual workers
    per_vw_minibatches: tuple[int, ...]
    avg_wait_per_wave: float
    idle_fraction_of_wait: float
    sync_cross_node_bytes_per_wave: float
    pipeline_cross_node_bytes_per_minibatch: float
    measured_waves: int
    window: float
    network_model: str = "dedicated"
    #: total seconds transfers spent queued behind other transfers over
    #: the whole run (PS streams + stage channels, or the shared fabric)
    net_queue_delay_total: float = 0.0
    net_max_queue_depth: int = 0
    #: PS shard slots per stage and (when shards > 1) the shard
    #: placement policy that placed them
    shards: int = 1
    shard_placement: str = "size_balanced"
    #: queueing of PS traffic alone, with its attribution: "streams"
    #: sums the dedicated per-stream channels, "fabric" re-aggregates
    #: the shared fabric's ps.*-tagged flow waits (historically fabric
    #: runs reported zeros here, indistinguishable from no queueing)
    ps_queue_delay_total: float = 0.0
    ps_max_queue_depth: int = 0
    ps_queue_source: str = "streams"
    #: telemetry summary when the run carried an enabled
    #: :class:`~repro.api.spec.ObservabilitySpec`; None otherwise
    observability: "ObsReport | None" = None

    @property
    def total_concurrent_minibatches(self) -> int:
        """Table 4's parenthesised number: Nm summed over VWs."""
        return self.nm * self.num_virtual_workers


def measure_hetpipe(
    cluster: Cluster,
    model: ModelGraph,
    plans: Sequence[PartitionPlan],
    d: int = 0,
    placement: str = "default",
    calibration: Calibration = DEFAULT_CALIBRATION,
    warmup_waves: int = 4,
    measured_waves: int = 12,
    push_every_minibatch: bool = False,
    jitter: float = 0.0,
    network_model: str = "dedicated",
    shards: int = 1,
    shard_placement: str = "size_balanced",
) -> HetPipeMetrics:
    """Measure aggregate steady-state behaviour of a HetPipe deployment."""
    runtime = HetPipeRuntime(
        cluster,
        model,
        plans,
        d=d,
        placement=placement,
        shards=shards,
        shard_placement=shard_placement,
        calibration=calibration,
        push_every_minibatch=push_every_minibatch,
        jitter=jitter,
        network_model=network_model,
    )
    return _measure_runtime(runtime, warmup_waves, measured_waves)


def measure_run(run: "RunSpec", obs: "ObsCollector | None" = None) -> HetPipeMetrics:
    """Spec-driven measurement: everything from one typed RunSpec.

    Builds the cluster/model/plans through :mod:`repro.api.build` (so
    names resolve through the registries) and the runtime through
    :meth:`HetPipeRuntime.from_spec`, then runs the same warmup+window
    measurement as :func:`measure_hetpipe` — the two paths share the
    measurement core and are bit-identical for equivalent inputs.

    With an enabled ``observability`` section (or an explicit ``obs``
    collector, which takes precedence) the run is instrumented and the
    returned metrics carry an :class:`~repro.obs.core.ObsReport`.
    """
    from repro.api.build import build_scenario

    if obs is None and run.observability is not None:
        from repro.obs.core import ObsCollector

        obs = ObsCollector(run.observability)
    scenario = build_scenario(run)
    runtime = HetPipeRuntime.from_spec(
        run,
        cluster=scenario.cluster,
        model=scenario.model,
        plans=list(scenario.plans),
        obs=obs,
    )
    return _measure_runtime(
        runtime,
        run.pipeline.warmup_waves,
        run.pipeline.measured_waves * run.fidelity.waves_scale,
    )


def _measure_runtime(
    runtime: HetPipeRuntime, warmup_waves: int, measured_waves: int
) -> HetPipeMetrics:
    """Drive a built runtime through warmup + window and read the §8 numbers."""
    model = runtime.model
    plans = runtime.plans
    runtime.start()

    runtime.run_until_global_version(warmup_waves - 1)
    t0 = runtime.sim.now
    done0 = [stats.minibatches_done for stats in runtime.stats]
    wait0 = [stats.waiting_time for stats in runtime.stats]
    idle0 = [stats.idle_in_wait for stats in runtime.stats]
    sync0 = runtime.ps.sync_bytes_cross_node
    pipe0 = sum(p.cross_node_bytes() for p in runtime.pipelines)

    runtime.run_until_global_version(warmup_waves + measured_waves - 1)
    t1 = runtime.sim.now
    window = t1 - t0
    done = [stats.minibatches_done - d0 for stats, d0 in zip(runtime.stats, done0)]
    waits = [stats.waiting_time - w0 for stats, w0 in zip(runtime.stats, wait0)]
    idles = [stats.idle_in_wait - i0 for stats, i0 in zip(runtime.stats, idle0)]
    sync_bytes = runtime.ps.sync_bytes_cross_node - sync0
    pipe_bytes = sum(p.cross_node_bytes() for p in runtime.pipelines) - pipe0

    queue_delay, queue_depth = runtime.network_queue_stats()
    ps_queue_delay, ps_queue_depth = runtime.ps_queue_stats()
    total_minibatches = sum(done)
    total_wait = sum(waits)
    total_idle = sum(idles)
    wave_count = measured_waves * len(plans)

    return HetPipeMetrics(
        model_name=model.name,
        num_virtual_workers=len(plans),
        nm=runtime.nm,
        d=runtime.d,
        placement=runtime.placement_policy,
        throughput=total_minibatches * model.batch_size / window,
        per_vw_minibatches=tuple(done),
        avg_wait_per_wave=total_wait / wave_count if wave_count else 0.0,
        idle_fraction_of_wait=(total_idle / total_wait) if total_wait > 0 else 0.0,
        sync_cross_node_bytes_per_wave=sync_bytes / wave_count if wave_count else 0.0,
        pipeline_cross_node_bytes_per_minibatch=(
            pipe_bytes / total_minibatches if total_minibatches else 0.0
        ),
        measured_waves=measured_waves,
        window=window,
        network_model=runtime.network_model,
        net_queue_delay_total=queue_delay,
        net_max_queue_depth=queue_depth,
        shards=runtime.shards,
        shard_placement=runtime.shard_placement_policy,
        ps_queue_delay_total=ps_queue_delay,
        ps_max_queue_depth=ps_queue_depth,
        ps_queue_source="fabric" if runtime.fabric is not None else "streams",
        observability=runtime.obs.report() if runtime.obs is not None else None,
    )
