"""Parameter placement policies (§8.1).

The parameter servers are sharded over all nodes.  A placement maps each
stage of each virtual worker's plan to the shard nodes holding that
stage's layers:

* **default** — layers are placed round-robin over the nodes, as
  TensorFlow's ``replica_device_setter`` does; every stage's parameters
  are spread across all nodes, so most synchronization traffic crosses
  the network.
* **local** — possible when every virtual worker assigns partition ``s``
  to a GPU on the same node (true for ED, where the planner produces an
  identical ordering for identical virtual workers): the shard holding
  partition ``s`` lives on that very node, so parameter synchronization
  causes *no* cross-node traffic at all.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.partition.spec import PartitionPlan

#: For one plan: per stage, the shard destinations as (node_id, bytes).
StagePlacement = list[list[tuple[int, float]]]


def round_robin_placement(
    model: ModelGraph,
    plan: PartitionPlan,
    node_ids: Sequence[int],
) -> StagePlacement:
    """TensorFlow-style default placement.

    ``replica_device_setter`` round-robins *variables* over the PS
    hosts; real layers hold several variables each (conv weight/bias, BN
    gamma/beta, ...), so in expectation every node holds ~1/H of every
    stage's parameter bytes irrespective of where the stage runs.  We
    model exactly that uniform split — which is what makes default
    placement pay cross-node traffic for (H-1)/H of all synchronization
    bytes, the behaviour the 'local' policy eliminates (§8.3).
    """
    if not node_ids:
        raise ConfigurationError("placement needs at least one node")
    share = 1.0 / len(node_ids)
    placement: StagePlacement = []
    for stage in plan.stages:
        stage_bytes = sum(
            model.layers[i].param_bytes for i in range(stage.start, stage.stop)
        )
        placement.append([(node, stage_bytes * share) for node in node_ids])
    return placement


def local_placement(model: ModelGraph, plan: PartitionPlan) -> StagePlacement:
    """Shard for partition ``s`` on the node hosting stage ``s``'s GPU."""
    return [[(stage.gpu.node_id, stage.param_bytes)] for stage in plan.stages]


def validate_local_placement(plans: Sequence[PartitionPlan]) -> None:
    """Local placement requires stage ``s`` on one node across all VWs.

    Raises :class:`ConfigurationError` otherwise — e.g. for NP, where
    each virtual worker occupies a different node, the 'local' shard of
    a partition cannot be local to every virtual worker at once.
    """
    if not plans:
        raise ConfigurationError("no plans given")
    k = plans[0].k
    if any(plan.k != k for plan in plans):
        raise ConfigurationError("plans disagree on stage count")
    for s in range(k):
        nodes = {plan.stages[s].gpu.node_id for plan in plans}
        if len(nodes) > 1:
            raise ConfigurationError(
                f"local placement impossible: stage {s} spans nodes {sorted(nodes)}"
            )


def build_placements(
    model: ModelGraph,
    plans: Sequence[PartitionPlan],
    node_ids: Sequence[int],
    policy: str,
) -> list[StagePlacement]:
    """Placement for every virtual worker under ``policy``.

    ``policy`` is ``"default"`` (round-robin) or ``"local"``.
    """
    if policy == "default":
        return [round_robin_placement(model, plan, node_ids) for plan in plans]
    if policy == "local":
        validate_local_placement(plans)
        return [local_placement(model, plan) for plan in plans]
    raise ConfigurationError(f"unknown placement policy {policy!r}")
