"""Parameter placement policies (§8.1).

The parameter servers are sharded over all nodes.  A placement maps each
stage of each virtual worker's plan to the shard destinations holding
that stage's parameters:

* **default** — layers are placed round-robin over the nodes, as
  TensorFlow's ``replica_device_setter`` does; every stage's parameters
  are spread across all nodes, so most synchronization traffic crosses
  the network.
* **local** — possible when every virtual worker assigns partition ``s``
  to a GPU on the same node (true for ED, where the planner produces an
  identical ordering for identical virtual workers): the shard holding
  partition ``s`` lives on that very node, so parameter synchronization
  causes *no* cross-node traffic at all.

With ``shards > 1`` each stage's parameters are additionally split into
K shard slots, each its own PS process with its own push/pull stream and
apply queue — the ``ShardedPS`` pattern.  Three policies pick the slot
hosts:

* **size_balanced** — slot ``j`` lives on ``node_ids[j % H]``: every
  node hosts the same share of every stage, balancing apply load.
* **locality_aware** — stage ``s``'s slots round-robin over the nodes
  that actually *run* stage ``s`` in some virtual worker, so shard
  traffic stays on nodes already touching those parameters (fully local
  under ED).
* **contention_aware** — greedy assignment minimizing the projected
  peak utilization of the shared fabric resources (per-node NIC, host
  lane, and the cluster IB switch) under the estimated per-wave PS
  traffic, using the :class:`~repro.netsim.fabric.FabricSpec` scaled
  bandwidths.

All policies are resolved through the ``PLACEMENTS`` registry
(:mod:`repro.api.registry`); unknown names raise
:class:`~repro.errors.UnknownNameError` listing the available policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.partition.spec import PartitionPlan

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.topology import Cluster
    from repro.netsim.fabric import FabricSpec

#: For one plan: per stage, the shard destinations as (node_id, bytes).
StagePlacement = list[list[tuple[int, float]]]


def exact_split(total: float, parts: int) -> list[float]:
    """Split ``total`` bytes into ``parts`` shares summing *exactly* to it.

    Every share is the naive ``total * (1/parts)`` of the historical
    uniform split; only when the left-to-right float sum of those shares
    fails to reconstruct ``total`` (e.g. 3-way splits of awkward totals)
    is the last share replaced by the exact residual ``total - head``.
    The residual subtraction is exact (``head`` is within a factor two
    of ``total`` for ``parts >= 2``, Sterbenz), so the returned shares
    always sum to ``total`` bit-for-bit while already-conserving splits
    stay untouched.
    """
    if parts < 1:
        raise ConfigurationError(f"cannot split into {parts} parts")
    if parts == 1:
        return [total]
    share = total * (1.0 / parts)
    head = 0.0
    for _ in range(parts - 1):
        head += share
    last = share if head + share == total else total - head
    return [share] * (parts - 1) + [last]


def round_robin_placement(
    model: ModelGraph,
    plan: PartitionPlan,
    node_ids: Sequence[int],
) -> StagePlacement:
    """TensorFlow-style default placement.

    ``replica_device_setter`` round-robins *variables* over the PS
    hosts; real layers hold several variables each (conv weight/bias, BN
    gamma/beta, ...), so in expectation every node holds ~1/H of every
    stage's parameter bytes irrespective of where the stage runs.  We
    model exactly that uniform split — which is what makes default
    placement pay cross-node traffic for (H-1)/H of all synchronization
    bytes, the behaviour the 'local' policy eliminates (§8.3).  The
    per-node shares come from :func:`exact_split`, so they sum to the
    stage total exactly.
    """
    if not node_ids:
        raise ConfigurationError("placement needs at least one node")
    placement: StagePlacement = []
    for stage in plan.stages:
        stage_bytes = sum(
            model.layers[i].param_bytes for i in range(stage.start, stage.stop)
        )
        shares = exact_split(stage_bytes, len(node_ids))
        placement.append(list(zip(node_ids, shares)))
    return placement


def local_placement(model: ModelGraph, plan: PartitionPlan) -> StagePlacement:
    """Shard for partition ``s`` on the node hosting stage ``s``'s GPU."""
    return [[(stage.gpu.node_id, stage.param_bytes)] for stage in plan.stages]


def validate_local_placement(plans: Sequence[PartitionPlan]) -> None:
    """Local placement requires stage ``s`` on one node across all VWs.

    Raises :class:`ConfigurationError` otherwise — e.g. for NP, where
    each virtual worker occupies a different node, the 'local' shard of
    a partition cannot be local to every virtual worker at once.
    """
    if not plans:
        raise ConfigurationError("no plans given")
    k = plans[0].k
    if any(plan.k != k for plan in plans):
        raise ConfigurationError("plans disagree on stage count")
    for s in range(k):
        nodes = {plan.stages[s].gpu.node_id for plan in plans}
        if len(nodes) > 1:
            raise ConfigurationError(
                f"local placement impossible: stage {s} spans nodes {sorted(nodes)}"
            )


# ----------------------------------------------------------------------
# sharded policies (shards > 1)
# ----------------------------------------------------------------------
# Shard identity is the slot position j in a stage's destination list:
# slot j of stage s maps to ONE node for every virtual worker, so all
# workers push to / pull from the same K PS processes per stage.


def _shard_map_from_slots(
    plan: PartitionPlan, node_of_slot: Sequence[Sequence[int]]
) -> StagePlacement:
    """Per-plan placement from a shared ``(stage, slot) -> node`` map."""
    placement: StagePlacement = []
    for stage in plan.stages:
        slots = node_of_slot[stage.index]
        shares = exact_split(stage.param_bytes, len(slots))
        placement.append(list(zip(slots, shares)))
    return placement


def size_balanced_placement(
    plans: Sequence[PartitionPlan], node_ids: Sequence[int], shards: int
) -> list[StagePlacement]:
    """Slot ``j`` of every stage lives on ``node_ids[j % H]``.

    Every node hosts the same byte share of every stage (the ShardedPS
    layout), so shard apply load is balanced but (H-1)/H of the traffic
    still crosses the network.
    """
    if not node_ids:
        raise ConfigurationError("placement needs at least one node")
    max_k = max(plan.k for plan in plans)
    node_of_slot = [
        [node_ids[j % len(node_ids)] for j in range(shards)] for _ in range(max_k)
    ]
    return [_shard_map_from_slots(plan, node_of_slot) for plan in plans]


def locality_aware_placement(
    plans: Sequence[PartitionPlan], node_ids: Sequence[int], shards: int
) -> list[StagePlacement]:
    """Stage ``s``'s slots round-robin over the nodes running stage ``s``.

    A stage's shards only live on nodes whose GPUs compute that stage in
    *some* virtual worker, so pushes/pulls from those workers stay
    node-local.  Under ED (every worker runs stage ``s`` on the same
    node) all traffic is local; under NP the slots spread over the
    workers' home nodes.
    """
    if not node_ids:
        raise ConfigurationError("placement needs at least one node")
    max_k = max(plan.k for plan in plans)
    node_of_slot: list[list[int]] = []
    for s in range(max_k):
        hosts = sorted(
            {plan.stages[s].gpu.node_id for plan in plans if s < plan.k}
        ) or list(node_ids)
        node_of_slot.append([hosts[j % len(hosts)] for j in range(shards)])
    return [_shard_map_from_slots(plan, node_of_slot) for plan in plans]


def contention_aware_placement(
    plans: Sequence[PartitionPlan],
    node_ids: Sequence[int],
    shards: int,
    cluster: "Cluster",
    fabric_spec: "FabricSpec | None" = None,
) -> list[StagePlacement]:
    """Greedy slot assignment minimizing projected fabric hot spots.

    For each ``(stage, slot)`` in order, pick the node whose assignment
    yields the lowest projected *peak* utilization across the shared
    fabric resources (per-node host lanes and NICs, the cluster-wide IB
    switch), charging each candidate with the per-wave push+pull seconds
    the slot would add.  Bandwidths come from the cluster interconnect
    scaled by the :class:`~repro.netsim.fabric.FabricSpec`, so a fuzz-
    drawn congested fabric shifts the placement the same way it shifts
    the simulated contention.  Deterministic: ties break on the lowest
    node id.
    """
    from repro.netsim.fabric import DEFAULT_FABRIC_SPEC

    if not node_ids:
        raise ConfigurationError("placement needs at least one node")
    if cluster is None:
        raise ConfigurationError("contention_aware placement needs the cluster")
    spec = fabric_spec if fabric_spec is not None else DEFAULT_FABRIC_SPEC
    ic = cluster.interconnect
    host_bw = ic.pcie_effective * spec.pcie_lane_scale
    nic_bw = ic.ib_effective * spec.nic_scale
    ib_scale = (
        spec.ib_fabric_scale
        if spec.ib_fabric_scale is not None
        else max(1.0, len(cluster.nodes) / 2.0)
    )
    ib_bw = ic.ib_effective * ib_scale

    load: dict[tuple[str, int], float] = {}
    for node in node_ids:
        load[("host", node)] = 0.0
        load[("nic", node)] = 0.0
    load[("ib", -1)] = 0.0

    max_k = max(plan.k for plan in plans)
    # Per stage: the worker home nodes pushing/pulling it, and the mean
    # per-worker byte share one slot carries (estimation only — the
    # emitted placement uses each plan's exact stage bytes).
    stage_sources: list[list[int]] = []
    slot_bytes: list[float] = []
    for s in range(max_k):
        sources = [plan.stages[s].gpu.node_id for plan in plans if s < plan.k]
        sizes = [plan.stages[s].param_bytes for plan in plans if s < plan.k]
        stage_sources.append(sources)
        slot_bytes.append((sum(sizes) / len(sizes)) / shards if sizes else 0.0)

    def added(slot_node: int, s: int) -> dict[tuple[str, int], float]:
        # Each worker both pushes and pulls the slot's bytes every wave.
        delta: dict[tuple[str, int], float] = {}
        for src in stage_sources[s]:
            traffic = 2.0 * slot_bytes[s]
            delta[("host", slot_node)] = delta.get(("host", slot_node), 0.0) + traffic / host_bw
            delta[("host", src)] = delta.get(("host", src), 0.0) + traffic / host_bw
            if src != slot_node:
                delta[("nic", src)] = delta.get(("nic", src), 0.0) + traffic / nic_bw
                delta[("nic", slot_node)] = delta.get(("nic", slot_node), 0.0) + traffic / nic_bw
                delta[("ib", -1)] = delta.get(("ib", -1), 0.0) + traffic / ib_bw
        return delta

    node_of_slot: list[list[int]] = [[] for _ in range(max_k)]
    for s in range(max_k):
        for _slot in range(shards):
            best_node = None
            best_score = None
            for node in node_ids:
                delta = added(node, s)
                score = max(
                    load[key] + delta.get(key, 0.0) for key in load
                )
                if best_score is None or score < best_score:
                    best_score = score
                    best_node = node
            assert best_node is not None
            for key, extra in added(best_node, s).items():
                load[key] = load.get(key, 0.0) + extra
            node_of_slot[s].append(best_node)
    return [_shard_map_from_slots(plan, node_of_slot) for plan in plans]


# ----------------------------------------------------------------------
# registry-facing entry points
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementRequest:
    """Everything a placement policy may consult.

    ``cluster`` and ``fabric_spec`` are optional context: only the
    contention-aware policy needs the cluster, and the fabric spec
    defaults to the uncongested model when absent.
    """

    model: ModelGraph
    plans: tuple[PartitionPlan, ...]
    node_ids: tuple[int, ...]
    shards: int = 1
    cluster: "Cluster | None" = None
    fabric_spec: "FabricSpec | None" = None


def _require_unsharded(request: PlacementRequest, policy: str) -> None:
    if request.shards != 1:
        raise ConfigurationError(
            f"placement policy {policy!r} does not shard stages; "
            f"use shards=1 or a shard placement policy "
            f"(size_balanced/locality_aware/contention_aware)"
        )


def _policy_default(request: PlacementRequest) -> list[StagePlacement]:
    _require_unsharded(request, "default")
    return [
        round_robin_placement(request.model, plan, request.node_ids)
        for plan in request.plans
    ]


def _policy_local(request: PlacementRequest) -> list[StagePlacement]:
    _require_unsharded(request, "local")
    validate_local_placement(request.plans)
    return [local_placement(request.model, plan) for plan in request.plans]


def _policy_size_balanced(request: PlacementRequest) -> list[StagePlacement]:
    return size_balanced_placement(request.plans, request.node_ids, request.shards)


def _policy_locality_aware(request: PlacementRequest) -> list[StagePlacement]:
    return locality_aware_placement(request.plans, request.node_ids, request.shards)


def _policy_contention_aware(request: PlacementRequest) -> list[StagePlacement]:
    if request.cluster is None:
        raise ConfigurationError(
            "contention_aware placement needs the cluster topology; "
            "build placements via HetPipeRuntime or pass cluster= to "
            "build_placements"
        )
    return contention_aware_placement(
        request.plans,
        request.node_ids,
        request.shards,
        request.cluster,
        request.fabric_spec,
    )


def build_placements(
    model: ModelGraph,
    plans: Sequence[PartitionPlan],
    node_ids: Sequence[int],
    policy: str,
    shards: int = 1,
    cluster: "Cluster | None" = None,
    fabric_spec: "FabricSpec | None" = None,
) -> list[StagePlacement]:
    """Placement for every virtual worker under ``policy``.

    Policies are looked up in the ``PLACEMENTS`` registry; an unknown
    name raises :class:`~repro.errors.UnknownNameError` listing the
    available policies (a :class:`ConfigurationError` subclass, so the
    CLI exits 2).
    """
    from repro.api.registry import PLACEMENTS  # local: registry imports us lazily

    factory = PLACEMENTS.get(policy)
    request = PlacementRequest(
        model=model,
        plans=tuple(plans),
        node_ids=tuple(node_ids),
        shards=shards,
        cluster=cluster,
        fabric_spec=fabric_spec,
    )
    return factory(request)
