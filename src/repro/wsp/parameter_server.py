"""Simulated sharded parameter server with WSP clocks (§5).

The PS tracks, per virtual worker, the highest wave whose aggregated
update has been fully applied (``pushed_wave``); the *global version* is
the minimum over workers — wave ``c`` is globally complete when every
worker has pushed it, which is exactly the paper's ``c_global`` advance
rule.  Pushes and pulls are simulated as transfers over per-node-pair
channels (PCIe within a node, the fitted InfiniBand model across nodes)
plus a serialized apply cost at each shard host, so parameter-server
contention — the reason the paper permits global staleness — emerges
naturally when several virtual workers push at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.topology import Cluster
from repro.errors import SimulationError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.netsim.fabric import Endpoint, Fabric
from repro.sim.engine import Simulator
from repro.sim.resources import Channel, Processor
from repro.wsp.placement import StagePlacement


@dataclass
class _VersionWaiter:
    desired: int
    callback: Callable[[], None]
    #: virtual worker awaiting the version, when known — a fast-forward
    #: skip advances ``desired`` by that worker's coalesced waves
    vw: int | None = None


class ParameterServerSim:
    """Sharded PS: transfers, apply costs, and WSP clock accounting."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        num_virtual_workers: int,
        calibration: Calibration = DEFAULT_CALIBRATION,
        fabric: Fabric | None = None,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        self.sim = sim
        self.cluster = cluster
        self.calibration = calibration
        #: shared network fabric; None keeps the historical dedicated
        #: per-(worker, stage, direction) gRPC streams
        self.fabric = fabric
        #: PS shard slots per stage; with K > 1 each destination index in
        #: a push/pull source list is its own PS process with a dedicated
        #: stream and apply queue.  1 is the historical single-endpoint
        #: model and leaves every code path bit-identical.
        self.shards = shards
        #: cumulative push+pull bytes per shard slot (empty at shards=1 —
        #: the per-node accounting already covers the unsharded case)
        self.shard_bytes: list[float] = [0.0] * shards if shards > 1 else []
        #: per-(node, shard slot) apply queues, lazily created; the
        #: per-node ``_apply`` processors serve only the unsharded model
        self._shard_apply: dict[tuple[int, int], Processor] = {}
        self.pushed_wave = [-1] * num_virtual_workers
        self.global_version = -1
        self.pushes_completed = 0
        self.pulls_completed = 0
        self.sync_bytes_total = 0.0
        self.sync_bytes_cross_node = 0.0
        self._waiters: list[_VersionWaiter] = []
        #: observers called as (vw_index, wave, global_version) right
        #: after each push is recorded; the invariant oracles use this to
        #: watch clock advancement without patching internals
        self._push_observers: list[Callable[[int, int, int], None]] = []
        self._apply: dict[int, Processor] = {
            node.node_id: Processor(sim, f"ps.apply.n{node.node_id}") for node in cluster.nodes
        }
        # Keyed (vw, stage, direction, locality) unsharded and
        # (vw, stage, direction, "k{slot}") sharded; the two shapes never
        # coexist in one PS instance.
        self._channels: dict[tuple[int, int, str, object], Channel] = {}
        # Pushes from one worker apply strictly in wave order; when the
        # pipeline races ahead (D > 0) later waves queue here until the
        # previous push is fully recorded.
        self._push_in_flight = [False] * num_virtual_workers
        self._push_backlog: list[list[tuple[int, list, Callable[[], None] | None]]] = [
            [] for _ in range(num_virtual_workers)
        ]
        #: fault-injection visibility surface (repro.faults.FaultState);
        #: None keeps every send/apply path bit-identical to no-faults
        self._faults = None
        #: current link-degradation scale, applied to cross-node streams
        #: (including ones lazily created during the fault window)
        self._link_scale = 1.0

    # ------------------------------------------------------------------
    # fabric
    # ------------------------------------------------------------------
    # One serialized stream per (virtual worker, stage, direction, and
    # locality class): TensorFlow moves a worker's variables to/from the
    # parameter servers over per-endpoint gRPC streams whose sustained
    # rate is software-bound, so a stage's cross-node pushes do NOT fan
    # out at line rate — they serialize at the achieved IB rate, while
    # different virtual workers' streams do proceed in parallel (the
    # 56 Gb/s port is far from saturated by one stream).

    def _stream(
        self, vw_index: int, stage: int, direction: str, cross_node: bool,
        shard: int | None = None,
    ) -> Channel:
        if shard is None:
            key: tuple[int, int, str, object] = (vw_index, stage, direction, cross_node)
            suffix = ""
        else:
            key = (vw_index, stage, direction, f"k{shard}")
            suffix = f".k{shard}"
        channel = self._channels.get(key)
        if channel is None:
            ic = self.cluster.interconnect
            if cross_node:
                channel = Channel(self.sim, ic.ib_effective, ic.ib_latency, f"ps.vw{vw_index}.s{stage}.{direction}{suffix}.ib")
                if self._link_scale != 1.0:
                    channel.rate_scale = self._link_scale
            else:
                channel = Channel(self.sim, ic.pcie_effective, ic.pcie_latency, f"ps.vw{vw_index}.s{stage}.{direction}{suffix}.local")
            self._channels[key] = channel
        return channel

    def _send(
        self,
        vw_index: int,
        stage: int,
        direction: str,
        src_node: int,
        dst_node: int,
        nbytes: float,
        on_complete: Callable[[], None] | None,
        shard: int | None = None,
        _attempt: int = 0,
    ) -> None:
        """Move ``nbytes`` from ``src_node`` to ``dst_node`` host memory.

        Dedicated mode uses the per-stream channels above (one per shard
        slot when sharded, so a stage's K shards move in parallel);
        shared mode routes one flow over the fabric, contending with
        every other transfer crossing the same lanes, switches, and NICs.

        Under fault injection a send whose PS endpoint (or whose worker
        node) is down does not start: it retries with exponential backoff
        until the endpoint recovers or the retry budget is exhausted (an
        unrecoverable failure).  A permanent failover redirects the PS
        endpoint to the surviving host first.
        """
        faults = self._faults
        if faults is not None:
            # Whole-node failover re-homes either endpoint; a PS-only
            # failover re-homes just the PS side of the transfer.
            src_node = faults.node_redirect.get(src_node, src_node)
            dst_node = faults.node_redirect.get(dst_node, dst_node)
            if direction == "push":
                dst_node = faults.redirect.get(dst_node, dst_node)
                ps_node, other = dst_node, src_node
            else:
                src_node = faults.redirect.get(src_node, src_node)
                ps_node, other = src_node, dst_node
            if faults.blocks_ps(ps_node, shard) or other in faults.down_nodes:
                faults.retry(
                    _attempt,
                    lambda: self._send(
                        vw_index, stage, direction, src_node, dst_node,
                        nbytes, on_complete, shard, _attempt + 1,
                    ),
                    f"ps.vw{vw_index}.s{stage}.{direction}",
                )
                return
            if _attempt > 0:
                faults.send_resolved()
        if self.fabric is not None:
            slot = "" if shard is None else f".k{shard}"
            self.fabric.transfer(
                Endpoint.host(src_node),
                Endpoint.host(dst_node),
                nbytes,
                on_complete,
                tag=f"ps.vw{vw_index}.s{stage}{slot}.{direction}",
            )
            return
        stream = self._stream(vw_index, stage, direction, dst_node != src_node, shard)
        stream.transfer(nbytes, on_complete)

    def _applier(self, shard_node: int, shard: int | None) -> Processor:
        """The apply queue for one destination: per node unsharded, per
        (node, shard slot) sharded — each shard is its own PS process.

        Consults the failover redirect so in-flight transfers that were
        addressed to a since-failed node apply at its replacement."""
        if self._faults is not None:
            shard_node = self._faults.redirect.get(shard_node, shard_node)
        if shard is None:
            return self._apply[shard_node]
        key = (shard_node, shard)
        proc = self._shard_apply.get(key)
        if proc is None:
            proc = Processor(self.sim, f"ps.apply.n{shard_node}.k{shard}")
            if self._faults is not None and self._faults.blocks_ps(shard_node, shard):
                proc.fail()
            self._shard_apply[key] = proc
        return proc

    def queue_stats(self) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)`` of PS traffic.

        Dedicated mode aggregates the PS's own per-stream channels.
        Fabric mode aggregates the fabric's ``ps.*``-tagged flows (wait
        per flow, peak concurrently-waiting flows) — historically this
        silently returned zeros, indistinguishable from "no queueing";
        the metrics layer now also labels which attribution applies.
        """
        if self.fabric is not None:
            return self.fabric.tagged_queue_stats("ps.")
        total = sum(ch.queue_delay_total for ch in self._channels.values())
        depth = max((ch.max_queue_depth for ch in self._channels.values()), default=0)
        return total, depth

    def _account(
        self, src_node: int, dst_node: int, nbytes: float, shard: int | None = None
    ) -> None:
        self.sync_bytes_total += nbytes
        if src_node != dst_node:
            self.sync_bytes_cross_node += nbytes
        if shard is not None:
            self.shard_bytes[shard] += nbytes

    def _shard_of(self, dest_index: int) -> int | None:
        """Sharded PS: destination index IS the shard slot; unsharded:
        destinations are plain per-node splits, no slot identity."""
        return dest_index if self.shards > 1 else None

    # ------------------------------------------------------------------
    # push / pull
    # ------------------------------------------------------------------

    def push(
        self,
        vw_index: int,
        wave: int,
        sources: list[tuple[int, list[tuple[int, float]]]],
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        """Push one wave's aggregated updates.

        ``sources`` lists, per stage, ``(src_node, [(shard_node, bytes)])``.
        The wave is recorded (and the global version possibly advanced)
        only after every transfer *and* every shard-side apply finishes.
        A worker's waves apply strictly in order: if its previous push is
        still in flight, this one queues behind it.
        """
        expected = self.expected_next_wave(vw_index)
        if wave != expected:
            raise SimulationError(
                f"vw{vw_index} pushed wave {wave}, expected {expected}"
            )
        if self._push_in_flight[vw_index]:
            self._push_backlog[vw_index].append((wave, sources, on_complete))
            return
        self._begin_push(vw_index, wave, sources, on_complete)

    def _begin_push(
        self,
        vw_index: int,
        wave: int,
        sources: list[tuple[int, list[tuple[int, float]]]],
        on_complete: Callable[[], None] | None,
    ) -> None:
        self._push_in_flight[vw_index] = True
        outstanding = sum(len(dests) for _, dests in sources)
        if outstanding == 0:
            self._push_recorded(vw_index, wave, on_complete)
            return

        state = {"left": outstanding}

        def transfer_done(shard_node: int, nbytes: float, shard: int | None) -> None:
            apply_time = nbytes / self.calibration.ps_apply_bandwidth
            self._applier(shard_node, shard).submit(apply_time, lambda: applied())

        def applied() -> None:
            state["left"] -= 1
            if state["left"] == 0:
                self._push_recorded(vw_index, wave, on_complete)

        for stage, (src_node, dests) in enumerate(sources):
            for index, (shard_node, nbytes) in enumerate(dests):
                shard = self._shard_of(index)
                self._account(src_node, shard_node, nbytes, shard)
                self._send(
                    vw_index, stage, "push", src_node, shard_node, nbytes,
                    (lambda shard_node=shard_node, nbytes=nbytes, shard=shard: transfer_done(shard_node, nbytes, shard)),
                    shard,
                )

    def expected_next_wave(self, vw_index: int) -> int:
        """The wave ``vw_index`` must push next: everything recorded plus
        everything already in flight or backlogged is committed."""
        return (
            self.pushed_wave[vw_index]
            + 1
            + len(self._push_backlog[vw_index])
            + (1 if self._push_in_flight[vw_index] else 0)
        )

    def subscribe_push(self, observer: Callable[[int, int, int], None]) -> None:
        """Call ``observer(vw_index, wave, global_version)`` per recorded push."""
        self._push_observers.append(observer)

    def _push_recorded(self, vw_index: int, wave: int, on_complete: Callable[[], None] | None) -> None:
        self.pushed_wave[vw_index] = wave
        self.pushes_completed += 1
        self._push_in_flight[vw_index] = False
        new_version = min(self.pushed_wave)
        advanced = new_version > self.global_version
        if advanced:
            self.global_version = new_version
            if self._faults is not None:
                self._faults.on_version_advance(self.global_version, self.sim.now)
        # Observers run before waiter callbacks so they see every push in
        # recording order, ahead of any cascade the version advance starts.
        for observer in self._push_observers:
            observer(vw_index, wave, self.global_version)
        if advanced:
            self._fire_waiters()
        if on_complete is not None:
            on_complete()
        if self._push_backlog[vw_index] and not self._push_in_flight[vw_index]:
            next_wave, sources, callback = self._push_backlog[vw_index].pop(0)
            self._begin_push(vw_index, next_wave, sources, callback)

    def push_bytes_only(
        self, vw_index: int, sources: list[tuple[int, list[tuple[int, float]]]]
    ) -> None:
        """Move update bytes without advancing any clock.

        Used by the per-minibatch-push ablation: the traffic and shard
        apply cost of a push, repeated every minibatch, with the wave
        clock still advancing only at wave boundaries.
        """
        for stage, (src_node, dests) in enumerate(sources):
            for index, (shard_node, nbytes) in enumerate(dests):
                shard = self._shard_of(index)
                self._account(src_node, shard_node, nbytes, shard)
                self._send(
                    vw_index, stage, "push", src_node, shard_node, nbytes,
                    (
                        lambda shard_node=shard_node, nbytes=nbytes, shard=shard: self._applier(
                            shard_node, shard
                        ).submit(nbytes / self.calibration.ps_apply_bandwidth)
                    ),
                    shard,
                )

    def pull(
        self,
        vw_index: int,
        sources: list[tuple[int, list[tuple[int, float]]]],
        on_complete: Callable[[int], None],
    ) -> None:
        """Pull the global weights; ``on_complete`` receives the version
        snapshot taken when the pull began (the weights read)."""
        version = self.global_version
        outstanding = sum(len(dests) for _, dests in sources)
        if outstanding == 0:
            self.pulls_completed += 1
            on_complete(version)
            return
        state = {"left": outstanding}

        def transfer_done() -> None:
            state["left"] -= 1
            if state["left"] == 0:
                self.pulls_completed += 1
                on_complete(version)

        for stage, (dst_node, dests) in enumerate(sources):
            for index, (shard_node, nbytes) in enumerate(dests):
                shard = self._shard_of(index)
                self._account(shard_node, dst_node, nbytes, shard)
                self._send(
                    vw_index, stage, "pull", shard_node, dst_node, nbytes,
                    transfer_done, shard,
                )

    # ------------------------------------------------------------------
    # fault injection (see repro.faults)
    # ------------------------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Take every PS process hosted on ``node`` down: existing apply
        queues stop serving (queued applies wait for the rejoin) and new
        sends addressed to the node block in the retry path."""
        self._apply[node].fail()
        for (n, _), proc in self._shard_apply.items():
            if n == node:
                proc.fail()

    def restore_node(self, node: int) -> None:
        """Rejoin ``node``'s PS processes: queued applies resume in order."""
        self._apply[node].restore()
        for (n, _), proc in self._shard_apply.items():
            if n == node:
                proc.restore()

    def fail_process(self, node: int, slot: int) -> None:
        """Kill one sharded PS process (``slot`` hosted on ``node``)."""
        proc = self._shard_apply.get((node, slot))
        if proc is not None:
            proc.fail()

    def restore_process(self, node: int, slot: int) -> None:
        proc = self._shard_apply.get((node, slot))
        if proc is not None:
            proc.restore()

    def migrate_node(self, dead: int, replacement: int) -> None:
        """Permanent failover: re-home ``dead``'s PS state on
        ``replacement``.  Queued applies drain across (order preserved),
        the dead processors are halted, and the redirect map points both
        in-flight completions and future sends at the survivor."""
        if self._faults is None:
            raise SimulationError("migrate_node requires fault injection")
        self._faults.redirect[dead] = replacement
        self._apply[dead].drain_to(self._apply[replacement])
        self._apply[dead].halt()
        for (n, k), proc in list(self._shard_apply.items()):
            if n == dead:
                target = self._applier(replacement, k)
                if target is not proc:
                    proc.drain_to(target)
                proc.halt()

    def set_link_scale(self, scale: float) -> None:
        """Degrade (or restore) the cross-node PS streams.  Dedicated
        mode only — in fabric mode the fabric itself is scaled."""
        self._link_scale = scale
        for channel in self._channels.values():
            if channel.name.endswith(".ib"):
                channel.rate_scale = scale

    # ------------------------------------------------------------------
    # version subscriptions
    # ------------------------------------------------------------------

    def when_version(
        self, desired: int, callback: Callable[[], None], vw: int | None = None
    ) -> None:
        """Run ``callback`` once ``global_version >= desired`` (maybe now).

        ``vw`` tags the waiter with the virtual worker it belongs to so a
        steady-state fast-forward skip can retarget pending waits.
        """
        if self.global_version >= desired:
            callback()
            return
        self._waiters.append(_VersionWaiter(desired, callback, vw))

    def _fire_waiters(self) -> None:
        ready = [w for w in self._waiters if self.global_version >= w.desired]
        self._waiters = [w for w in self._waiters if self.global_version < w.desired]
        for waiter in ready:
            waiter.callback()

    # ------------------------------------------------------------------
    # steady-state fast-forward (see repro.sim.fastforward)
    # ------------------------------------------------------------------

    def ff_counters(self) -> tuple:
        """Cumulative counters whose per-cycle deltas define steady state.

        Layout (the runtime driver indexes into it): four traffic/opcount
        scalars, one ``pushed_wave`` entry per virtual worker, the global
        version, then (sharded PS only) one cumulative byte counter per
        shard slot — appended so every existing index keeps its meaning
        and the unsharded tuple is unchanged.
        """
        return (
            self.pushes_completed,
            self.pulls_completed,
            self.sync_bytes_total,
            self.sync_bytes_cross_node,
            *self.pushed_wave,
            self.global_version,
            *self.shard_bytes,
        )

    def ff_levels(self, now: float) -> tuple:
        """Structural state that must repeat exactly across cycles."""
        return (
            tuple(self._push_in_flight),
            tuple(len(backlog) for backlog in self._push_backlog),
            tuple(
                sorted(
                    (-1 if w.vw is None else w.vw, w.desired - self.global_version)
                    for w in self._waiters
                )
            ),
        )

    def ff_advance(self, cycles: int, deltas: tuple, dt: float) -> None:
        """Apply ``cycles`` cycles' clock and traffic advancement.

        Pending version waiters and backlogged waves are retargeted by
        their worker's coalesced wave count — the wait relationship is
        part of the periodic pattern, so it shifts with it.
        """
        self.pushes_completed += cycles * deltas[0]
        self.pulls_completed += cycles * deltas[1]
        self.sync_bytes_total += cycles * deltas[2]
        self.sync_bytes_cross_node += cycles * deltas[3]
        num = len(self.pushed_wave)
        wave_deltas = deltas[4 : 4 + num]
        for vw in range(num):
            self.pushed_wave[vw] += cycles * wave_deltas[vw]
        self.global_version += cycles * deltas[4 + num]
        for slot in range(len(self.shard_bytes)):
            self.shard_bytes[slot] += cycles * deltas[5 + num + slot]
        for waiter in self._waiters:
            if waiter.vw is None:
                raise SimulationError(
                    "fast-forward over an untagged version waiter; "
                    "when_version(..., vw=...) is required under fast_forward"
                )
            waiter.desired += cycles * wave_deltas[waiter.vw]
        if any(self._push_backlog):
            # Unreachable by construction: a backlog entry implies its
            # worker's push is in flight, and the runtime driver refuses
            # to skip while any push is in flight (the in-flight wave is
            # closure-captured and cannot be retargeted).  Fail loudly
            # rather than mask a future eligibility bug.
            raise SimulationError(
                "fast-forward over a non-empty push backlog; skips must "
                "be refused while any push is in flight"
            )
