"""The HetPipe runtime: N virtual workers + WSP parameter server.

Wires each virtual worker's pipeline to the parameter server through a
staleness gate implementing the §5 admission rule, drives wave pushes
and D-gated pulls, and collects the measurements §8 reports: aggregate
throughput, per-worker waiting time for global weights, the fraction of
waiting during which the worker was truly idle (the paper's 18% claim),
and cross-node traffic split into pipeline and synchronization bytes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, SimulationError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.netsim import NETWORK_MODELS
from repro.netsim.fabric import DEFAULT_FABRIC_SPEC, Fabric, FabricSpec
from repro.partition.spec import PartitionPlan
from repro.pipeline.variants import DEFAULT_VARIANT, build_variant_gate, get_variant
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim.engine import Simulator
from repro.sim.fastforward import (
    FastForwardSummary,
    SteadyStateDetector,
    advance_components,
    collect_counters,
    collect_shape,
    pipeline_components,
    validate_fidelity,
)
from repro.sim.trace import Trace
from repro.wsp.parameter_server import ParameterServerSim
from repro.wsp.placement import StagePlacement, build_placements
from repro.wsp.staleness import admission_limit, desired_version_after_wave

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle (invariants -> wsp)
    from repro.api.spec import RunSpec
    from repro.sim.invariants import RuntimeOracle


class _WSPGate:
    """Admission gate enforcing the global staleness bound for one VW."""

    def __init__(self, d: int, nm: int) -> None:
        self.d = d
        self.nm = nm
        self.pulled_version = -1
        self._wake: Callable[[], None] | None = None

    def may_start(self, minibatch: int) -> bool:
        return minibatch <= admission_limit(self.pulled_version, self.d, self.nm)

    def subscribe(self, wake: Callable[[], None]) -> None:
        self._wake = wake

    def advance(self, version: int) -> None:
        if version > self.pulled_version:
            self.pulled_version = version
            if self._wake is not None:
                self._wake()


@dataclass
class VirtualWorkerStats:
    """Per-virtual-worker accounting over a run."""

    minibatches_done: int = 0
    waves_pushed: int = 0
    waiting_time: float = 0.0  # push-complete -> pull-complete
    idle_in_wait: float = 0.0  # portion of waiting with all GPUs idle
    pulls: int = 0
    wave_times: list[float] = field(default_factory=list)


class HetPipeRuntime:
    """N virtual workers running WSP data parallelism."""

    def __init__(
        self,
        cluster: Cluster,
        model: ModelGraph,
        plans: Sequence[PartitionPlan],
        d: int = 0,
        placement: str = "default",
        shards: int = 1,
        shard_placement: str = "size_balanced",
        calibration: Calibration = DEFAULT_CALIBRATION,
        trace: Trace | None = None,
        push_every_minibatch: bool = False,
        jitter: float = 0.0,
        oracles: "Sequence[RuntimeOracle]" = (),
        network_model: str = "dedicated",
        fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
        fidelity: str = "full",
        obs=None,
        planner: str = "dp",
        variant: str = DEFAULT_VARIANT,
        _spec_constructed: bool = False,
    ) -> None:
        validate_fidelity(fidelity)
        if fidelity != "full" and not _spec_constructed:
            # Spec-addressable axes belong in a RunSpec; the direct
            # kwarg stays as a shim (bit-identical — proven by
            # tests/test_api_run.py's digest-equality test).
            warnings.warn(
                "passing fidelity= directly to HetPipeRuntime is "
                "deprecated; describe the run with a repro.api.RunSpec "
                "and construct via HetPipeRuntime.from_spec",
                DeprecationWarning,
                stacklevel=2,
            )
        if not plans:
            raise ConfigurationError("need at least one virtual worker plan")
        nms = {plan.nm for plan in plans}
        if len(nms) > 1:
            raise ConfigurationError(f"Nm must match across virtual workers, got {sorted(nms)}")
        if network_model not in NETWORK_MODELS:
            raise ConfigurationError(
                f"unknown network_model {network_model!r}; expected one of {NETWORK_MODELS}"
            )
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ConfigurationError(f"shards must be an int >= 1, got {shards!r}")
        self.cluster = cluster
        self.model = model
        self.plans = list(plans)
        #: pipeline-variant semantics (weight-version policy, extra
        #: admission gates, staleness contract) — see
        #: :mod:`repro.pipeline.variants`.  Resolution raises the typed
        #: UnknownNameError on a name outside the zoo.
        self.variant = variant
        self.variant_def = get_variant(variant)
        self.d = d
        self.nm = self.plans[0].nm
        self.placement_policy = placement
        self.shards = shards
        self.shard_placement_policy = shard_placement
        self.calibration = calibration
        self.push_every_minibatch = push_every_minibatch
        self.network_model = network_model
        self.fidelity = fidelity
        self.jitter = jitter
        #: planner registry name — elastic re-partitioning re-runs it on
        #: the surviving GPUs after a permanent node loss
        self.planner = planner
        self._fabric_spec = fabric_spec
        #: fault-injection driver (repro.faults.FaultInjector); None on
        #: every fault-free run
        self.fault_injector = None
        self._lost_nodes: set[int] = set()
        #: set once elastic re-partitioning replaced any pipeline; the
        #: pre-fault steady state (and the fast-forward component list)
        #: is gone for good
        self._structural_change = False

        self.sim = Simulator()
        #: optional telemetry collector (:class:`repro.obs.ObsCollector`).
        #: Installed on the simulator *before* any resource exists, so
        #: every processor/channel/link — including the PS's lazily
        #: created per-stream channels and shard apply queues — registers
        #: itself for span reporting and utilization sampling.
        self.obs = obs
        self.sim.obs = obs
        #: shared contention-aware fabric; None under the dedicated model
        self.fabric: Fabric | None = (
            Fabric(self.sim, cluster, fabric_spec) if network_model == "shared" else None
        )
        self.trace = trace if trace is not None else Trace(enabled=False)
        if obs is not None:
            # A plain subscriber: trace digests hash before subscribers
            # run, so telemetry can never perturb replay identity.
            self.trace.subscribe(obs.on_trace)
        self.oracles = list(oracles)
        self.ps = ParameterServerSim(
            self.sim, cluster, len(self.plans), calibration, fabric=self.fabric,
            shards=shards,
        )
        node_ids = [node.node_id for node in cluster.nodes]
        # Unsharded runs keep the historical policies; with K > 1 shard
        # slots the shard placement policy picks the slot hosts instead.
        effective_policy = shard_placement if shards > 1 else placement
        self.placements: list[StagePlacement] = build_placements(
            model, self.plans, node_ids, effective_policy,
            shards=shards, cluster=cluster,
            fabric_spec=fabric_spec if network_model == "shared" else None,
        )

        #: per-VW admission gates: the bare _WSPGate for the default
        #: variant (bit-identical to the pre-zoo tree), or a ComposedGate
        #: AND-ing the variant's extra conditions onto the same WSP base
        self.gates: list = []
        self.pipelines: list[VirtualWorkerPipeline] = []
        self.stats = [VirtualWorkerStats() for _ in self.plans]
        self._busy_count = [0] * len(self.plans)
        self._all_idle_since: list[float | None] = [0.0] * len(self.plans)
        self._wait_started: list[float | None] = [None] * len(self.plans)

        for index, plan in enumerate(self.plans):
            gate = build_variant_gate(self.variant_def, _WSPGate(d, self.nm), self.nm)
            pipeline = VirtualWorkerPipeline(
                self.sim,
                plan,
                cluster.interconnect,
                name=f"vw{index}",
                gate=gate,
                on_minibatch_done=(lambda p, t, index=index: self._on_minibatch_done(index, p, t)),
                on_inject=(lambda p, t, index=index: self._on_inject(index, p, t)),
                trace=self.trace,
                jitter=jitter,
                fabric=self.fabric,
            )
            for state in pipeline.stages:
                state.processor.on_state_change = (
                    lambda busy, index=index: self._on_processor_state(index, busy)
                )
            if hasattr(gate, "attach"):
                # composed variant gates read live pipeline state (wave
                # completion, version-stash ledger) for their conditions
                gate.attach(pipeline)
            self.gates.append(gate)
            self.pipelines.append(pipeline)

        for oracle in self.oracles:
            oracle.bind(self)
        # Dispatch only to oracles that actually override a callback: the
        # trace stream fires tens of thousands of times per run, and a
        # suite of five oracles with one trace consumer must not pay
        # five virtual calls per record.
        if self.oracles:
            from repro.sim.invariants import RuntimeOracle as _Base

            def overriding(name: str) -> list:
                return [
                    oracle
                    for oracle in self.oracles
                    if getattr(type(oracle), name) is not getattr(_Base, name)
                ]

            self._trace_oracles = overriding("on_trace")
            self._push_oracles = overriding("on_push_recorded")
            self._inject_oracles = overriding("on_inject")
            self._done_oracles = overriding("on_minibatch_done")
            self._pull_oracles = overriding("on_pull_done")
            if len(self._trace_oracles) == 1:
                # one consumer: skip the fan-out trampoline per record
                self.trace.subscribe(self._trace_oracles[0].on_trace)
            elif self._trace_oracles:
                self.trace.subscribe(self._notify_trace)
            if len(self._push_oracles) == 1:
                self.ps.subscribe_push(self._push_oracles[0].on_push_recorded)
            elif self._push_oracles:
                self.ps.subscribe_push(self._notify_push)
        else:
            self._trace_oracles = []
            self._push_oracles = []
            self._inject_oracles = []
            self._done_oracles = []
            self._pull_oracles = []

        # Steady-state fast-forward: armed only under the fast_forward
        # fidelity, and only for regimes whose cycles can repeat exactly
        # — task jitter is aperiodic by construction, and the shared
        # fabric keeps a per-flow ledger that a skip cannot summarize.
        # Ineligible runs silently execute at full fidelity.
        self._ff = (
            _RuntimeFastForward(self)
            if fidelity == "fast_forward" and jitter == 0.0 and self.fabric is None
            else None
        )

        if obs is not None:
            obs.install_sampler(self.sim)

    @classmethod
    def from_spec(
        cls,
        run: "RunSpec",
        *,
        cluster: Cluster | None = None,
        model: ModelGraph | None = None,
        plans: Sequence[PartitionPlan] | None = None,
        trace: Trace | None = None,
        oracles: "Sequence[RuntimeOracle]" = (),
        fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
        obs=None,
    ) -> "HetPipeRuntime":
        """The canonical constructor: behavior from a typed RunSpec.

        Every spec-addressable axis — staleness bound, placement,
        push cadence, jitter, calibration, network model, fidelity —
        is read from ``run``'s sections.  ``cluster``/``model``/
        ``plans`` may be passed pre-built (the fuzz runner shares one
        memoized materialization across a scenario's runs); left as
        ``None`` they are built from the spec via
        :func:`repro.api.build.build_scenario`.
        """
        from repro.api.build import build_calibration, build_scenario

        if cluster is None or model is None or plans is None:
            scenario = build_scenario(run)
            cluster = scenario.cluster if cluster is None else cluster
            model = scenario.model if model is None else model
            plans = list(scenario.plans) if plans is None else plans
        return cls(
            cluster,
            model,
            list(plans),
            d=run.pipeline.d,
            placement=run.pipeline.placement,
            shards=run.pipeline.shards,
            shard_placement=run.pipeline.shard_placement,
            calibration=build_calibration(run.calibration),
            trace=trace,
            push_every_minibatch=run.pipeline.push_every_minibatch,
            jitter=run.pipeline.jitter,
            oracles=oracles,
            network_model=run.network.model,
            fabric_spec=fabric_spec,
            fidelity=run.fidelity.fidelity,
            obs=obs,
            planner=run.pipeline.planner,
            variant=run.pipeline.variant,
            _spec_constructed=True,
        )

    # ------------------------------------------------------------------
    # oracle plumbing
    # ------------------------------------------------------------------

    def _notify_trace(self, record) -> None:
        for oracle in self._trace_oracles:
            oracle.on_trace(record)

    def _notify_push(self, vw: int, wave: int, global_version: int) -> None:
        for oracle in self._push_oracles:
            oracle.on_push_recorded(vw, wave, global_version)

    def _on_inject(self, vw: int, p: int, now: float) -> None:
        if self._inject_oracles:
            pulled = self.gates[vw].pulled_version
            for oracle in self._inject_oracles:
                oracle.on_inject(vw, p, pulled, now)

    def check_invariants(self) -> None:
        """End-of-run reconciliation pass over all attached oracles.

        Raises :class:`~repro.errors.InvariantViolation` on the first
        inconsistency; live violations raise earlier, mid-run.
        """
        for oracle in self.oracles:
            oracle.verify_final(self)

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _on_processor_state(self, vw: int, busy: bool) -> None:
        now = self.sim.now
        if busy:
            if self._busy_count[vw] == 0:
                self._flush_idle(vw, now)
                self._all_idle_since[vw] = None
            self._busy_count[vw] += 1
        else:
            self._busy_count[vw] -= 1
            if self._busy_count[vw] == 0:
                self._all_idle_since[vw] = now

    def _flush_idle(self, vw: int, now: float) -> None:
        """Credit accumulated all-idle time to the active wait, if any."""
        idle_since = self._all_idle_since[vw]
        wait_start = self._wait_started[vw]
        if idle_since is None or wait_start is None:
            return
        start = max(idle_since, wait_start)
        if now > start:
            self.stats[vw].idle_in_wait += now - start

    def _on_minibatch_done(self, vw: int, p: int, now: float) -> None:
        self.stats[vw].minibatches_done += 1
        for oracle in self._done_oracles:
            oracle.on_minibatch_done(vw, p, now)
        if self.push_every_minibatch:
            self._push_update(vw, p, wave_complete=(p % self.nm == 0))
        elif p % self.nm == 0:
            self._push_update(vw, p, wave_complete=True)

    def _push_update(self, vw: int, p: int, wave_complete: bool) -> None:
        plan = self.plans[vw]
        placement = self.placements[vw]
        sources = [
            (stage.gpu.node_id, placement[stage.index])
            for stage in plan.stages
        ]
        if not wave_complete:
            # ablation mode: per-minibatch push of the same byte volume,
            # without clock advancement
            self.ps.push_bytes_only(vw, sources)
            return
        wave = p // self.nm - 1
        self.trace.emit(self.sim.now, "wave_push", f"vw{vw}", wave=wave)
        self.ps.push(vw, wave, sources, on_complete=lambda: self._after_push(vw, wave))

    def _after_push(self, vw: int, wave: int) -> None:
        stats = self.stats[vw]
        stats.waves_pushed += 1
        stats.wave_times.append(self.sim.now)
        desired = desired_version_after_wave(wave, self.d)
        self._wait_started[vw] = self.sim.now
        self.ps.when_version(desired, lambda: self._begin_pull(vw), vw=vw)

    def _begin_pull(self, vw: int) -> None:
        plan = self.plans[vw]
        placement = self.placements[vw]
        sources = [
            (stage.gpu.node_id, placement[stage.index])
            for stage in plan.stages
        ]
        self.ps.pull(vw, sources, on_complete=lambda version: self._pull_done(vw, version))

    def _pull_done(self, vw: int, version: int) -> None:
        now = self.sim.now
        wait_start = self._wait_started[vw]
        if wait_start is not None:
            self._flush_idle(vw, now)
            self.stats[vw].waiting_time += now - wait_start
            self._wait_started[vw] = None
        self.stats[vw].pulls += 1
        self.trace.emit(now, "pull_done", f"vw{vw}", version=version)
        for oracle in self._pull_oracles:
            oracle.on_pull_done(vw, version, now)
        # Stamp the pipeline's live weight version before waking the
        # gate: minibatches admitted by this advance must record the
        # just-pulled version in the stashed-version ledger.
        self.pipelines[vw].set_weight_version(version)
        self.gates[vw].advance(version)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def start(self) -> None:
        for pipeline in self.pipelines:
            pipeline.start()

    def run_until_global_version(self, target: int, max_events: int = 20_000_000) -> None:
        """Advance the simulation until wave ``target`` is globally done.

        Under the fast_forward fidelity, every global-version advance is
        a cycle boundary: once the steady-state detector confirms a
        repeating cycle, the remaining cycles up to ``target`` are applied
        analytically instead of being simulated (the skip lands exactly
        on the boundary semantics a full run would stop at).
        """
        executed = 0
        ps = self.ps
        step = self.sim.step
        ff = self._ff
        last_version = ps.global_version
        while ps.global_version < target:
            if not step():
                raise SimulationError(
                    f"simulation quiesced at global version {ps.global_version} "
                    f"before reaching {target} (deadlock?)"
                )
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events")
            if ff is not None and ps.global_version > last_version:
                ff.on_boundary(target)
                last_version = ps.global_version

    def total_minibatches_done(self) -> int:
        return sum(stats.minibatches_done for stats in self.stats)

    def ps_queue_stats(self) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)`` of PS traffic
        alone: the dedicated PS streams, or — in fabric mode — the
        ``ps.*``-tagged flows' waits (see
        :meth:`repro.netsim.fabric.Fabric.tagged_queue_stats`)."""
        return self.ps.queue_stats()

    def network_queue_stats(self) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)`` across the run's
        network: the shared fabric when one is attached, otherwise the
        dedicated PS streams plus every pipeline's stage channels."""
        if self.fabric is not None:
            return self.fabric.queue_stats()
        total, depth = self.ps.queue_stats()
        for pipeline in self.pipelines:
            t, q = pipeline.channel_queue_stats()
            total += t
            depth = max(depth, q)
        return total, depth

    # ------------------------------------------------------------------
    # fault injection and elastic recovery (see repro.faults)
    # ------------------------------------------------------------------

    def crash_node(self, node: int) -> None:
        """Transient node crash: every stage processor and PS process on
        ``node`` stops serving.  In-flight tasks abort (they re-run in
        full after :meth:`restore_node`) and new PS sends touching the
        node block in the retry path."""
        for vw, plan in enumerate(self.plans):
            pipeline = self.pipelines[vw]
            for s, stage in enumerate(plan.stages):
                if stage.gpu.node_id == node:
                    pipeline.stages[s].processor.fail()
        self.ps.fail_node(node)

    def restore_node(self, node: int) -> None:
        """Rejoin a transiently-crashed node: queued work resumes."""
        self.ps.restore_node(node)
        for vw, plan in enumerate(self.plans):
            pipeline = self.pipelines[vw]
            for s, stage in enumerate(plan.stages):
                if stage.gpu.node_id == node:
                    pipeline.stages[s].processor.restore()

    def set_link_scale(self, scale: float) -> None:
        """Apply a shared-fabric degradation factor (1.0 = healthy) to
        the run's cross-node links: the fabric itself in shared mode, the
        PS streams plus every pipeline's cross-node stage channels in
        dedicated mode."""
        if self.fabric is not None:
            self.fabric.rate_scale = scale
            return
        self.ps.set_link_scale(scale)
        for pipeline in self.pipelines:
            pipeline.set_link_scale(scale)

    def handle_node_loss(self, node: int) -> None:
        """Permanent loss of ``node``: PS-shard failover to a survivor,
        then elastic re-partitioning of every virtual worker that had a
        stage there — re-run the registered planner on the surviving
        GPUs, resume from the parameter server's committed progress, and
        rebuild placements over the surviving nodes."""
        self._lost_nodes.add(node)
        self._structural_change = True
        survivors = [
            n.node_id for n in self.cluster.nodes
            if n.node_id not in self._lost_nodes
        ]
        if not survivors:
            raise SimulationError(f"node {node} lost and no survivors remain")
        self.ps.migrate_node(node, survivors[0])
        # The node is gone for either end of a transfer, not just as a
        # PS host: in-flight pushes whose sources named it re-home too.
        self.ps._faults.node_redirect[node] = survivors[0]
        affected = [
            vw for vw, plan in enumerate(self.plans)
            if any(stage.gpu.node_id == node for stage in plan.stages)
        ]
        if not affected:
            return
        from repro.api.registry import PLANNERS
        from repro.models.profiler import Profiler

        planner = PLANNERS.get(self.planner)
        profiler = Profiler(self.calibration)
        for vw in affected:
            old = self.pipelines[vw]
            old.halt()
            gpus = [
                stage.gpu for stage in self.plans[vw].stages
                if stage.gpu.node_id not in self._lost_nodes
            ]
            if not gpus:
                # The whole worker died with its node: adopt a surviving
                # node's GPUs (oversubscribing them — the replacement
                # shares silicon with that node's own worker, which the
                # degradation oracle's capacity bound accounts for).
                host = survivors[vw % len(survivors)]
                gpus = [g for g in self.cluster.gpus if g.node_id == host]
            new_plan = planner(
                self.model, gpus, self.nm, self.cluster.interconnect,
                self.calibration, profiler,
            )
            # Resume from the PS's committed progress for this worker:
            # waves recorded, in flight, or backlogged all eventually
            # record, so the replacement's first push is exactly the
            # wave the PS expects next.
            base = self.ps.expected_next_wave(vw) * self.nm
            pipeline = VirtualWorkerPipeline(
                self.sim,
                new_plan,
                self.cluster.interconnect,
                name=f"vw{vw}",
                gate=self.gates[vw],
                on_minibatch_done=(lambda p, t, vw=vw: self._on_minibatch_done(vw, p, t)),
                on_inject=(lambda p, t, vw=vw: self._on_inject(vw, p, t)),
                trace=self.trace,
                jitter=self.jitter,
                fabric=self.fabric,
            )
            for state in pipeline.stages:
                state.processor.on_state_change = (
                    lambda busy, vw=vw: self._on_processor_state(vw, busy)
                )
            if hasattr(self.gates[vw], "attach"):
                # re-home the variant gate's pipeline reference; the WSP
                # base keeps its pulled_version across the replacement
                self.gates[vw].attach(pipeline)
            # The replacement starts from the last committed weights.
            pipeline.set_weight_version(self.gates[vw].pulled_version)
            pipeline.resume_from(base)
            self.plans[vw] = new_plan
            self.pipelines[vw] = pipeline
            # Progress beyond the last committed wave was lost with the
            # node; the replacement re-earns it (and re-counts it).
            self.stats[vw].minibatches_done = base
            self._busy_count[vw] = 0
            self._all_idle_since[vw] = self.sim.now
            pipeline.start()
        self.rebuild_placements(survivors)

    def rebuild_placements(self, node_ids: Sequence[int]) -> None:
        """Re-place the PS shards over ``node_ids`` through the same
        PLACEMENTS-registry policy the run started with (failover after
        a permanent PS-host loss)."""
        effective_policy = (
            self.shard_placement_policy if self.shards > 1 else self.placement_policy
        )
        self.placements = build_placements(
            self.model, self.plans, list(node_ids), effective_policy,
            shards=self.shards, cluster=self.cluster,
            fabric_spec=self._fabric_spec if self.fabric is not None else None,
        )


class _RuntimeFastForward:
    """Steady-state macro-event coalescing for one :class:`HetPipeRuntime`.

    Cycle boundaries are global-version advances: in steady state the
    whole coupled system — every virtual worker's pipeline, the
    parameter-server shards, gates, and the pending event queue — repeats
    a fixed pattern per global wave (or a small super-cycle of waves when
    heterogeneous workers interleave with a longer period).  The per-
    boundary signature covers *all* of that state, so cross-VW
    interactions whose phases do not repeat (e.g., staleness admissions
    that would diverge) simply never confirm a cycle, and the run falls
    back to full simulation with no correctness cliff.

    On a confirmed cycle the skip is one clock translation plus O(state)
    bulk updates: simulator queue times shift by ``N * dt``, cumulative
    counters advance by ``N`` cycle deltas, public minibatch/wave/version
    numberings jump while raw in-flight event ids stay put (the
    pipelines' ``mb_offset`` translation), pending version waits are
    retargeted, live oracles are told via ``on_fast_forward``, and one
    ``fast_forward`` macro record stands in for the coalesced raw trace.
    """

    def __init__(self, runtime: HetPipeRuntime) -> None:
        self.runtime = runtime
        self.detector = SteadyStateDetector()
        self.skips_applied = 0
        #: pipelines and their stage resources, in fixed order; the PS's
        #: lazily-created streams are appended per boundary (a stream
        #: appearing mid-run changes the vector length, which the
        #: detector treats as a mismatch — exactly right)
        self._pipe_comps: list = []
        #: flat counter-vector offset of each pipeline's own counters
        #: (slot 0 there is its completed count)
        self._pipe_offsets: list[int] = []
        flat = 0
        for pipeline in runtime.pipelines:
            self._pipe_offsets.append(flat)
            for comp in pipeline_components(pipeline):
                self._pipe_comps.append(comp)
                flat += len(comp.ff_counters())

    def _components(self) -> list:
        ps = self.runtime.ps
        return [
            *self._pipe_comps,
            *ps._apply.values(),
            *ps._shard_apply.values(),
            *ps._channels.values(),
            ps,
        ]

    def _counters(self, comps: list) -> tuple:
        runtime = self.runtime
        values = list(collect_counters(runtime.sim, comps))
        for gate in runtime.gates:
            values.append(gate.pulled_version)
        for stats in runtime.stats:
            values.append(stats.minibatches_done)
            values.append(stats.waves_pushed)
            values.append(stats.pulls)
            values.append(stats.waiting_time)
            values.append(stats.idle_in_wait)
        return tuple(values)

    def _shape(self, comps: list) -> tuple:
        runtime = self.runtime
        now = runtime.sim.now
        levels, fingerprint = collect_shape(runtime.sim, comps)
        runtime_levels = (
            tuple(runtime._busy_count),
            tuple(-1.0 if t is None else now - t for t in runtime._all_idle_since),
            tuple(-1.0 if t is None else now - t for t in runtime._wait_started),
        )
        return (levels + (runtime_levels,), fingerprint)

    def on_boundary(self, target: int) -> None:
        """A global-version advance just executed; detect and maybe skip."""
        runtime = self.runtime
        # Fault injection: a skip would shift armed fault events (or
        # coalesce a live fault window), so bail while any fault is
        # scheduled or active; a structural change (elastic
        # re-partitioning) stales the component list permanently.
        if runtime._structural_change:
            return
        injector = runtime.fault_injector
        if injector is not None and injector.pending():
            return
        ps = runtime.ps
        comps = self._components()
        cycle = self.detector.observe(
            runtime.sim.now, self._counters(comps), self._shape(comps)
        )
        if cycle is None:
            return
        sizes = [len(comp.ff_counters()) for comp in comps]
        total_comp = sum(sizes)
        num_vw = len(runtime.plans)
        deltas = cycle.deltas
        ps_start = 1 + total_comp - sizes[-1]
        versions_per_cycle = deltas[ps_start + 4 + num_vw]
        if versions_per_cycle <= 0:
            return
        cycles = (target - ps.global_version) // versions_per_cycle
        if cycles <= 0:
            return
        # A push in flight at the boundary has its wave number captured
        # in transfer-completion closures, which a skip cannot retarget
        # (recording it afterwards would regress pushed_wave).  Refuse —
        # the run simply stays at full fidelity for this cycle.
        if any(ps._push_in_flight):
            return
        # Public ids jump by whole waves: each worker's coalesced
        # minibatches must be exactly Nm times its coalesced waves, or
        # the push phase would drift across the skip.
        per_vw_minibatches = tuple(
            deltas[1 + offset] for offset in self._pipe_offsets
        )
        per_vw_waves = tuple(deltas[ps_start + 4 + vw] for vw in range(num_vw))
        if any(
            mb != runtime.nm * waves
            for mb, waves in zip(per_vw_minibatches, per_vw_waves)
        ):
            return

        dt = cycles * cycle.dt
        runtime.sim.fast_forward(dt, events_coalesced=cycles * deltas[0])
        advance_components(comps, sizes, cycles, deltas[1 : 1 + total_comp], dt)
        offset = 1 + total_comp
        for gate in runtime.gates:
            gate.pulled_version += cycles * deltas[offset]
            offset += 1
        for stats in runtime.stats:
            stats.minibatches_done += cycles * deltas[offset]
            stats.waves_pushed += cycles * deltas[offset + 1]
            stats.pulls += cycles * deltas[offset + 2]
            stats.waiting_time += cycles * deltas[offset + 3]
            stats.idle_in_wait += cycles * deltas[offset + 4]
            offset += 5
        runtime._all_idle_since = [
            None if t is None else t + dt for t in runtime._all_idle_since
        ]
        runtime._wait_started = [
            None if t is None else t + dt for t in runtime._wait_started
        ]
        self.skips_applied += 1
        summary = FastForwardSummary(
            time=runtime.sim.now,
            dt=dt,
            cycles=cycles,
            period=cycle.period,
            events_coalesced=cycles * deltas[0],
            minibatches=tuple(cycles * mb for mb in per_vw_minibatches),
            waves=tuple(cycles * waves for waves in per_vw_waves),
            versions=cycles * versions_per_cycle,
        )
        for oracle in runtime.oracles:
            oracle.on_fast_forward(summary)
        runtime.trace.emit(
            runtime.sim.now,
            "fast_forward",
            "runtime",
            cycles=cycles,
            period=cycle.period,
            dt=dt,
            minibatches=summary.minibatches,
            waves=summary.waves,
            versions=summary.versions,
            events=summary.events_coalesced,
        )
        self.detector.rebase(dt, tuple(cycles * d for d in deltas))
