"""Staleness arithmetic of the WSP model (§4–§5).

* Local staleness ``s_local = Nm - 1``: the pipeline inherently starts a
  minibatch before the previous ``s_local`` have updated the local
  weights.
* A *wave* is ``s_local + 1 = Nm`` concurrently-processed minibatches;
  local clock ``c`` ends when wave ``c`` completes.
* Global staleness ``s_global = (D + 1)(s_local + 1) + s_local - 1``:
  §5's bound on missing updates.

Derivation of the admission rule used by the runtime gate.  Let ``G`` be
the highest global wave index whose aggregated updates are reflected in
the local weights (``-1`` before any pull).  §5 requires a worker
processing wave ``c`` to hold global updates through wave ``c - D - 1``,
so waves ``0 .. G + D + 1`` may run in full; pipelining additionally
admits ``s_local`` minibatches of wave ``G + D + 2`` while the pull is
in flight.  Hence minibatches ``1 .. (G + D + 2) * Nm + s_local`` may
start.  With ``G = -1`` this reproduces the paper's initial condition —
``(D+1)`` full waves plus ``s_local`` extra minibatches — and the
furthest admissible minibatch is missing exactly
``(D+1)*Nm + s_local - 1 = s_global`` predecessor updates.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def local_staleness(nm: int) -> int:
    """``s_local`` for a pipeline running ``nm`` concurrent minibatches."""
    if nm < 1:
        raise ConfigurationError(f"nm must be >= 1, got {nm}")
    return nm - 1


def global_staleness(d: int, slocal: int) -> int:
    """``s_global`` from §5: ``(D+1)(s_local+1) + s_local - 1``."""
    if d < 0:
        raise ConfigurationError(f"D must be >= 0, got {d}")
    if slocal < 0:
        raise ConfigurationError(f"s_local must be >= 0, got {slocal}")
    return (d + 1) * (slocal + 1) + slocal - 1


def admission_limit(pulled_version: int, d: int, nm: int) -> int:
    """Highest 1-based minibatch id admissible at pulled version ``G``."""
    if pulled_version < -1:
        raise ConfigurationError(f"pulled_version must be >= -1, got {pulled_version}")
    if d < 0:
        raise ConfigurationError(f"D must be >= 0, got {d}")
    return (pulled_version + d + 2) * nm + local_staleness(nm)


def desired_version_after_wave(completed_wave: int, d: int) -> int:
    """Global version a worker pulls for after finishing wave ``c``.

    ``c - D`` is the lowest version that unblocks the remainder of wave
    ``c + 1`` (the part beyond the ``s_local`` pipelined minibatches).
    """
    return completed_wave - d


def missing_updates(minibatch: int, pulled_version: int, nm: int) -> int:
    """Number of predecessor minibatch updates (own and others', counted
    per worker-step as in §5) possibly missing from the weights used by
    ``minibatch`` when global waves ``0..pulled_version`` are held.

    Used by tests to assert the runtime never exceeds ``s_global``.
    """
    globally_reflected = (pulled_version + 1) * nm
    return max(0, minibatch - 1 - globally_reflected)
