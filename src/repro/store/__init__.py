"""Content-addressed, crash-safe result store (``hetpipe-result/1``).

* :mod:`repro.store.core` — :class:`ResultStore`: schema-tagged result
  records keyed by ``spec_hash``, committed with atomic write-rename,
  verified on read against an embedded sha256 checksum (corruption is
  quarantined, never crashes a sweep), indexed by a file-lock-guarded
  manifest so parallel sweeps can share one store.
* :mod:`repro.store.lock` — :class:`FileLock`, the advisory inter-process
  lock guarding manifest updates.

``repro sweep --store DIR`` streams every completed point into a store
the moment it finishes and ``--resume`` skips points whose verified
entry already exists; ``repro store {ls,verify,gc,quarantine}`` are the
maintenance verbs; ``repro bench --store DIR`` appends each bench
payload as an accumulating history record.
"""

from repro.store.core import (
    RESULT_SCHEMA,
    ResultRecord,
    ResultStore,
)
from repro.store.lock import FileLock

__all__ = [
    "RESULT_SCHEMA",
    "ResultRecord",
    "ResultStore",
    "FileLock",
]
