"""Advisory inter-process file lock for store manifest updates.

Two sweeps sharing one ``--store`` directory may both rewrite the
manifest; object files themselves need no lock (each commit is a single
atomic rename of a content-complete temp file), but a manifest
read-modify-write cycle does.  On POSIX the lock is ``fcntl.flock`` on a
dedicated lock file — crash-safe, because the kernel drops the lock with
the process, so a SIGKILL'd sweep can never wedge the store.  Where
``fcntl`` is unavailable the fallback is an ``O_EXCL`` lock file with a
bounded stale-lock takeover, which degrades gracefully rather than
importing anything outside the standard library.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: Seconds between acquisition attempts in the O_EXCL fallback.
_POLL_INTERVAL = 0.05

#: Age after which an O_EXCL lock file is presumed abandoned (its owner
#: was SIGKILL'd before removing it) and taken over.
_STALE_AFTER = 30.0


class FileLock:
    """``with FileLock(path): ...`` — exclusive inter-process section.

    Reentrant within a process is *not* supported (and not needed: the
    store takes the lock only around manifest read-modify-write).
    ``timeout`` bounds the wait; expiry raises ``TimeoutError`` rather
    than deadlocking a sweep on a wedged peer.
    """

    def __init__(self, path: str, timeout: float = 60.0) -> None:
        self.path = path
        self.timeout = timeout
        self._fd: int | None = None

    def __enter__(self) -> "FileLock":
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            deadline = time.monotonic() + self.timeout
            while True:
                try:
                    fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(self._fd)
                        self._fd = None
                        raise TimeoutError(
                            f"could not acquire store lock {self.path!r} "
                            f"within {self.timeout:g}s"
                        ) from None
                    time.sleep(_POLL_INTERVAL)
        return self._enter_excl()

    def _enter_excl(self) -> "FileLock":  # pragma: no cover - non-POSIX
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                os.write(self._fd, str(os.getpid()).encode())
                return self
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(self.path)
                except OSError:
                    age = 0.0  # holder just released; retry immediately
                if age > _STALE_AFTER:
                    logger.warning(
                        "store lock %s is %.0fs old; presuming its owner "
                        "died and taking it over", self.path, age,
                    )
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not acquire store lock {self.path!r} "
                        f"within {self.timeout:g}s"
                    ) from None
                time.sleep(_POLL_INTERVAL)

    def __exit__(self, *exc: Any) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover - non-POSIX
            os.close(self._fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass
        self._fd = None
