"""The content-addressed result store (schema ``hetpipe-result/1``).

Layout of one store directory::

    STORE/
      objects/<key[:2]>/<key>.json   committed records (atomic renames)
      tmp/                           in-flight writes (same filesystem)
      quarantine/                    entries that failed verification
      manifest.json                  lock-guarded index (key -> metadata)
      .lock                          the manifest lock file

Three properties carry the crash-safety story:

* **Atomic commits** — a record is serialized to a unique file under
  ``tmp/`` (flushed and fsync'd), then ``os.replace``'d into
  ``objects/``.  Readers can never observe a partial record: either the
  rename happened and the file is complete, or the entry does not exist.
  A SIGKILL mid-write leaves only a ``tmp/`` leftover for ``gc``.
* **Read-time integrity verification** — every record embeds the sha256
  of its own canonical body.  Reads recompute and compare; truncation,
  bit flips, bad JSON, schema drift, or a key/filename mismatch raise
  the typed :class:`~repro.errors.StoreCorruptionError`.  The sweeping
  path uses :meth:`ResultStore.fetch`, which *quarantines* the damaged
  file (moved to ``quarantine/``) and reports a miss, so corruption
  degrades to a recompute instead of crashing the sweep.
* **Lock-guarded manifest** — object commits are independent renames,
  but the manifest index is a read-modify-write cycle, guarded by
  :class:`~repro.store.lock.FileLock` so parallel sweeps sharing a
  store never interleave partial manifest writes.  The manifest is an
  index, not the truth: lookups go straight to ``objects/`` (a crash
  between object commit and manifest update loses no data), and a
  damaged manifest is rebuilt rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.api.spec import SPEC_SCHEMA, canonical_dumps
from repro.errors import StoreCorruptionError
from repro.store.lock import FileLock

logger = logging.getLogger(__name__)

#: Schema tag embedded in (and verified on) every stored record.
RESULT_SCHEMA = "hetpipe-result/1"

#: Record kinds the store understands; open-ended by design (the store
#: is a dumb content-addressed map), listed here for documentation.
KNOWN_KINDS = ("scenario", "experiment", "bench")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class ResultRecord:
    """One schema-tagged store entry.

    ``key`` is the content address — a ``spec_hash`` for sweep points,
    the payload hash for bench-history records.  ``payload`` carries the
    outcome (for sweep points: ``kind``/``ok``/``summary``/
    ``violations`` plus whatever metrics the producer adds); ``spec`` is
    the canonical RunSpec dict when one exists, so any entry can be
    replayed with ``repro run``; ``provenance`` records who wrote it and
    when (informational — never part of any behavioral comparison).
    """

    key: str
    kind: str
    payload: dict[str, Any]
    spec: dict[str, Any] | None = None
    provenance: dict[str, Any] = field(default_factory=dict)

    def body(self) -> dict[str, Any]:
        """The checksummed content (everything but the checksum)."""
        return {
            "schema": RESULT_SCHEMA,
            "key": self.key,
            "kind": self.kind,
            "payload": self.payload,
            "spec": self.spec,
            "provenance": self.provenance,
        }

    def to_dict(self) -> dict[str, Any]:
        body = self.body()
        body["checksum"] = _sha256(canonical_dumps(body))
        return body

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_verified_dict(cls, data: Any, path: str) -> "ResultRecord":
        """Parse + verify one entry; any defect raises
        :class:`StoreCorruptionError` naming ``path``."""
        if not isinstance(data, dict):
            raise StoreCorruptionError(path, "entry root is not a JSON object")
        if data.get("schema") != RESULT_SCHEMA:
            raise StoreCorruptionError(
                path,
                f"schema tag {data.get('schema')!r} is not {RESULT_SCHEMA!r}",
            )
        claimed = data.get("checksum")
        if not isinstance(claimed, str):
            raise StoreCorruptionError(path, "missing embedded checksum")
        body = {k: v for k, v in data.items() if k != "checksum"}
        actual = _sha256(canonical_dumps(body))
        if actual != claimed:
            raise StoreCorruptionError(
                path,
                f"checksum mismatch: embedded {claimed[:12]}..., "
                f"content hashes to {actual[:12]}...",
            )
        if not isinstance(data.get("key"), str) or not data["key"]:
            raise StoreCorruptionError(path, "missing key")
        if not isinstance(data.get("payload"), dict):
            raise StoreCorruptionError(path, "payload is not a JSON object")
        return cls(
            key=data["key"],
            kind=data.get("kind", ""),
            payload=data["payload"],
            spec=data.get("spec"),
            provenance=data.get("provenance") or {},
        )


def _default_provenance(tool: str) -> dict[str, Any]:
    return {
        "tool": tool,
        "created": time.time(),
        "pid": os.getpid(),
        "spec_schema": SPEC_SCHEMA,
    }


class ResultStore:
    """A store directory; see the module docstring for the layout."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.tmp_dir = os.path.join(root, "tmp")
        self.quarantine_dir = os.path.join(root, "quarantine")
        self.manifest_path = os.path.join(root, "manifest.json")
        self._lock_path = os.path.join(root, ".lock")
        self._seq = 0  # uniquifier for tmp names within this process

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def path_for(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def keys(self) -> Iterator[str]:
        """Committed entry keys, sorted (objects/ is the truth)."""
        if not os.path.isdir(self.objects_dir):
            return
        found: list[str] = []
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[: -len(".json")])
        yield from found

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        kind: str,
        payload: dict[str, Any],
        spec: dict[str, Any] | None = None,
        tool: str = "repro",
    ) -> str:
        """Commit one record atomically; returns the object path.

        The record becomes visible only through the final
        ``os.replace`` — a crash at any earlier point leaves just a
        ``tmp/`` leftover (cleaned by :meth:`gc`).  Re-putting an
        existing key overwrites it (same content address, same result
        for deterministic producers).
        """
        record = ResultRecord(
            key=key,
            kind=kind,
            payload=payload,
            spec=spec,
            provenance=_default_provenance(tool),
        )
        target = self.path_for(key)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        os.makedirs(self.tmp_dir, exist_ok=True)
        self._seq += 1
        tmp = os.path.join(self.tmp_dir, f"{os.getpid()}.{self._seq}.{key}.json")
        with open(tmp, "w") as fh:
            fh.write(record.to_json())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        self._update_manifest(
            key,
            {
                "kind": kind,
                "summary": str(payload.get("summary", ""))[:200],
                "created": record.provenance["created"],
            },
        )
        return target

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def load(self, key: str) -> ResultRecord | None:
        """Strict read: ``None`` on a miss, :class:`StoreCorruptionError`
        on any integrity defect (the verifying surfaces use this)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreCorruptionError(path, f"unreadable: {exc}") from None
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            # A flipped byte can make the file invalid UTF-8 before it
            # is invalid JSON; both are the same defect class.
            raise StoreCorruptionError(path, f"not valid UTF-8: {exc}") from None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                path, f"not valid JSON (truncated write?): {exc}"
            ) from None
        record = ResultRecord.from_verified_dict(data, path)
        if record.key != key:
            raise StoreCorruptionError(
                path, f"entry claims key {record.key[:12]}..., filename says {key[:12]}..."
            )
        return record

    def fetch(self, key: str) -> ResultRecord | None:
        """Graceful read: a corrupted entry is quarantined and reported
        as a miss, so callers recompute instead of crashing."""
        try:
            return self.load(key)
        except StoreCorruptionError as exc:
            quarantined = self.quarantine(key)
            logger.warning(
                "store: %s; moved to %s and treating as a miss "
                "(the point will be recomputed)",
                exc.detail, quarantined,
            )
            return None

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def quarantine(self, key: str) -> str | None:
        """Move an entry out of ``objects/``; returns its new path.

        Also the manual invalidation verb: a quarantined entry is a
        miss, so the next ``--resume`` recomputes it.
        """
        source = self.path_for(key)
        if not os.path.exists(source):
            return None
        os.makedirs(self.quarantine_dir, exist_ok=True)
        target = os.path.join(self.quarantine_dir, f"{key}.json")
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(self.quarantine_dir, f"{key}.{suffix}.json")
        os.replace(source, target)
        self._update_manifest(key, None)
        return target

    def verify(self) -> list[tuple[str, str]]:
        """Read-verify every committed entry; returns ``(key, defect)``
        pairs (empty means the store is clean).  Read-only — pair with
        :meth:`quarantine` to act on findings."""
        problems: list[tuple[str, str]] = []
        for key in self.keys():
            try:
                self.load(key)
            except StoreCorruptionError as exc:
                problems.append((key, exc.detail))
        return problems

    def gc(self) -> dict[str, int]:
        """Collect debris: in-flight ``tmp/`` leftovers from killed
        writers, quarantined entries, and manifest rows whose object is
        gone.  Returns removal counts per category."""
        counts = {"tmp": 0, "quarantined": 0, "manifest": 0}
        for directory, label in ((self.tmp_dir, "tmp"), (self.quarantine_dir, "quarantined")):
            if os.path.isdir(directory):
                for name in sorted(os.listdir(directory)):
                    try:
                        os.unlink(os.path.join(directory, name))
                        counts[label] += 1
                    except OSError:  # pragma: no cover - concurrent gc
                        pass
        with FileLock(self._lock_path):
            manifest = self._read_manifest()
            stale = [key for key in manifest if key not in self]
            for key in stale:
                del manifest[key]
                counts["manifest"] += 1
            if stale:
                self._write_manifest(manifest)
        return counts

    def entries(self) -> list[dict[str, Any]]:
        """``ls`` view: one dict per committed entry, manifest metadata
        merged in where present (``objects/`` is authoritative, so
        entries committed by a writer killed before its manifest update
        still appear)."""
        manifest = self._read_manifest()
        return [
            {"key": key, **manifest.get(key, {})}
            for key in self.keys()
        ]

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------

    def _read_manifest(self) -> dict[str, Any]:
        """Tolerant read: the manifest is an index, so damage degrades
        to an empty index (rebuilt incrementally), never an error."""
        try:
            with open(self.manifest_path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(data, dict) or not isinstance(data.get("entries"), dict):
            return {}
        return data["entries"]

    def _write_manifest(self, entries: dict[str, Any]) -> None:
        os.makedirs(self.tmp_dir, exist_ok=True)
        self._seq += 1
        tmp = os.path.join(self.tmp_dir, f"{os.getpid()}.{self._seq}.manifest.json")
        payload = {"schema": RESULT_SCHEMA, "entries": entries}
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)

    def _update_manifest(self, key: str, meta: dict[str, Any] | None) -> None:
        """One lock-guarded read-modify-write; ``meta=None`` deletes."""
        os.makedirs(self.root, exist_ok=True)
        with FileLock(self._lock_path):
            manifest = self._read_manifest()
            if meta is None:
                if key not in manifest:
                    return
                del manifest[key]
            else:
                manifest[key] = meta
            self._write_manifest(manifest)
