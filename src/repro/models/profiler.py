"""Roofline profiler: per-(layer, GPU type) forward/backward times.

Stands in for the paper's measurement step ("we first profile the DNN
model on each of the different types of GPUs in a cluster", §7).  Each
pass time is::

    max(flops / (effective_flops * kind_efficiency),
        traffic_bytes / memory_bandwidth)
    + kernel_count * kernel_overhead

The FLOP term captures compute-bound layers (large convs, FC), the
traffic term captures memory-bound ones (BN/ReLU/pool/add), and the
launch-overhead term captures why deep small-kernel models (ResNet-152)
run below their FLOP ratio — all three effects visible in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster.gpu import GPUSpec
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec


@dataclass(frozen=True)
class LayerCost:
    """Forward/backward execution time of one unit on one GPU type."""

    fwd: float
    bwd: float

    @property
    def total(self) -> float:
        return self.fwd + self.bwd


@dataclass(frozen=True)
class ModelProfile:
    """Per-layer costs for one (model, GPU spec) pair with prefix sums.

    ``fwd_prefix[i]`` is the sum of forward times of units ``[0, i)``, so
    the partitioner evaluates any contiguous stage in O(1).
    """

    model_name: str
    gpu_code: str
    costs: tuple[LayerCost, ...]
    fwd_prefix: tuple[float, ...]
    bwd_prefix: tuple[float, ...]

    def stage_fwd(self, start: int, stop: int) -> float:
        return self.fwd_prefix[stop] - self.fwd_prefix[start]

    def stage_bwd(self, start: int, stop: int) -> float:
        return self.bwd_prefix[stop] - self.bwd_prefix[start]

    def stage_total(self, start: int, stop: int) -> float:
        return self.stage_fwd(start, stop) + self.stage_bwd(start, stop)

    @property
    def total(self) -> float:
        return self.fwd_prefix[-1] + self.bwd_prefix[-1]


class Profiler:
    """Computes and caches :class:`ModelProfile` objects."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.calibration = calibration
        self._cache: dict[tuple[int, str], ModelProfile] = {}

    def layer_cost(self, layer: LayerSpec, gpu: GPUSpec) -> LayerCost:
        """Roofline fwd/bwd time of one unit on one GPU type.

        Composite units (residual blocks) are costed part-by-part and
        summed, so compute-bound and memory-bound internal layers both
        contribute — a single max() over the aggregate would hide the
        memory-bound BN/ReLU/add time behind the conv FLOPs.
        """
        if layer.parts:
            fwd = 0.0
            bwd = 0.0
            for part in layer.parts:
                cost = self.layer_cost(part, gpu)
                fwd += cost.fwd
                bwd += cost.bwd
            return LayerCost(fwd=fwd, bwd=bwd)

        cal = self.calibration
        rate = gpu.effective_flops * cal.kind_efficiency(layer.kind)
        bandwidth = gpu.memory_bandwidth
        if layer.kind not in ("conv", "fc", "block", "stem"):
            bandwidth /= cal.elementwise_bw_derate

        fwd_traffic = (layer.stash_bytes + layer.output_bytes + layer.param_bytes) * cal.fwd_traffic_factor
        fwd = max(layer.flops_fwd / rate, fwd_traffic / bandwidth)
        fwd += layer.kernel_count * cal.kernel_overhead

        bwd_flops = layer.flops_bwd * cal.bwd_flops_factor
        bwd_traffic = (layer.stash_bytes + layer.output_bytes + 2 * layer.param_bytes) * cal.bwd_traffic_factor
        bwd = max(bwd_flops / rate, bwd_traffic / bandwidth)
        bwd += layer.kernel_count * cal.kernel_overhead * cal.bwd_kernel_factor
        if cal.activation_recompute:
            # the forward pass is re-run before backward can proceed
            bwd += fwd

        return LayerCost(fwd=fwd, bwd=bwd)

    def profile(self, model: ModelGraph, gpu: GPUSpec) -> ModelProfile:
        """Per-layer cost table for ``model`` on GPU type ``gpu``."""
        key = (id(model), gpu.code)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        costs = tuple(self.layer_cost(layer, gpu) for layer in model.layers)
        fwd_prefix = [0.0]
        bwd_prefix = [0.0]
        for cost in costs:
            fwd_prefix.append(fwd_prefix[-1] + cost.fwd)
            bwd_prefix.append(bwd_prefix[-1] + cost.bwd)
        table = ModelProfile(
            model_name=model.name,
            gpu_code=gpu.code,
            costs=costs,
            fwd_prefix=tuple(fwd_prefix),
            bwd_prefix=tuple(bwd_prefix),
        )
        self._cache[key] = table
        return table

    def serial_minibatch_time(self, model: ModelGraph, gpu: GPUSpec) -> float:
        """Full fwd+bwd time of one minibatch on a single GPU of this type.

        This is the per-worker compute time of the Horovod baseline (each
        DP worker holds the whole model).
        """
        return self.profile(model, gpu).total
