"""VGG model builders (Simonyan & Zisserman).

``build_vgg19`` is the paper's large-parameter workload: 143.67M
parameters = 548 MiB fp32, which is exactly the "548MB" the paper quotes
(it reports MiB).  All 3x3 convolutions, five max-pool stages, three FC
layers; at 224x224 input the forward pass is ~19.6 GMACs/image.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph, validate_chain
from repro.models.layers import LayerSpec, conv_unit, fc_unit, pool_unit
from repro.units import BYTES_PER_PARAM

#: Convs per stage for each variant (all stages end with a 2x2 max-pool).
_VGG_STAGES: dict[str, tuple[int, ...]] = {
    "vgg16": (2, 2, 3, 3, 3),
    "vgg19": (2, 2, 4, 4, 4),
}

_STAGE_CHANNELS = (64, 128, 256, 512, 512)
_INPUT_SIZE = 224
_NUM_CLASSES = 1000


def _build_vgg(variant: str, batch_size: int) -> ModelGraph:
    if variant not in _VGG_STAGES:
        raise ConfigurationError(f"unknown VGG variant {variant!r}")
    layers: list[LayerSpec] = []
    size = _INPUT_SIZE
    cin = 3
    for stage, (convs, cout) in enumerate(zip(_VGG_STAGES[variant], _STAGE_CHANNELS), start=1):
        for i in range(1, convs + 1):
            layers.append(
                conv_unit(
                    f"conv{stage}_{i}",
                    batch=batch_size,
                    cin=cin,
                    cout=cout,
                    kernel=3,
                    out_h=size,
                    out_w=size,
                    with_relu=True,
                )
            )
            cin = cout
        size //= 2
        layers.append(pool_unit(f"pool{stage}", batch_size, cout, size, size))
    flat = cin * size * size  # 512 * 7 * 7 = 25088
    layers.append(fc_unit("fc6", batch_size, flat, 4096, with_relu=True, with_dropout=True))
    layers.append(fc_unit("fc7", batch_size, 4096, 4096, with_relu=True, with_dropout=True))
    layers.append(fc_unit("fc8", batch_size, 4096, _NUM_CLASSES))
    validate_chain(layers)
    return ModelGraph(
        name=variant,
        batch_size=batch_size,
        input_bytes=float(batch_size) * 3 * _INPUT_SIZE * _INPUT_SIZE * BYTES_PER_PARAM,
        layers=tuple(layers),
    )


def build_vgg19(batch_size: int = 32) -> ModelGraph:
    """VGG-19 at ImageNet resolution — the paper's 548 MiB model."""
    return _build_vgg("vgg19", batch_size)


def build_vgg16(batch_size: int = 32) -> ModelGraph:
    """VGG-16 — smaller sibling used for extra test/bench coverage."""
    return _build_vgg("vgg16", batch_size)
