"""DNN model substrate.

Programmatic layer graphs for the paper's two workloads (VGG-19 and
ResNet-152 at 224x224, batch 32) plus smaller variants, and the cost
models that stand in for the paper's TensorFlow profiling step (§7):

* :mod:`repro.models.layers` — per-layer FLOPs / parameter / activation
  accounting and constructors.
* :mod:`repro.models.graph` — a model as a chain of layer units (residual
  blocks are composite units so the chain abstraction holds).
* :mod:`repro.models.profiler` — roofline timing per (layer, GPU type).
* :mod:`repro.models.memory` — per-stage memory requirements as a
  function of in-flight minibatches.
* :mod:`repro.models.calibration` — every tunable constant in one place.
"""

from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec, composite, conv_unit, fc_unit, pool_unit
from repro.models.memory import max_in_flight, stage_memory_bytes
from repro.models.profiler import LayerCost, Profiler
from repro.models.resnet import build_resnet50, build_resnet101, build_resnet152
from repro.models.vgg import build_vgg16, build_vgg19

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "LayerCost",
    "LayerSpec",
    "ModelGraph",
    "Profiler",
    "build_resnet101",
    "build_resnet152",
    "build_resnet50",
    "build_vgg16",
    "build_vgg19",
    "composite",
    "conv_unit",
    "fc_unit",
    "max_in_flight",
    "pool_unit",
    "stage_memory_bytes",
]
