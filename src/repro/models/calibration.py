"""Calibration constants for the performance and memory models.

The paper profiles each DNN on each GPU type and fits a communication
regression (§7); we replace measurement with a roofline model whose free
constants live here, in one place.  The defaults are tuned (see
``experiments/calibration`` and EXPERIMENTS.md) so that the seven
``Nm = 1`` absolute throughputs annotated in Figure 3 are approximated
for both VGG-19 and ResNet-152.  Everything downstream *measures* the
simulator; nothing else is fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import mib, us


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the substrate models."""

    # --- compute: fraction of a GPU's effective FLOP/s each kind sustains
    conv_efficiency: float = 0.95
    fc_efficiency: float = 0.28
    elementwise_efficiency: float = 0.10

    # --- per-kernel launch + framework overhead (seconds per kernel)
    kernel_overhead: float = us(85)
    bwd_kernel_factor: float = 1.7  # backward launches ~1.7x the kernels
    #: measured backward FLOP cost relative to the 2x-forward estimate
    bwd_flops_factor: float = 0.70

    # --- memory-traffic multipliers for the roofline memory term
    fwd_traffic_factor: float = 1.0
    bwd_traffic_factor: float = 1.8
    #: short element-wise kernels (BN/ReLU/add/pool) achieve only a small
    #: fraction of peak DRAM bandwidth; divide peak by this for such kinds
    elementwise_bw_derate: float = 6.0

    # --- device memory model
    usable_memory_fraction: float = 0.94
    framework_overhead_bytes: float = mib(500)  # CUDA ctx + TF runtime
    #: weights + gradient accumulation buffers, as a multiple of param bytes
    weight_state_multiplier: float = 2.0
    #: fraction of the analytic activation stash actually resident
    #: (frameworks free/fuse part of the per-layer buffers)
    activation_stash_factor: float = 0.75
    #: extra stashed weight versions per additional in-flight minibatch
    #: (w_p is kept until minibatch p's backward pass, §4)
    weight_version_factor: float = 1.0

    # --- GPipe-style activation recomputation (§2.3: HetPipe does not
    # use it, "though there are no fundamental reasons forbidding it")
    #: when True, stages keep only ~recompute_stash_fraction of their
    #: activations and re-run the forward pass during backward
    activation_recompute: bool = False
    recompute_stash_fraction: float = 0.2

    # --- parameter-server costs
    #: server-side apply/serialize throughput (bytes/s per shard host);
    #: multi-threaded CPU-side SGD apply — pushes from different virtual
    #: workers serialize per shard, which is the PS contention §3
    #: motivates mitigating with global staleness
    ps_apply_bandwidth: float = 10e9
    #: fixed per-push/pull software latency (seconds)
    ps_latency: float = us(150)

    # --- Horovod baseline: achieved ring-allreduce bandwidths, fitted to
    # the paper's own Table-4 Horovod rows (see EXPERIMENTS.md)
    horovod_pcie_ring_bandwidth: float = 1.7e9
    horovod_ib_ring_bandwidth: float = 1.15e9

    def __post_init__(self) -> None:
        for name in ("conv_efficiency", "fc_efficiency", "elementwise_efficiency"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if self.kernel_overhead < 0 or self.ps_latency < 0:
            raise ConfigurationError("overheads must be non-negative")
        if not 0 < self.usable_memory_fraction <= 1:
            raise ConfigurationError("usable_memory_fraction must be in (0, 1]")

    def kind_efficiency(self, kind: str) -> float:
        """Sustained fraction of effective FLOP/s for a layer kind."""
        if kind in ("conv", "block", "stem"):
            return self.conv_efficiency
        if kind == "fc":
            return self.fc_efficiency
        return self.elementwise_efficiency

    def with_overrides(self, **kwargs: float) -> "Calibration":
        """A copy with some constants replaced (used by ablation benches)."""
        return replace(self, **kwargs)


#: The calibration used by every experiment unless overridden.
DEFAULT_CALIBRATION = Calibration()
