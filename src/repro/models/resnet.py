"""ResNet model builders (He et al.).

``build_resnet152`` is the paper's deep workload: 60.19M parameters =
230 MiB fp32 (the paper's "230MB").  Each bottleneck residual block is a
*composite* chain unit (1x1 -> 3x3 -> 1x1 convs with BN/ReLU, optional
downsample projection, and the element-wise skip-add), so the skip
connection never crosses a partition boundary and the model remains a
chain for the partitioner — mirroring how HetPipe treats the model as a
layer sequence.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph, validate_chain
from repro.models.layers import LayerSpec, composite, conv_unit, fc_unit, pool_unit
from repro.units import BYTES_PER_PARAM

#: Bottleneck blocks per stage.
_RESNET_STAGES: dict[str, tuple[int, int, int, int]] = {
    "resnet50": (3, 4, 6, 3),
    "resnet101": (3, 4, 23, 3),
    "resnet152": (3, 8, 36, 3),
}

_INPUT_SIZE = 224
_NUM_CLASSES = 1000


def _bottleneck(
    name: str,
    batch: int,
    cin: int,
    mid: int,
    cout: int,
    out_size: int,
    *,
    stride: int,
) -> LayerSpec:
    """One bottleneck residual block as a composite unit."""
    in_size = out_size * stride
    parts = [
        conv_unit(
            f"{name}/conv1",
            batch, cin, mid, 1, in_size, in_size,
            with_bn=True, bias=False,
        ),
        conv_unit(
            f"{name}/conv2",
            batch, mid, mid, 3, out_size, out_size,
            in_h=in_size, in_w=in_size,
            with_bn=True, bias=False,
        ),
        conv_unit(
            f"{name}/conv3",
            batch, mid, cout, 1, out_size, out_size,
            with_bn=True, with_relu=False, bias=False,
        ),
    ]
    if stride != 1 or cin != cout:
        parts.append(
            conv_unit(
                f"{name}/downsample",
                batch, cin, cout, 1, out_size, out_size,
                in_h=in_size, in_w=in_size,
                with_bn=True, with_relu=False, bias=False,
            )
        )
    # Element-wise skip-add + final ReLU: pure memory traffic, 2 kernels.
    out_elems = float(batch) * cout * out_size * out_size
    parts.append(
        LayerSpec(
            name=f"{name}/add_relu",
            kind="elementwise",
            flops_fwd=2.0 * out_elems,
            flops_bwd=2.0 * out_elems,
            param_bytes=0.0,
            output_bytes=out_elems * BYTES_PER_PARAM,
            stash_bytes=out_elems * BYTES_PER_PARAM,
            kernel_count=2,
        )
    )
    return composite(name, "block", parts)


def _build_resnet(variant: str, batch_size: int) -> ModelGraph:
    if variant not in _RESNET_STAGES:
        raise ConfigurationError(f"unknown ResNet variant {variant!r}")
    blocks = _RESNET_STAGES[variant]
    layers: list[LayerSpec] = []

    # Stem: 7x7/2 conv + BN + ReLU (112x112), then 3x3/2 max-pool (56x56).
    stem_conv = conv_unit(
        "stem/conv", batch_size, 3, 64, 7, 112, 112,
        in_h=_INPUT_SIZE, in_w=_INPUT_SIZE, with_bn=True, bias=False,
    )
    stem_pool = pool_unit("stem/pool", batch_size, 64, 56, 56, kernel=3)
    layers.append(composite("stem", "stem", [stem_conv, stem_pool]))

    cin = 64
    size = 56
    for stage_idx, (count, mid) in enumerate(zip(blocks, (64, 128, 256, 512)), start=2):
        cout = mid * 4
        for block_idx in range(1, count + 1):
            stride = 2 if (block_idx == 1 and stage_idx > 2) else 1
            if stride == 2:
                size //= 2
            layers.append(
                _bottleneck(
                    f"conv{stage_idx}_{block_idx}",
                    batch_size, cin, mid, cout, size,
                    stride=stride,
                )
            )
            cin = cout

    # Global average pool + classifier.
    layers.append(pool_unit("avgpool", batch_size, cin, 1, 1, kernel=size, kind="pool"))
    layers.append(fc_unit("fc", batch_size, cin, _NUM_CLASSES))
    validate_chain(layers)
    return ModelGraph(
        name=variant,
        batch_size=batch_size,
        input_bytes=float(batch_size) * 3 * _INPUT_SIZE * _INPUT_SIZE * BYTES_PER_PARAM,
        layers=tuple(layers),
    )


def build_resnet152(batch_size: int = 32) -> ModelGraph:
    """ResNet-152 at ImageNet resolution — the paper's 230 MiB model."""
    return _build_resnet("resnet152", batch_size)


def build_resnet101(batch_size: int = 32) -> ModelGraph:
    """ResNet-101 — extra coverage variant."""
    return _build_resnet("resnet101", batch_size)


def build_resnet50(batch_size: int = 32) -> ModelGraph:
    """ResNet-50 — extra coverage variant."""
    return _build_resnet("resnet50", batch_size)
