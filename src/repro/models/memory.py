"""Per-stage GPU memory model.

§4 of the paper: the memory a pipeline stage needs depends on where it
sits — GPU1 "needs to hold on to the results of the forward pass for all
stages of the pipeline" while the last GPU is immediately done with each
minibatch.  We model the worst-case number of in-flight minibatches at
stage ``s`` (0-indexed) as ``max(1, Nm - s)``: the first stage can have
all ``Nm`` admitted minibatches stashed, each later stage one fewer.
The pipeline simulator measures the true peak and the test suite asserts
the analytic bound dominates it.

A stage's requirement for ``m`` in-flight minibatches:

* weights + gradient buffers: ``param_bytes * weight_state_multiplier``
* stashed weight versions (w_p is kept until p's backward pass, §4):
  ``param_bytes * weight_version_factor * (m - 1)``
* stashed activations: ``stash_bytes * m``
* workspace: max over layers.

Feasibility compares against the device capacity minus framework
overhead, scaled by ``usable_memory_fraction``.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.gpu import GPUSpec
from repro.errors import ConfigurationError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.layers import LayerSpec


def in_flight_at_stage(nm: int, stage_index: int) -> int:
    """Worst-case concurrent minibatches held at a (0-indexed) stage."""
    return max(1, nm - stage_index)


#: Weight-version policy tag of the default (HetPipe §4) accounting.
DEFAULT_WEIGHT_POLICY = "stash_per_minibatch"


def weight_version_count(weight_policy: str, in_flight: int) -> int:
    """Extra weight copies a stage pins for ``in_flight`` minibatches.

    Per-variant accounting (see :mod:`repro.pipeline.variants.defs`):
    ``"stash_per_minibatch"`` (HetPipe §4 / PipeDream) stashes one
    version per in-flight minibatch beyond the live weights;
    ``"double_buffer"`` (PipeDream-2BW) holds exactly one shadow copy
    once the pipeline overlaps; ``"single"`` (GPipe flush) and
    ``"predicted"`` (XPipe) hold none — the wave drains before the next
    version, or prediction recomputes effective weights on the fly.
    """
    if weight_policy == "stash_per_minibatch":
        return max(0, in_flight - 1)
    if weight_policy == "double_buffer":
        return 1 if in_flight > 1 else 0
    if weight_policy in ("single", "predicted"):
        return 0
    raise ConfigurationError(
        f"unknown weight policy {weight_policy!r}; expected one of "
        f"stash_per_minibatch, double_buffer, single, predicted"
    )


def stage_memory_bytes(
    layers: Sequence[LayerSpec],
    in_flight: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
    weight_policy: str = DEFAULT_WEIGHT_POLICY,
) -> float:
    """Memory needed by a stage holding ``in_flight`` minibatches.

    ``weight_policy`` selects the variant's weight-version accounting;
    the default reproduces HetPipe's §4 model with arithmetic (and float
    results) identical to the pre-variant implementation.  Activation
    stash accounting is shared by all variants: activations are pinned
    by in-flight minibatches regardless of how weights are versioned.
    """
    params = sum(layer.param_bytes for layer in layers)
    stash = sum(layer.stash_bytes for layer in layers) * calibration.activation_stash_factor
    if calibration.activation_recompute:
        # GPipe-style: keep only boundary activations, recompute the rest
        stash *= calibration.recompute_stash_fraction
    workspace = max((layer.workspace_bytes for layer in layers), default=0.0)
    weight_state = params * calibration.weight_state_multiplier
    weight_versions = (
        params * calibration.weight_version_factor
        * weight_version_count(weight_policy, in_flight)
    )
    return weight_state + weight_versions + stash * in_flight + workspace


def gpu_usable_bytes(gpu: GPUSpec, calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Bytes of device memory available to the training job."""
    return gpu.memory_bytes * calibration.usable_memory_fraction - calibration.framework_overhead_bytes


def stage_fits(
    layers: Sequence[LayerSpec],
    in_flight: int,
    gpu: GPUSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> bool:
    """True if the stage fits the device at the given concurrency."""
    return stage_memory_bytes(layers, in_flight, calibration) <= gpu_usable_bytes(gpu, calibration)


def max_in_flight(
    layers: Sequence[LayerSpec],
    gpu: GPUSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
    limit: int = 32,
) -> int:
    """Largest ``m`` such that the stage fits with ``m`` minibatches.

    Returns 0 when even ``m = 1`` does not fit (the device cannot host
    this stage at all) — that is what disqualifies the RTX 2060 from
    running whole-model ResNet-152 in the Horovod baseline.
    """
    fits = 0
    for m in range(1, limit + 1):
        if stage_fits(layers, m, gpu, calibration):
            fits = m
        else:
            break
    return fits


def model_fits_single_gpu(
    layers: Sequence[LayerSpec],
    gpu: GPUSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> bool:
    """Whole-model DP feasibility check (one minibatch in flight)."""
    return stage_fits(layers, 1, gpu, calibration)
