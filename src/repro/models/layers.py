"""Layer units: FLOPs, parameter and activation accounting.

A *unit* is the granularity the partitioner works at.  For VGG a unit is
one conv(+ReLU), pool or FC layer; for ResNet a unit is a whole residual
block (a composite), so the model stays a chain even though blocks have
internal branches — the skip connection never crosses a partition
boundary, matching how HetPipe's partitioner treats the model as a layer
sequence.

Conventions (all per *minibatch*, fp32):

* ``flops_fwd`` counts multiply and add separately (2 x MACs for conv/FC).
* ``flops_bwd`` defaults to twice forward (grad w.r.t. inputs + grad
  w.r.t. weights), the standard estimate the paper's profiling would
  observe.
* ``output_bytes`` is the activation tensor handed to the next unit —
  this is what crosses a partition boundary in the forward pass, and its
  gradient (same size) crosses back in the backward pass.
* ``stash_bytes`` is the activation memory a unit must hold from its
  forward pass until its backward pass for ONE in-flight minibatch
  (inputs + internal intermediates).
* ``kernel_count`` approximates CUDA kernel launches per pass, which
  feeds the per-layer overhead term of the roofline model (this is what
  makes ResNet-152, with ~50 small-kernel blocks, relatively slower than
  its raw FLOPs suggest — as in the paper's measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.units import BYTES_PER_PARAM


@dataclass(frozen=True)
class LayerSpec:
    """One chain unit of a model.  See module docstring for conventions.

    ``parts`` is non-empty for composite units (residual blocks): the
    profiler then costs each internal layer separately and sums, so a
    block mixes compute-bound convs with memory-bound BN/ReLU correctly
    instead of taking a single roofline max over the aggregate.
    """

    name: str
    kind: str
    flops_fwd: float
    flops_bwd: float
    param_bytes: float
    output_bytes: float
    stash_bytes: float
    workspace_bytes: float = 0.0
    kernel_count: int = 1
    parts: tuple["LayerSpec", ...] = ()

    def __post_init__(self) -> None:
        if self.flops_fwd < 0 or self.flops_bwd < 0:
            raise ConfigurationError(f"{self.name}: negative FLOPs")
        if self.param_bytes < 0 or self.output_bytes < 0 or self.stash_bytes < 0:
            raise ConfigurationError(f"{self.name}: negative byte count")
        if self.kernel_count < 1:
            raise ConfigurationError(f"{self.name}: kernel_count must be >= 1")

    @property
    def params(self) -> float:
        """Parameter count (fp32)."""
        return self.param_bytes / BYTES_PER_PARAM

    @property
    def total_flops(self) -> float:
        return self.flops_fwd + self.flops_bwd

    def scaled(self, batch_ratio: float) -> "LayerSpec":
        """The same unit at a different batch size (params unchanged)."""
        return replace(
            self,
            flops_fwd=self.flops_fwd * batch_ratio,
            flops_bwd=self.flops_bwd * batch_ratio,
            output_bytes=self.output_bytes * batch_ratio,
            stash_bytes=self.stash_bytes * batch_ratio,
            workspace_bytes=self.workspace_bytes * batch_ratio,
        )


def _act_bytes(batch: int, channels: int, height: int, width: int) -> float:
    return float(batch) * channels * height * width * BYTES_PER_PARAM


def conv_unit(
    name: str,
    batch: int,
    cin: int,
    cout: int,
    kernel: int,
    out_h: int,
    out_w: int,
    *,
    in_h: int | None = None,
    in_w: int | None = None,
    with_relu: bool = True,
    with_bn: bool = False,
    bias: bool = True,
) -> LayerSpec:
    """A convolution (+BN)(+ReLU) unit.

    FLOPs: ``2 * K*K*Cin * Hout*Wout*Cout * B`` for the conv itself;
    BN/ReLU contribute element-wise FLOPs but are mostly memory-bound,
    which the profiler captures through the traffic term.  ``in_h/in_w``
    default to the output size (stride-1); pass them for strided convs so
    the stashed input activation is sized correctly.
    """
    macs = float(kernel) * kernel * cin * out_h * out_w * cout * batch
    flops = 2.0 * macs
    out_elems = float(batch) * cout * out_h * out_w
    params = float(kernel) * kernel * cin * cout + (cout if bias else 0)
    kernels = 1
    extra_flops = 0.0
    if with_bn:
        params += 2.0 * cout  # gamma, beta
        extra_flops += 2.0 * out_elems
        kernels += 1
    if with_relu:
        extra_flops += out_elems
        kernels += 1
    out_bytes = out_elems * BYTES_PER_PARAM
    # Stash: the conv input must be kept for the weight gradient; BN/ReLU
    # keep their own input (~= conv output).
    in_bytes = _act_bytes(batch, cin, in_h or out_h, in_w or out_w)
    stash = in_bytes + (out_bytes if (with_bn or with_relu) else 0.0)
    return LayerSpec(
        name=name,
        kind="conv",
        flops_fwd=flops + extra_flops,
        flops_bwd=2.0 * flops + extra_flops,
        param_bytes=params * BYTES_PER_PARAM,
        output_bytes=out_bytes,
        stash_bytes=stash,
        workspace_bytes=0.25 * out_bytes,
        kernel_count=kernels,
    )


def fc_unit(
    name: str,
    batch: int,
    cin: int,
    cout: int,
    *,
    with_relu: bool = False,
    with_dropout: bool = False,
) -> LayerSpec:
    """A fully-connected (+ReLU)(+dropout) unit."""
    macs = float(cin) * cout * batch
    flops = 2.0 * macs
    params = float(cin) * cout + cout
    out_bytes = float(batch) * cout * BYTES_PER_PARAM
    in_bytes = float(batch) * cin * BYTES_PER_PARAM
    kernels = 1 + int(with_relu) + int(with_dropout)
    return LayerSpec(
        name=name,
        kind="fc",
        flops_fwd=flops,
        flops_bwd=2.0 * flops,
        param_bytes=params * BYTES_PER_PARAM,
        output_bytes=out_bytes,
        stash_bytes=in_bytes + (out_bytes if (with_relu or with_dropout) else 0.0),
        kernel_count=kernels,
    )


def pool_unit(
    name: str,
    batch: int,
    channels: int,
    out_h: int,
    out_w: int,
    *,
    kernel: int = 2,
    kind: str = "pool",
) -> LayerSpec:
    """Max/avg pooling: negligible FLOPs, memory-bound."""
    out_elems = float(batch) * channels * out_h * out_w
    in_bytes = out_elems * kernel * kernel * BYTES_PER_PARAM
    out_bytes = out_elems * BYTES_PER_PARAM
    return LayerSpec(
        name=name,
        kind=kind,
        flops_fwd=out_elems * kernel * kernel,
        flops_bwd=out_elems * kernel * kernel,
        param_bytes=0.0,
        output_bytes=out_bytes,
        stash_bytes=in_bytes,
        kernel_count=1,
    )


def composite(name: str, kind: str, parts: Sequence[LayerSpec], output_bytes: float | None = None) -> LayerSpec:
    """Aggregate several internal layers into one chain unit.

    ``output_bytes`` defaults to the last part's output (the tensor that
    leaves the unit); everything else sums.
    """
    if not parts:
        raise ConfigurationError(f"{name}: composite of zero parts")
    return LayerSpec(
        name=name,
        kind=kind,
        flops_fwd=sum(p.flops_fwd for p in parts),
        flops_bwd=sum(p.flops_bwd for p in parts),
        param_bytes=sum(p.param_bytes for p in parts),
        output_bytes=parts[-1].output_bytes if output_bytes is None else output_bytes,
        stash_bytes=sum(p.stash_bytes for p in parts),
        workspace_bytes=max(p.workspace_bytes for p in parts),
        kernel_count=sum(p.kernel_count for p in parts),
        parts=tuple(parts),
    )
