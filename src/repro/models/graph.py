"""Model graph: an ordered chain of layer units.

HetPipe's partitioner divides "multiple layers of the model into k
partitions" (§4) — a chain decomposition.  :class:`ModelGraph` is that
chain plus whole-model accounting used across the reproduction (parameter
bytes drive PS traffic; total FLOPs drive compute time; boundary bytes
drive inter-stage activation/gradient traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.models.layers import LayerSpec
from repro.units import BYTES_PER_PARAM, mib


@dataclass(frozen=True)
class ModelGraph:
    """A DNN as a chain of units, at a fixed minibatch size."""

    name: str
    batch_size: int
    input_bytes: float
    layers: tuple[LayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(f"{self.name}: batch_size must be positive")
        if not self.layers:
            raise ConfigurationError(f"{self.name}: model has no layers")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    @property
    def param_bytes(self) -> float:
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def params(self) -> float:
        return self.param_bytes / BYTES_PER_PARAM

    @property
    def param_mib(self) -> float:
        """Parameter size in MiB — the unit the paper's '548MB' uses."""
        return self.param_bytes / mib(1)

    @property
    def flops_fwd(self) -> float:
        return sum(layer.flops_fwd for layer in self.layers)

    @property
    def flops_bwd(self) -> float:
        return sum(layer.flops_bwd for layer in self.layers)

    @property
    def total_flops(self) -> float:
        return self.flops_fwd + self.flops_bwd

    def boundary_bytes(self, index: int) -> float:
        """Activation bytes flowing from unit ``index`` to ``index + 1``.

        ``index == -1`` is the input boundary (data loader -> first unit).
        The backward gradient across the same boundary has equal size.
        """
        if index == -1:
            return self.input_bytes
        return self.layers[index].output_bytes

    def slice_params(self, start: int, stop: int) -> float:
        """Parameter bytes of units [start, stop)."""
        return sum(layer.param_bytes for layer in self.layers[start:stop])

    def names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def with_batch_size(self, batch_size: int) -> "ModelGraph":
        """Rescale the whole chain to a different minibatch size."""
        ratio = batch_size / self.batch_size
        return ModelGraph(
            name=self.name,
            batch_size=batch_size,
            input_bytes=self.input_bytes * ratio,
            layers=tuple(layer.scaled(ratio) for layer in self.layers),
        )

    def summary(self) -> str:
        """One-line description used in reports and logs."""
        return (
            f"{self.name}: {len(self.layers)} units, "
            f"{self.params / 1e6:.2f}M params ({self.param_mib:.0f} MiB), "
            f"{self.flops_fwd / self.batch_size / 1e9:.1f} GFLOPs/image fwd, "
            f"batch {self.batch_size}"
        )


def validate_chain(layers: Sequence[LayerSpec]) -> None:
    """Sanity checks shared by the model builders."""
    if not layers:
        raise ConfigurationError("empty layer chain")
    names = [layer.name for layer in layers]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ConfigurationError(f"duplicate layer names: {dupes}")
