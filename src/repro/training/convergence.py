"""Time-to-accuracy measurement (Figures 5 and 6).

Thin utilities over the numeric trainers: run a configuration, collect
its accuracy-vs-virtual-time curve, and find when it first reaches a
target accuracy — the paper's convergence metric ("49% faster to the
desired accuracy").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConvergenceError

Curve = list[tuple[float, int, float]]  # (virtual seconds, minibatches, accuracy)


@dataclass(frozen=True)
class ConvergenceResult:
    """Outcome of one run-to-accuracy measurement."""

    label: str
    target_accuracy: float
    time_to_target: float  # virtual seconds; inf if never reached
    minibatches_to_target: int
    final_accuracy: float
    curve: Curve

    @property
    def reached(self) -> bool:
        return self.time_to_target != float("inf")

    def speedup_vs(self, other: "ConvergenceResult") -> float:
        """How much faster this run reached the target than ``other``.

        Expressed like the paper: 0.49 means 49% faster (i.e. this run's
        time is 51% of the baseline's).
        """
        if not (self.reached and other.reached):
            raise ConvergenceError(
                f"cannot compare unconverged runs ({self.label} vs {other.label})"
            )
        return 1.0 - self.time_to_target / other.time_to_target


def smooth_curve(curve: Curve, window: int = 5) -> Curve:
    """Moving-average accuracy smoothing (SGD accuracy is noisy)."""
    if window <= 1:
        return list(curve)
    out: Curve = []
    for i, (t, n, _) in enumerate(curve):
        lo = max(0, i - window + 1)
        acc = sum(a for _, _, a in curve[lo : i + 1]) / (i + 1 - lo)
        out.append((t, n, acc))
    return out


def time_to_accuracy(curve: Curve, target: float, window: int = 5) -> tuple[float, int]:
    """First (time, minibatches) at which smoothed accuracy >= target."""
    for t, n, acc in smooth_curve(curve, window):
        if acc >= target:
            return t, n
    return float("inf"), -1


def summarize(label: str, curve: Curve, target: float, window: int = 5) -> ConvergenceResult:
    """Package a raw curve as a :class:`ConvergenceResult`."""
    t, n = time_to_accuracy(curve, target, window)
    return ConvergenceResult(
        label=label,
        target_accuracy=target,
        time_to_target=t,
        minibatches_to_target=n,
        final_accuracy=curve[-1][2] if curve else 0.0,
        curve=list(curve),
    )
