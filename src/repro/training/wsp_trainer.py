"""Numeric WSP training: real SGD under HetPipe's exact semantics.

This trainer executes *actual* gradient descent (numpy networks from
:mod:`repro.training.nn`) in *virtual time*, with every synchronization
rule of §4–§5 enforced:

* a minibatch's gradient is computed at the weight snapshot taken when
  it enters the pipeline (local staleness: up to ``Nm - 1`` predecessor
  updates missing);
* its update is applied to the local weights when it completes,
  ``pipeline_latency`` later, with completions spaced by the steady-state
  minibatch interval measured by the performance simulator;
* every ``Nm`` completions the worker pushes the wave's *aggregated*
  update to the global weights and pulls, with admission gated by the
  §5 rule ``p <= (G + D + 2) * Nm + s_local``;
* a pull replaces the local weights by the global weights plus the
  still-unpushed partial-wave updates (nothing is lost or double-counted
  — the test suite checks this reconstruction exactly).

Optional multiplicative jitter on the per-minibatch interval models
real-cluster noise; with jitter, larger ``D`` lets workers drift further
apart, which is what degrades convergence at ``D = 32`` in Figure 6.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, StalenessViolation
from repro.training.nn.data import SyntheticDataset
from repro.training.nn.network import MLP
from repro.wsp.staleness import admission_limit, desired_version_after_wave


@dataclass(frozen=True)
class WSPTrainingConfig:
    """Static description of one WSP training run."""

    num_virtual_workers: int
    nm: int
    d: int
    batch_size: int = 32
    lr: float = 0.04
    minibatch_interval: tuple[float, ...] = ()  # seconds, one per VW
    sync_time_per_wave: float = 0.0
    jitter: float = 0.0
    #: heavy-tail noise: with probability ``stall_prob`` a minibatch
    #: takes ``stall_factor`` times longer (GC pauses, network hiccups).
    #: Stalls make workers drift apart; a small ``D`` re-synchronizes
    #: them, a huge ``D`` lets staleness grow — the Figure-6 D=32 effect.
    stall_prob: float = 0.0
    stall_factor: float = 6.0
    seed: int = 1234
    max_minibatches: int = 20000

    def intervals(self) -> tuple[float, ...]:
        if self.minibatch_interval:
            if len(self.minibatch_interval) != self.num_virtual_workers:
                raise ConfigurationError("one interval per virtual worker required")
            return self.minibatch_interval
        return tuple(1.0 for _ in range(self.num_virtual_workers))


@dataclass
class _VWState:
    w_local: np.ndarray
    pending: np.ndarray  # applied locally but not yet pushed
    next_start: int = 1
    completed: int = 0
    pushed_wave: int = -1
    pulled_version: int = -1
    in_flight: int = 0
    last_completion: float = 0.0
    waiting_since: float | None = None
    stashed_updates: dict[int, np.ndarray] = field(default_factory=dict)


@dataclass
class TrainerStats:
    """Aggregate statistics of a run (read by tests and experiments)."""

    minibatches: int = 0
    waves: int = 0
    pulls: int = 0
    gate_blocks: int = 0
    max_clock_distance: int = 0
    total_wait: float = 0.0


class WSPTrainer:
    """Trains one model replica per virtual worker under WSP."""

    def __init__(
        self,
        config: WSPTrainingConfig,
        dataset: SyntheticDataset,
        model_dims: Sequence[int],
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.model = MLP(list(model_dims), seed=config.seed)
        self.w_global = self.model.get_params()
        self.states = [
            _VWState(w_local=self.w_global.copy(), pending=np.zeros_like(self.w_global))
            for _ in range(config.num_virtual_workers)
        ]
        self.stats = TrainerStats()
        self.rng = np.random.default_rng(config.seed)
        self._jitter_rng = np.random.default_rng(config.seed + 1)
        self._events: list[tuple[float, int, int, str, int]] = []
        self._seq = itertools.count()
        self._intervals = config.intervals()
        self._waiters: list[tuple[int, int]] = []  # (vw, desired version)
        self._limit = config.max_minibatches
        self.now = 0.0
        self.global_minibatches = 0
        self._curve: list[tuple[float, int, float]] = []

    # ------------------------------------------------------------------
    # event machinery
    # ------------------------------------------------------------------

    def _schedule(self, time: float, vw: int, kind: str, payload: int) -> None:
        heapq.heappush(self._events, (time, next(self._seq), vw, kind, payload))

    def _interval(self, vw: int) -> float:
        base = self._intervals[vw]
        if self.config.jitter > 0:
            base *= 1.0 + self.config.jitter * self._jitter_rng.uniform(-1.0, 1.0)
        if self.config.stall_prob > 0 and self._jitter_rng.random() < self.config.stall_prob:
            base *= self.config.stall_factor
        return base

    # ------------------------------------------------------------------
    # WSP mechanics
    # ------------------------------------------------------------------

    def _try_start(self, vw: int) -> None:
        state = self.states[vw]
        cfg = self.config
        while state.in_flight < cfg.nm and self.global_minibatches + state.in_flight < self._limit:
            p = state.next_start
            limit = admission_limit(state.pulled_version, cfg.d, cfg.nm)
            if p > limit:
                self.stats.gate_blocks += 1
                return
            self._start_minibatch(vw, p)
            state.next_start += 1

    def _start_minibatch(self, vw: int, p: int) -> None:
        state = self.states[vw]
        cfg = self.config
        # Gradient at the snapshot — the essence of pipeline staleness.
        x, y = self.dataset.minibatch(self.rng, cfg.batch_size)
        grad = self.model.gradient_at(state.w_local, x, y)
        state.stashed_updates[p] = -cfg.lr * grad
        state.in_flight += 1
        # Completion: one per interval in steady state; a lone minibatch
        # takes a full pipe traversal (~Nm intervals is an upper bound,
        # one interval the lower; we use the interval-paced model).
        completion = max(self.now, state.last_completion) + self._interval(vw)
        state.last_completion = completion
        self._schedule(completion, vw, "complete", p)

    def _complete_minibatch(self, vw: int, p: int) -> None:
        state = self.states[vw]
        cfg = self.config
        update = state.stashed_updates.pop(p)
        state.w_local = state.w_local + update
        state.pending = state.pending + update
        state.completed += 1
        state.in_flight -= 1
        self.global_minibatches += 1
        self.stats.minibatches += 1
        if state.completed != p:
            raise StalenessViolation(
                f"vw{vw}: completion order broken ({state.completed} != {p})"
            )
        if p % cfg.nm == 0:
            self._push_wave(vw, p // cfg.nm - 1)
        self._try_start(vw)

    def _push_wave(self, vw: int, wave: int) -> None:
        state = self.states[vw]
        # Aggregated wave update — WSP pushes once per wave, not per
        # minibatch (§5).
        self.w_global = self.w_global + state.pending
        state.pending = np.zeros_like(state.pending)
        state.pushed_wave = wave
        self.stats.waves += 1
        distance = wave - min(s.pushed_wave for s in self.states)
        self.stats.max_clock_distance = max(self.stats.max_clock_distance, distance)

        desired = desired_version_after_wave(wave, self.config.d)
        if min(s.pushed_wave for s in self.states) >= desired:
            self._schedule(self.now + self.config.sync_time_per_wave, vw, "pull", desired)
        else:
            # Event-driven wait: released by a future push.  The slowest
            # worker's desired version is always already satisfied, so at
            # least one worker keeps making progress — no deadlock.
            state.waiting_since = self.now
            self._waiters.append((vw, desired))
        self._release_waiters()

    def _release_waiters(self) -> None:
        version = min(s.pushed_wave for s in self.states)
        ready = [(vw, d) for vw, d in self._waiters if version >= d]
        self._waiters = [(vw, d) for vw, d in self._waiters if version < d]
        for vw, desired in ready:
            state = self.states[vw]
            if state.waiting_since is not None:
                self.stats.total_wait += self.now - state.waiting_since
                state.waiting_since = None
            self._schedule(self.now + self.config.sync_time_per_wave, vw, "pull", desired)

    def _pull(self, vw: int, desired: int) -> None:
        state = self.states[vw]
        version = min(s.pushed_wave for s in self.states)
        # Global weights plus the still-unpushed partial-wave updates —
        # the worker's own recent work is never lost.
        state.w_local = self.w_global + state.pending
        state.pulled_version = max(state.pulled_version, version)
        self.stats.pulls += 1
        self._try_start(vw)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def train(
        self,
        max_minibatches: int | None = None,
        eval_every: int = 200,
        eval_fn: Callable[[np.ndarray], float] | None = None,
    ) -> list[tuple[float, int, float]]:
        """Run to ``max_minibatches``; returns [(time, minibatches, acc)].

        ``eval_fn`` maps a parameter vector to a score; defaults to test
        accuracy of the *global* weights — what a practitioner would
        checkpoint.
        """
        if max_minibatches is not None:
            self._limit = max_minibatches
        if eval_fn is None:
            eval_fn = self._test_accuracy
        next_eval = eval_every
        for vw in range(self.config.num_virtual_workers):
            self._try_start(vw)
        while self._events and self.global_minibatches < self._limit:
            time, _, vw, kind, payload = heapq.heappop(self._events)
            self.now = time
            if kind == "complete":
                self._complete_minibatch(vw, payload)
            elif kind == "pull":
                self._pull(vw, payload)
            if self.global_minibatches >= next_eval:
                self._curve.append((self.now, self.global_minibatches, eval_fn(self.w_global)))
                next_eval += eval_every
        self._curve.append((self.now, self.global_minibatches, eval_fn(self.w_global)))
        return self._curve

    def _test_accuracy(self, params: np.ndarray) -> float:
        self.model.set_params(params)
        return self.model.evaluate(self.dataset.test_x, self.dataset.test_y)
