"""Numeric BSP data-parallel training — the Horovod baseline's semantics.

Lockstep rounds: every worker computes a gradient at the *same* weights
on its own minibatch; the averaged gradient updates the weights once per
round; the round costs ``iteration_time`` seconds of virtual time (from
the Horovod performance model).  No staleness of any kind — the
reference behaviour the paper compares WSP against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.training.nn.data import SyntheticDataset
from repro.training.nn.network import MLP


@dataclass(frozen=True)
class BSPTrainingConfig:
    """Static description of one BSP run."""

    num_workers: int
    iteration_time: float
    batch_size: int = 32
    lr: float = 0.04
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigurationError("need at least one worker")
        if self.iteration_time <= 0:
            raise ConfigurationError("iteration_time must be positive")


class BSPTrainer:
    """Synchronous data parallelism with gradient averaging."""

    def __init__(
        self,
        config: BSPTrainingConfig,
        dataset: SyntheticDataset,
        model_dims: Sequence[int],
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.model = MLP(list(model_dims), seed=config.seed)
        self.w = self.model.get_params()
        self.rng = np.random.default_rng(config.seed)
        self.now = 0.0
        self.global_minibatches = 0
        self._curve: list[tuple[float, int, float]] = []

    def _round(self) -> None:
        # Summed updates: each minibatch contributes -lr * grad, exactly
        # one SGD step's worth — the same per-minibatch semantics the WSP
        # trainer uses, so time-to-accuracy differences come from the
        # synchronization scheme, not from a hidden step-size change.
        grads = np.zeros_like(self.w)
        for _ in range(self.config.num_workers):
            x, y = self.dataset.minibatch(self.rng, self.config.batch_size)
            grads += self.model.gradient_at(self.w, x, y)
        self.w = self.w - self.config.lr * grads
        self.now += self.config.iteration_time
        self.global_minibatches += self.config.num_workers

    def train(
        self,
        max_minibatches: int,
        eval_every: int = 200,
        eval_fn: Callable[[np.ndarray], float] | None = None,
    ) -> list[tuple[float, int, float]]:
        """Run rounds until ``max_minibatches``; [(time, minibatches, acc)]."""
        if eval_fn is None:
            eval_fn = self._test_accuracy
        next_eval = eval_every
        while self.global_minibatches < max_minibatches:
            self._round()
            if self.global_minibatches >= next_eval:
                self._curve.append((self.now, self.global_minibatches, eval_fn(self.w)))
                next_eval += eval_every
        self._curve.append((self.now, self.global_minibatches, eval_fn(self.w)))
        return self._curve

    def _test_accuracy(self, params: np.ndarray) -> float:
        self.model.set_params(params)
        return self.model.evaluate(self.dataset.test_x, self.dataset.test_y)
