"""Throughput envelopes — differential oracles for the fuzz harness.

Analytic bounds on what any correct WSP/pipeline execution can achieve;
the scenario runner compares every measured window against them.  They
live apart from :mod:`repro.training.theory` (which re-exports them for
backward compatibility) so the fuzz hot path does not drag in NumPy and
the numeric trainers — ``repro fuzz`` startup is itself benchmarked.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.partition.spec import PartitionPlan


def pipeline_rate_bound(plan: "PartitionPlan", jitter: float = 0.0) -> float:
    """Upper bound on one virtual worker's steady minibatch rate (1/s).

    Every completed minibatch occupies the bottleneck stage's GPU for its
    forward + backward compute, and that GPU serializes work; jitter can
    shorten a task by at most a factor ``1 - jitter``.  Communication
    only slows things further, so this is a hard ceiling.
    """
    if not 0.0 <= jitter < 1.0:
        raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
    busiest = max(stage.fwd_compute + stage.bwd_compute for stage in plan.stages)
    if busiest <= 0.0:
        return math.inf
    return 1.0 / (busiest * (1.0 - jitter))


def wsp_completion_bounds(nm: int, d: int, waves: int) -> tuple[int, int]:
    """Per-worker completed-minibatch bounds over a ``waves``-wave window.

    The window runs between two instants at which the global version has
    just advanced (by ``waves``).  Lower bound: at the window end the
    worker has pushed the final wave, so it completed ``(v1+1)*Nm``
    minibatches overall, while at the window start §5 admission capped it
    at ``(v0+D+2)*Nm + Nm-1`` — the difference is
    ``(waves-D-2)*Nm + 1``.  Upper bound: the mirror argument,
    ``(waves+D+2)*Nm - 1``.
    """
    if nm < 1 or d < 0 or waves < 1:
        raise ConfigurationError(f"invalid window (nm={nm}, d={d}, waves={waves})")
    low = max(0, (waves - d - 2) * nm + 1)
    high = (waves + d + 2) * nm - 1
    return low, high


def wsp_wave_time_bound(
    plan: "PartitionPlan",
    sync_time: float,
    jitter: float = 0.0,
) -> float:
    """Worst-case wall time for one worker to produce one recorded wave.

    Fully-serialized execution (zero pipeline overlap) of the wave's
    ``Nm`` minibatches, each stretched by jitter, plus ``sync_time`` —
    the caller's worst-case serialized push + pull + shard-apply cost for
    this worker.  Because a worker blocked by the D-gate is released the
    moment the global version advances, consecutive global versions are
    never farther apart than the slowest worker's bound (plus shared-PS
    contention, which the caller folds into ``sync_time``).
    """
    if jitter < 0.0:
        raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
    if sync_time < 0.0:
        raise ConfigurationError(f"sync_time must be >= 0, got {sync_time}")
    return plan.nm * plan.serial_latency * (1.0 + jitter) + sync_time
