"""Numeric training substrate: real SGD under HetPipe's semantics.

The performance layer (sim/pipeline/wsp) answers *how fast* minibatches
flow; this package answers *what the staleness does to learning*, with
actual numpy gradient descent replayed in virtual time:

* :mod:`repro.training.nn` — from-scratch networks, losses, SGD, data.
* :mod:`repro.training.wsp_trainer` — WSP semantics (snapshots, waves,
  D-gated pulls) around real gradients.
* :mod:`repro.training.bsp_trainer` — the Horovod lockstep baseline.
* :mod:`repro.training.convergence` — time-to-accuracy measurement.
* :mod:`repro.training.theory` — Theorem 1 / Lemma 1 bounds and the
  empirical regret experiment.
* :mod:`repro.training.envelopes` — NumPy-free throughput envelopes
  (the fuzz harness's differential oracles).

Like :mod:`repro` itself, the package namespace resolves lazily so that
importing a NumPy-free submodule (``repro.training.envelopes``) does not
pull in the numeric trainers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "BSPTrainer": "repro.training.bsp_trainer",
    "BSPTrainingConfig": "repro.training.bsp_trainer",
    "ConvergenceResult": "repro.training.convergence",
    "smooth_curve": "repro.training.convergence",
    "summarize": "repro.training.convergence",
    "time_to_accuracy": "repro.training.convergence",
    "RegretMeasurement": "repro.training.theory",
    "lemma1_cardinality_bound": "repro.training.theory",
    "measure_regret": "repro.training.theory",
    "regret_bound": "repro.training.theory",
    "theoretical_sigma": "repro.training.theory",
    "pipeline_rate_bound": "repro.training.envelopes",
    "wsp_completion_bounds": "repro.training.envelopes",
    "wsp_wave_time_bound": "repro.training.envelopes",
    "TrainerStats": "repro.training.wsp_trainer",
    "WSPTrainer": "repro.training.wsp_trainer",
    "WSPTrainingConfig": "repro.training.wsp_trainer",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.training' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # static analyzers see the eager imports
    from repro.training.bsp_trainer import BSPTrainer, BSPTrainingConfig
    from repro.training.convergence import (
        ConvergenceResult,
        smooth_curve,
        summarize,
        time_to_accuracy,
    )
    from repro.training.envelopes import (
        pipeline_rate_bound,
        wsp_completion_bounds,
        wsp_wave_time_bound,
    )
    from repro.training.theory import (
        RegretMeasurement,
        lemma1_cardinality_bound,
        measure_regret,
        regret_bound,
        theoretical_sigma,
    )
    from repro.training.wsp_trainer import TrainerStats, WSPTrainer, WSPTrainingConfig
