"""Numeric training substrate: real SGD under HetPipe's semantics.

The performance layer (sim/pipeline/wsp) answers *how fast* minibatches
flow; this package answers *what the staleness does to learning*, with
actual numpy gradient descent replayed in virtual time:

* :mod:`repro.training.nn` — from-scratch networks, losses, SGD, data.
* :mod:`repro.training.wsp_trainer` — WSP semantics (snapshots, waves,
  D-gated pulls) around real gradients.
* :mod:`repro.training.bsp_trainer` — the Horovod lockstep baseline.
* :mod:`repro.training.convergence` — time-to-accuracy measurement.
* :mod:`repro.training.theory` — Theorem 1 / Lemma 1 bounds and the
  empirical regret experiment.
"""

from repro.training.bsp_trainer import BSPTrainer, BSPTrainingConfig
from repro.training.convergence import (
    ConvergenceResult,
    smooth_curve,
    summarize,
    time_to_accuracy,
)
from repro.training.theory import (
    RegretMeasurement,
    lemma1_cardinality_bound,
    measure_regret,
    regret_bound,
    theoretical_sigma,
)
from repro.training.wsp_trainer import TrainerStats, WSPTrainer, WSPTrainingConfig

__all__ = [
    "BSPTrainer",
    "BSPTrainingConfig",
    "ConvergenceResult",
    "RegretMeasurement",
    "TrainerStats",
    "WSPTrainer",
    "WSPTrainingConfig",
    "lemma1_cardinality_bound",
    "measure_regret",
    "regret_bound",
    "smooth_curve",
    "summarize",
    "theoretical_sigma",
    "time_to_accuracy",
]
