"""AD-PSGD-style decentralized training (Lian et al., cited in §9).

The paper positions asynchronous decentralized SGD as orthogonal
related work: "once a mini-batch is processed, a worker updates the
parameters by averaging them with only one neighbor which is randomly
selected ... done asynchronously, allowing faster workers to continue".
This module implements that baseline over the same virtual-time
machinery as the WSP trainer, so decentralized averaging can be
compared against parameter-server WSP on identical tasks — the
comparison HetPipe's §9 sketches but does not run.

Semantics per completed minibatch of worker ``i``:

1. gradient is computed at worker ``i``'s current parameters;
2. a neighbor ``j`` is chosen uniformly at random;
3. both move to the average: ``w_i = w_j = (w_i + w_j) / 2``;
4. worker ``i`` then applies its update: ``w_i -= lr * g_i``.

There is no global clock and no staleness bound — fast workers simply
iterate more often (the ASP-like regime).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.training.nn.data import SyntheticDataset
from repro.training.nn.network import MLP


@dataclass(frozen=True)
class ADPSGDConfig:
    """Static description of one decentralized run."""

    num_workers: int
    batch_size: int = 32
    lr: float = 0.04
    minibatch_interval: tuple[float, ...] = ()
    jitter: float = 0.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ConfigurationError("AD-PSGD needs at least two workers")
        if self.minibatch_interval and len(self.minibatch_interval) != self.num_workers:
            raise ConfigurationError("one interval per worker required")

    def intervals(self) -> tuple[float, ...]:
        if self.minibatch_interval:
            return self.minibatch_interval
        return tuple(1.0 for _ in range(self.num_workers))


class ADPSGDTrainer:
    """Asynchronous decentralized SGD with pairwise averaging."""

    def __init__(
        self,
        config: ADPSGDConfig,
        dataset: SyntheticDataset,
        model_dims: list[int],
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.model = MLP(model_dims, seed=config.seed)
        start = self.model.get_params()
        self.weights = [start.copy() for _ in range(config.num_workers)]
        self.rng = np.random.default_rng(config.seed)
        self._pair_rng = np.random.default_rng(config.seed + 7)
        self._jitter_rng = np.random.default_rng(config.seed + 13)
        self._events: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        self._intervals = config.intervals()
        self.now = 0.0
        self.global_minibatches = 0
        self.per_worker_minibatches = [0] * config.num_workers
        self.averaging_ops = 0
        self._curve: list[tuple[float, int, float]] = []

    def _interval(self, worker: int) -> float:
        base = self._intervals[worker]
        if self.config.jitter > 0:
            base *= 1.0 + self.config.jitter * self._jitter_rng.uniform(-1.0, 1.0)
        return base

    def _schedule(self, worker: int) -> None:
        heapq.heappush(
            self._events, (self.now + self._interval(worker), next(self._seq), worker)
        )

    def _step(self, worker: int) -> None:
        cfg = self.config
        x, y = self.dataset.minibatch(self.rng, cfg.batch_size)
        grad = self.model.gradient_at(self.weights[worker], x, y)
        # pairwise average with a random other worker (gossip step)
        others = [i for i in range(cfg.num_workers) if i != worker]
        neighbor = int(self._pair_rng.choice(others))
        mean = 0.5 * (self.weights[worker] + self.weights[neighbor])
        self.weights[neighbor] = mean
        self.weights[worker] = mean - cfg.lr * grad
        self.averaging_ops += 1
        self.per_worker_minibatches[worker] += 1
        self.global_minibatches += 1

    def consensus(self) -> np.ndarray:
        """The average model — what one would checkpoint."""
        return np.mean(self.weights, axis=0)

    def train(
        self,
        max_minibatches: int,
        eval_every: int = 200,
        eval_fn: Callable[[np.ndarray], float] | None = None,
    ) -> list[tuple[float, int, float]]:
        """Run to ``max_minibatches``; returns [(time, minibatches, acc)]."""
        if eval_fn is None:
            eval_fn = self._test_accuracy
        for worker in range(self.config.num_workers):
            self._schedule(worker)
        next_eval = eval_every
        while self._events and self.global_minibatches < max_minibatches:
            time, _, worker = heapq.heappop(self._events)
            self.now = time
            self._step(worker)
            self._schedule(worker)
            if self.global_minibatches >= next_eval:
                self._curve.append(
                    (self.now, self.global_minibatches, eval_fn(self.consensus()))
                )
                next_eval += eval_every
        self._curve.append((self.now, self.global_minibatches, eval_fn(self.consensus())))
        return self._curve

    def _test_accuracy(self, params: np.ndarray) -> float:
        self.model.set_params(params)
        return self.model.evaluate(self.dataset.test_x, self.dataset.test_y)
