"""Theorem 1 / Lemma 1 utilities (§6 and Appendix A), plus performance
envelopes for differential checking.

* :func:`regret_bound` — the paper's bound
  ``R[W] <= 4 M L sqrt((2 s_g + s_l) N / T)`` with ``s_l = s_local + 1``.
* :func:`lemma1_cardinality_bound` — ``|R_t| + |Q_t| <= (2 s_g + s_l)(N-1)``.
* :func:`measure_regret` — empirical regret of a WSP run on a *convex*
  objective (linear softmax classifier), comparing the noisy-sequence
  losses against the loss of a reference minimizer on the same minibatch
  sequence.  The property tests assert the measured regret decays and
  respects the bound's shape.

The *throughput envelope* functions at the bottom bound what any correct
simulation of a configuration can measure, independent of scheduling
details.  The fuzz harness (:mod:`repro.scenarios`) asserts every run
stays inside them:

* :func:`pipeline_rate_bound` — a virtual worker cannot complete
  minibatches faster than its bottleneck stage can compute them.
* :func:`wsp_completion_bounds` — over a window in which the global
  version advanced by ``waves``, each worker's completed-minibatch count
  is pinned between the D-gated minimum progress and the §5 admission
  maximum run-ahead.
* :func:`wsp_wave_time_bound` — a worker that owes one wave can always
  deliver it within its fully-serialized pipeline plus synchronization
  time; with bounded staleness and no deadlock the global version then
  advances at least that fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.partition.spec import PartitionPlan
from repro.training.nn.data import SyntheticDataset
from repro.training.nn.loss import softmax_cross_entropy
from repro.training.nn.network import MLP
from repro.training.wsp_trainer import WSPTrainer, WSPTrainingConfig
from repro.wsp.staleness import global_staleness


def regret_bound(t: int, m: float, l: float, s_global: int, s_local: int, n_workers: int) -> float:
    """Theorem 1: ``4 M L sqrt((2 s_g + s_l) N / T)`` with s_l = s_local+1."""
    if t <= 0:
        raise ConfigurationError("T must be positive")
    s_l = s_local + 1
    return 4.0 * m * l * math.sqrt((2 * s_global + s_l) * n_workers / t)


def lemma1_cardinality_bound(s_global: int, s_local: int, n_workers: int) -> int:
    """Lemma 1: ``|R_t| + |Q_t| <= (2 s_g + s_l)(N - 1)``."""
    s_l = s_local + 1
    return (2 * s_global + s_l) * (n_workers - 1)


def theoretical_sigma(m: float, l: float, s_global: int, s_local: int, n_workers: int) -> float:
    """The step-size constant of Theorem 1: ``M / (L sqrt((2s_g+s_l)N))``."""
    s_l = s_local + 1
    return m / (l * math.sqrt((2 * s_global + s_l) * n_workers))


@dataclass(frozen=True)
class RegretMeasurement:
    """Empirical regret of a WSP run on a convex problem."""

    t_values: tuple[int, ...]
    regrets: tuple[float, ...]
    bound_values: tuple[float, ...]
    s_global: int
    s_local: int
    n_workers: int


def measure_regret(
    dataset: SyntheticDataset,
    num_virtual_workers: int = 4,
    nm: int = 4,
    d: int = 1,
    total_minibatches: int = 2000,
    lr: float = 0.05,
    seed: int = 3,
    reference_steps: int = 4000,
) -> RegretMeasurement:
    """Run WSP on a convex (linear softmax) objective and measure regret.

    The per-step functions ``f_t`` are the minibatch losses evaluated at
    the noisy weights the run actually used; ``w*`` is approximated by
    long plain-SGD training on the same data, and ``f(w*)`` is the mean
    loss of the recorded minibatches at ``w*``.
    """
    dims = [dataset.feature_dim, dataset.num_classes]  # linear => convex
    recorded: list[tuple[np.ndarray, np.ndarray, float]] = []

    class _RecordingTrainer(WSPTrainer):
        def _start_minibatch(self, vw: int, p: int) -> None:  # noqa: N802
            state = self.states[vw]
            x, y = self.dataset.minibatch(self.rng, self.config.batch_size)
            self.model.set_params(state.w_local)
            loss, grad = self.model.loss_and_grad(x, y)
            recorded.append((x, y, loss))
            state.stashed_updates[p] = -self.config.lr * grad
            state.in_flight += 1
            completion = max(self.now, state.last_completion) + self._interval(vw)
            state.last_completion = completion
            self._schedule(completion, vw, "complete", p)

    config = WSPTrainingConfig(
        num_virtual_workers=num_virtual_workers,
        nm=nm,
        d=d,
        lr=lr,
        seed=seed,
        max_minibatches=total_minibatches,
    )
    trainer = _RecordingTrainer(config, dataset, dims)
    trainer.train(max_minibatches=total_minibatches, eval_every=total_minibatches)

    # Reference minimizer: long full-batch-ish SGD on the same objective.
    ref = MLP(dims, seed=seed)
    rng = np.random.default_rng(seed + 99)
    w = ref.get_params()
    for step in range(reference_steps):
        x, y = dataset.minibatch(rng, 128)
        grad = ref.gradient_at(w, x, y)
        w = w - (0.5 / math.sqrt(1 + step)) * grad

    # f(w*) per recorded minibatch.
    ref.set_params(w)
    star_losses = []
    for x, y, _ in recorded:
        logits = ref.forward(x)
        loss, _ = softmax_cross_entropy(logits, y)
        star_losses.append(loss)

    noisy_losses = [loss for _, _, loss in recorded]
    t_values = []
    regrets = []
    bounds = []
    s_local = nm - 1
    s_g = global_staleness(d, s_local)
    # crude (M, L) estimates for the bound's scale
    m_const = float(np.linalg.norm(w) + 1.0)
    l_const = 2.0
    total = len(recorded)
    for t in range(max(1, total // 10), total + 1, max(1, total // 10)):
        regret = float(np.mean(noisy_losses[:t]) - np.mean(star_losses[:t]))
        t_values.append(t)
        regrets.append(regret)
        bounds.append(regret_bound(t, m_const, l_const, s_g, s_local, num_virtual_workers))
    return RegretMeasurement(
        t_values=tuple(t_values),
        regrets=tuple(regrets),
        bound_values=tuple(bounds),
        s_global=s_g,
        s_local=s_local,
        n_workers=num_virtual_workers,
    )


# ----------------------------------------------------------------------
# throughput envelopes (differential oracles for the fuzz harness)
# ----------------------------------------------------------------------
# Re-exported from repro.training.envelopes, their NumPy-free home (the
# fuzz hot path imports them without dragging in the numeric trainers).

from repro.training.envelopes import (  # noqa: E402
    pipeline_rate_bound,
    wsp_completion_bounds,
    wsp_wave_time_bound,
)

__all__ = [
    "RegretMeasurement",
    "lemma1_cardinality_bound",
    "measure_regret",
    "pipeline_rate_bound",
    "regret_bound",
    "theoretical_sigma",
    "wsp_completion_bounds",
    "wsp_wave_time_bound",
]
