"""A small, real neural-network substrate in numpy.

This is not a toy wrapper: forward, backward, losses and SGD are
implemented from scratch and gradient-checked in the test suite.  The
convergence experiments (Figures 5 and 6) train these networks under the
*same* synchronization semantics HetPipe defines — what is substituted
relative to the paper is only the model scale (an MLP on synthetic data
instead of ResNet/VGG on ImageNet), not the training mathematics.
"""

from repro.training.nn.data import SyntheticDataset, make_classification, make_convex_problem
from repro.training.nn.layers import Dense, ReLU, Tanh
from repro.training.nn.loss import accuracy, softmax_cross_entropy
from repro.training.nn.network import MLP
from repro.training.nn.optimizer import SGD

__all__ = [
    "Dense",
    "MLP",
    "ReLU",
    "SGD",
    "SyntheticDataset",
    "Tanh",
    "accuracy",
    "make_classification",
    "make_convex_problem",
    "softmax_cross_entropy",
]
