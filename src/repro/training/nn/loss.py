"""Losses and metrics."""

from __future__ import annotations

import numpy as np


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch and the gradient w.r.t. logits.

    Numerically stable log-sum-exp formulation; ``labels`` are integer
    class ids of shape ``(batch,)``.
    """
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    batch = logits.shape[0]
    loss = -log_probs[np.arange(batch), labels].mean()
    probs = np.exp(log_probs)
    grad = probs
    grad[np.arange(batch), labels] -= 1.0
    return float(loss), grad / batch


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` against integer ``labels``."""
    return float((logits.argmax(axis=1) == labels).mean())
