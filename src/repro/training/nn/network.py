"""A multi-layer perceptron with flat-vector parameter access."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.training.nn.layers import Dense, Layer, ReLU
from repro.training.nn.loss import accuracy, softmax_cross_entropy


class MLP:
    """Fully-connected classifier: Dense/ReLU stacks + softmax CE loss.

    >>> import numpy as np
    >>> net = MLP([4, 8, 3], seed=0)
    >>> x = np.zeros((2, 4)); y = np.array([0, 1])
    >>> loss, grad = net.loss_and_grad(x, y)
    >>> grad.shape == (net.param_count,)
    True
    """

    def __init__(self, dims: list[int], seed: int = 0) -> None:
        if len(dims) < 2:
            raise ConfigurationError("MLP needs at least input and output dims")
        rng = np.random.default_rng(seed)
        self.dims = list(dims)
        self.layers: list[Layer] = []
        for i in range(len(dims) - 1):
            self.layers.append(Dense(dims[i], dims[i + 1], rng))
            if i < len(dims) - 2:
                self.layers.append(ReLU())

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def loss_and_grad(self, x: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Mean loss and the flat gradient vector at the current params."""
        logits = self.forward(x)
        loss, grad = softmax_cross_entropy(logits, labels)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return loss, self.get_grads()

    def evaluate(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on a dataset (no caching side effects kept)."""
        return accuracy(self.forward(x), labels)

    # ------------------------------------------------------------------
    # flat parameter vector interface
    # ------------------------------------------------------------------

    def get_params(self) -> np.ndarray:
        return np.concatenate([layer.get_params() for layer in self.layers if layer.param_count])

    def set_params(self, flat: np.ndarray) -> None:
        if flat.size != self.param_count:
            raise ConfigurationError(f"expected {self.param_count} params, got {flat.size}")
        offset = 0
        for layer in self.layers:
            n = layer.param_count
            if n:
                layer.set_params(flat[offset : offset + n])
                offset += n

    def get_grads(self) -> np.ndarray:
        return np.concatenate([layer.get_grads() for layer in self.layers if layer.param_count])

    def gradient_at(self, params: np.ndarray, x: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Gradient evaluated at ``params`` (restores nothing — callers
        own the parameter state, which is exactly what the staleness
        semantics need: compute at a snapshot, apply elsewhere)."""
        self.set_params(params)
        _, grad = self.loss_and_grad(x, labels)
        return grad
