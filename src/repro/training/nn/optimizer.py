"""Optimizers over flat parameter vectors."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class SGD:
    """Plain SGD with optional decay — matches the theory's ``u_t = -eta_t g_t``.

    ``eta_t = lr / sqrt(1 + t * decay)`` reproduces the
    ``sigma / sqrt(t)`` schedule of Theorem 1 when ``decay > 0``.
    """

    def __init__(self, lr: float, decay: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError("lr must be positive")
        if decay < 0:
            raise ConfigurationError("decay must be non-negative")
        self.lr = lr
        self.decay = decay
        self.steps = 0

    def step_size(self) -> float:
        return self.lr / np.sqrt(1.0 + self.steps * self.decay)

    def update(self, grad: np.ndarray) -> np.ndarray:
        """The update vector ``u = -eta_t * grad``; advances the step count."""
        u = -self.step_size() * grad
        self.steps += 1
        return u
