"""Differentiable layers with explicit forward/backward.

Each layer caches what its backward pass needs.  Parameters live in the
layer but are exposed as flat vectors through ``get_params`` /
``set_params`` so the distributed trainers can treat a whole network as
one parameter vector — the natural representation for parameter-server
semantics (push/pull whole-model update vectors).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Layer:
    """Interface: forward caches, backward returns input gradient."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def param_count(self) -> int:
        return 0

    def get_params(self) -> np.ndarray:
        return np.empty(0)

    def set_params(self, flat: np.ndarray) -> None:
        if flat.size:
            raise ConfigurationError("layer has no parameters")

    def get_grads(self) -> np.ndarray:
        return np.empty(0)


class Dense(Layer):
    """Affine layer ``y = x W + b`` with He initialization."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ConfigurationError("Dense dims must be positive")
        self.in_dim = in_dim
        self.out_dim = out_dim
        scale = np.sqrt(2.0 / in_dim)
        self.weight = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.grad_weight = self._x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def param_count(self) -> int:
        return self.weight.size + self.bias.size

    def get_params(self) -> np.ndarray:
        return np.concatenate([self.weight.ravel(), self.bias])

    def set_params(self, flat: np.ndarray) -> None:
        if flat.size != self.param_count:
            raise ConfigurationError(
                f"expected {self.param_count} params, got {flat.size}"
            )
        w = self.weight.size
        self.weight = flat[:w].reshape(self.weight.shape).copy()
        self.bias = flat[w:].copy()

    def get_grads(self) -> np.ndarray:
        return np.concatenate([self.grad_weight.ravel(), self.grad_bias])


class ReLU(Layer):
    """Element-wise ``max(0, x)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return grad_out * self._mask


class Tanh(Layer):
    """Element-wise hyperbolic tangent."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._y is not None, "backward before forward"
        return grad_out * (1.0 - self._y**2)
