"""Synthetic datasets for the convergence experiments.

The paper trains on ImageNet; what Figures 5 and 6 compare is *relative
time-to-accuracy* of identical models under different synchronization
schemes.  ``make_classification`` produces a nonlinearly-separable
multi-class problem hard enough that an MLP takes thousands of SGD steps
to reach high accuracy, giving the same gradually-rising accuracy curves.
``make_convex_problem`` produces an L2-regularized logistic-regression
task (convex, so Theorem 1 applies exactly) for the regret experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SyntheticDataset:
    """Train/test split of a synthetic classification problem."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def feature_dim(self) -> int:
        return self.train_x.shape[1]

    def minibatch(self, rng: np.random.Generator, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        idx = rng.integers(0, len(self.train_x), size=batch_size)
        return self.train_x[idx], self.train_y[idx]


def make_classification(
    samples: int = 16384,
    feature_dim: int = 24,
    num_classes: int = 8,
    test_fraction: float = 0.2,
    noise: float = 0.05,
    teacher_hidden: int = 8,
    seed: int = 7,
) -> SyntheticDataset:
    """Nonlinear multi-class problem (random two-layer teacher + noise).

    Labels come from a frozen random teacher MLP applied to Gaussian
    inputs, with label noise; a student MLP's accuracy climbs gradually
    over several thousand minibatches (~0.54 after 1k, ~0.69 after 8k at
    lr 0.2), which is the regime the time-to-accuracy experiments need.
    """
    if not 0 < test_fraction < 1:
        raise ConfigurationError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, feature_dim))
    hidden = np.tanh(x @ rng.normal(size=(feature_dim, teacher_hidden)))
    scores = hidden @ rng.normal(size=(teacher_hidden, num_classes))
    y = scores.argmax(axis=1)
    flip = rng.random(samples) < noise
    y[flip] = rng.integers(0, num_classes, size=flip.sum())
    split = int(samples * (1 - test_fraction))
    return SyntheticDataset(
        train_x=x[:split],
        train_y=y[:split],
        test_x=x[split:],
        test_y=y[split:],
        num_classes=num_classes,
    )


def make_convex_problem(
    samples: int = 4096,
    feature_dim: int = 16,
    num_classes: int = 4,
    seed: int = 11,
) -> SyntheticDataset:
    """Linearly-separable-ish problem for convex (logistic) objectives."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=2.0, size=(num_classes, feature_dim))
    y = rng.integers(0, num_classes, size=samples)
    x = centers[y] + rng.normal(size=(samples, feature_dim))
    split = int(samples * 0.8)
    return SyntheticDataset(
        train_x=x[:split],
        train_y=y[:split],
        test_x=x[split:],
        test_y=y[split:],
        num_classes=num_classes,
    )
