"""GPU ordering search within a virtual worker.

With heterogeneous GPUs, *which* GPU takes which pipeline position
matters twice over: memory-rich devices suit early stages (which stash
activations for up to ``Nm`` in-flight minibatches, §4) and link locality
decides whether a boundary crosses PCIe or InfiniBand.  We enumerate the
distinct orderings of the virtual worker's devices, deduplicating by the
``(spec code, node)`` signature — two TITAN Vs in the same node are
interchangeable, so VVQQ yields 6 distinct orderings, not 24.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterator, Sequence

from repro.cluster.gpu import GPUDevice


def ordering_signature(gpus: Sequence[GPUDevice]) -> tuple[tuple[str, int], ...]:
    """The equivalence key of an ordering: spec + node per position."""
    return tuple((gpu.code, gpu.node_id) for gpu in gpus)


def candidate_orderings(
    gpus: Sequence[GPUDevice],
    max_orderings: int = 5040,
) -> Iterator[tuple[GPUDevice, ...]]:
    """Distinct orderings of the virtual worker's GPUs.

    ``max_orderings`` bounds the enumeration for pathological inputs
    (7! = 5040 caps a fully-heterogeneous 7-GPU worker; homogeneous
    workers yield exactly one ordering).
    """
    seen: set[tuple[tuple[str, int], ...]] = set()
    emitted = 0
    for perm in permutations(gpus):
        signature = ordering_signature(perm)
        if signature in seen:
            continue
        seen.add(signature)
        yield perm
        emitted += 1
        if emitted >= max_orderings:
            return
