"""Partition plan data model.

A :class:`PartitionPlan` assigns contiguous layer ranges of a model to
the ordered GPUs of one virtual worker, carrying the per-stage timing and
memory numbers the pipeline simulator consumes.  Plans are immutable and
self-validating: stages must tile the layer chain exactly and respect
device memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPUDevice
from repro.errors import ConfigurationError
from repro.units import fmt_bytes


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: layers ``[start, stop)`` on ``gpu``.

    Times are *per minibatch*:

    * ``fwd_compute`` / ``bwd_compute`` — roofline compute time.
    * ``fwd_comm_in`` — receiving the input activation from the previous
      stage (0 for the first stage).
    * ``bwd_comm_in`` — receiving the output gradient from the next
      stage (0 for the last stage).
    * ``memory_bytes`` — requirement at the planned in-flight count
      ``in_flight``.
    """

    index: int
    start: int
    stop: int
    gpu: GPUDevice
    fwd_compute: float
    bwd_compute: float
    fwd_comm_in: float
    bwd_comm_in: float
    memory_bytes: float
    in_flight: int
    param_bytes: float
    activation_in_bytes: float  # boundary tensor received forward

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ConfigurationError(f"stage {self.index}: empty layer range")

    @property
    def fwd_time(self) -> float:
        """Forward service time including receiving its input."""
        return self.fwd_compute + self.fwd_comm_in

    @property
    def bwd_time(self) -> float:
        """Backward service time including receiving its output-gradient."""
        return self.bwd_compute + self.bwd_comm_in

    @property
    def period(self) -> float:
        """Total busy time the stage spends per minibatch — the paper's
        'execution time of a partition'.  The pipeline's steady-state
        throughput is one minibatch per max-stage period."""
        return self.fwd_time + self.bwd_time

    @property
    def layer_count(self) -> int:
        return self.stop - self.start

    def describe(self) -> str:
        return (
            f"stage{self.index} on {self.gpu}: layers [{self.start},{self.stop}) "
            f"period={self.period * 1e3:.1f}ms mem={fmt_bytes(self.memory_bytes)} "
            f"(m={self.in_flight})"
        )


@dataclass(frozen=True)
class PartitionPlan:
    """A complete stage assignment for one virtual worker."""

    model_name: str
    nm: int
    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("plan with no stages")
        if self.nm < 1:
            raise ConfigurationError(f"nm must be >= 1, got {self.nm}")
        expected = 0
        for stage in self.stages:
            if stage.start != expected:
                raise ConfigurationError(
                    f"stage {stage.index} starts at {stage.start}, expected {expected}"
                )
            expected = stage.stop

    @property
    def k(self) -> int:
        """Number of stages / GPUs."""
        return len(self.stages)

    @property
    def num_layers(self) -> int:
        return self.stages[-1].stop

    @property
    def bottleneck_period(self) -> float:
        """Max stage period — the steady-state time per minibatch."""
        return max(stage.period for stage in self.stages)

    @property
    def serial_latency(self) -> float:
        """One minibatch traversing the whole pipe with no overlap
        (the ``Nm = 1`` behaviour, i.e. naive model parallelism)."""
        return sum(stage.period for stage in self.stages)

    @property
    def gpus(self) -> tuple[GPUDevice, ...]:
        return tuple(stage.gpu for stage in self.stages)

    def stage_of_layer(self, layer_index: int) -> Stage:
        for stage in self.stages:
            if stage.start <= layer_index < stage.stop:
                return stage
        raise ConfigurationError(f"layer {layer_index} outside plan range")

    def describe(self) -> str:
        header = (
            f"{self.model_name}: k={self.k}, Nm={self.nm}, "
            f"bottleneck={self.bottleneck_period * 1e3:.1f}ms, "
            f"serial={self.serial_latency * 1e3:.1f}ms"
        )
        return "\n".join([header] + ["  " + stage.describe() for stage in self.stages])
