"""Exact min-max chain partitioning by dynamic programming.

For a fixed GPU ordering ``g_0 .. g_{k-1}`` and pipeline depth ``Nm``,
find boundaries ``0 = b_0 < b_1 < ... < b_k = L`` minimizing the maximum
stage *period* (fwd + bwd compute plus the §7 communication terms:
receiving the activation forward and the gradient backward), subject to
every stage fitting its GPU's memory at that stage's worst-case in-flight
minibatch count.

``dp[s][j]`` = best achievable (max period, total period) over the first
``s + 1`` stages covering layers ``[0, j)``; lexicographic minimization
makes the result deterministic and secondarily optimizes pipe latency.
Complexity O(k * L^2) with O(1) stage evaluation via profile prefix sums
— L <= ~60 units for our models, so this is instant and provably optimal
(the branch-and-bound in :mod:`repro.partition.bnb` cross-checks it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.gpu import GPUDevice
from repro.cluster.topology import InterconnectSpec
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.memory import (
    DEFAULT_WEIGHT_POLICY,
    gpu_usable_bytes,
    in_flight_at_stage,
    weight_version_count,
)
from repro.models.profiler import ModelProfile, Profiler

_INF = float("inf")


@dataclass(frozen=True)
class StageEval:
    """Evaluation of one candidate stage (layers [start, stop) on gpu)."""

    fwd_compute: float
    bwd_compute: float
    fwd_comm_in: float
    bwd_comm_in: float
    memory_bytes: float
    feasible: bool

    @property
    def period(self) -> float:
        return self.fwd_compute + self.bwd_compute + self.fwd_comm_in + self.bwd_comm_in


class StageEvaluator:
    """Costs a candidate stage in O(1)-ish time.

    Compute comes from the profiler's per-GPU-type prefix sums; the
    communication terms are precomputed per (stage, boundary) since they
    depend only on the boundary layer and the adjacent GPU pair; memory
    sums run over precomputed per-layer byte tuples (same left-to-right
    float summation as :func:`~repro.models.memory.stage_memory_bytes`,
    so results are bit-identical — feasibility decisions cannot drift).
    The DP calls this O(k * L^2) times per solve, which is why every
    per-call allocation and attribute chase here shows up in fuzz
    throughput.
    """

    def __init__(
        self,
        model: ModelGraph,
        gpus: Sequence[GPUDevice],
        nm: int,
        interconnect: InterconnectSpec,
        calibration: Calibration = DEFAULT_CALIBRATION,
        profiler: Profiler | None = None,
        weight_policy: str = DEFAULT_WEIGHT_POLICY,
    ) -> None:
        self.model = model
        self.gpus = list(gpus)
        self.nm = nm
        self.interconnect = interconnect
        self.calibration = calibration
        self.weight_policy = weight_policy
        profiler = profiler or Profiler(calibration)
        self._profiles: list[ModelProfile] = [
            profiler.profile(model, gpu.spec) for gpu in self.gpus
        ]
        self._usable = [gpu_usable_bytes(gpu.spec, calibration) for gpu in self.gpus]

        layers = model.layers
        length = len(layers)
        k = len(self.gpus)
        self._param_by_layer = tuple(layer.param_bytes for layer in layers)
        self._stash_by_layer = tuple(layer.stash_bytes for layer in layers)
        self._workspace_by_layer = tuple(layer.workspace_bytes for layer in layers)
        self._in_flight = [in_flight_at_stage(nm, s) for s in range(k)]
        # Per-variant weight-version copy count per stage.  Under the
        # default policy this is exactly max(0, in_flight - 1), so the
        # evaluate() arithmetic below stays bit-identical to the
        # pre-variant implementation.
        self._version_count = [
            weight_version_count(weight_policy, m) for m in self._in_flight
        ]
        # comm[s][boundary]: receive time of the activation entering at
        # ``start`` (forward) / the gradient entering at ``stop`` (backward)
        self._fwd_comm: list[tuple[float, ...] | None] = [None] * k
        self._bwd_comm: list[tuple[float, ...] | None] = [None] * k
        for s in range(k):
            if s > 0:
                self._fwd_comm[s] = tuple(
                    interconnect.transfer_time(
                        model.boundary_bytes(start - 1), self.gpus[s - 1], self.gpus[s]
                    )
                    for start in range(length + 1)
                )
            if s < k - 1:
                self._bwd_comm[s] = tuple(
                    interconnect.transfer_time(
                        model.boundary_bytes(stop - 1), self.gpus[s + 1], self.gpus[s]
                    )
                    for stop in range(1, length + 1)
                )

    @property
    def k(self) -> int:
        return len(self.gpus)

    @property
    def num_layers(self) -> int:
        return len(self.model)

    def in_flight(self, stage_index: int) -> int:
        return in_flight_at_stage(self.nm, stage_index)

    def evaluate(self, start: int, stop: int, stage_index: int) -> StageEval:
        """Evaluate layers ``[start, stop)`` as stage ``stage_index``."""
        profile = self._profiles[stage_index]
        fwd = profile.stage_fwd(start, stop)
        bwd = profile.stage_bwd(start, stop)

        fwd_comm_table = self._fwd_comm[stage_index]
        fwd_comm = fwd_comm_table[start] if fwd_comm_table is not None else 0.0
        bwd_comm_table = self._bwd_comm[stage_index]
        bwd_comm = bwd_comm_table[stop - 1] if bwd_comm_table is not None else 0.0

        # Same arithmetic, in the same order, as stage_memory_bytes over
        # the layer slice — every operation and its associativity is
        # preserved, so the float result is bit-identical and feasibility
        # decisions cannot drift from the reference implementation.
        cal = self.calibration
        in_flight = self._in_flight[stage_index]
        params = sum(self._param_by_layer[start:stop])
        stash = sum(self._stash_by_layer[start:stop]) * cal.activation_stash_factor
        if cal.activation_recompute:
            stash *= cal.recompute_stash_fraction
        workspace = max(self._workspace_by_layer[start:stop], default=0.0)
        weight_state = params * cal.weight_state_multiplier
        weight_versions = (
            params * cal.weight_version_factor * self._version_count[stage_index]
        )
        memory = weight_state + weight_versions + stash * in_flight + workspace
        feasible = memory <= self._usable[stage_index]
        return StageEval(
            fwd_compute=fwd,
            bwd_compute=bwd,
            fwd_comm_in=fwd_comm,
            bwd_comm_in=bwd_comm,
            memory_bytes=memory,
            feasible=feasible,
        )


def solve_boundaries(evaluator: StageEvaluator) -> list[int] | None:
    """Optimal boundaries ``[b_0 .. b_k]`` or None when infeasible."""
    k = evaluator.k
    length = evaluator.num_layers
    if length < k:
        return None

    # dp[s][j]: best (max_period, total_period) for stages 0..s covering [0, j)
    dp = [[(_INF, _INF)] * (length + 1) for _ in range(k)]
    choice = [[-1] * (length + 1) for _ in range(k)]

    for j in range(1, length - k + 2):
        ev = evaluator.evaluate(0, j, 0)
        if ev.feasible:
            dp[0][j] = (ev.period, ev.period)
            choice[0][j] = 0

    for s in range(1, k):
        # stage s must leave at least (k - 1 - s) layers for later stages
        # and earlier stages need at least s layers.
        for j in range(s + 1, length - (k - 1 - s) + 1):
            best = (_INF, _INF)
            best_i = -1
            for i in range(s, j):
                prev = dp[s - 1][i]
                if prev[0] == _INF:
                    continue
                ev = evaluator.evaluate(i, j, s)
                if not ev.feasible:
                    continue
                cand = (max(prev[0], ev.period), prev[1] + ev.period)
                if cand < best:
                    best = cand
                    best_i = i
            dp[s][j] = best
            choice[s][j] = best_i

    if dp[k - 1][length][0] == _INF:
        return None

    boundaries = [length]
    j = length
    for s in range(k - 1, -1, -1):
        i = choice[s][j]
        boundaries.append(i)
        j = i
    boundaries.reverse()
    return boundaries
