"""Model partitioner — the paper's §7 algorithm.

Divides a model chain into ``k`` contiguous stages, one per GPU of a
virtual worker, minimizing the maximum stage execution time (compute +
time to receive activations forward and gradients backward) subject to
each stage fitting its GPU's memory with the pipeline's in-flight
minibatch counts.  The paper solves this with CPLEX; we provide an exact
dynamic-programming solver plus a branch-and-bound cross-check, and a
search over GPU orderings within the virtual worker.
"""

from repro.partition.spec import PartitionPlan, Stage
from repro.partition.dp_solver import solve_boundaries
from repro.partition.bnb import solve_bnb
from repro.partition.ordering import candidate_orderings
from repro.partition.planner import (
    clear_plan_cache,
    max_feasible_nm,
    plan_cache_stats,
    plan_virtual_worker,
    plan_virtual_worker_bnb,
)

__all__ = [
    "PartitionPlan",
    "Stage",
    "candidate_orderings",
    "clear_plan_cache",
    "max_feasible_nm",
    "plan_cache_stats",
    "plan_virtual_worker",
    "plan_virtual_worker_bnb",
    "solve_bnb",
    "solve_boundaries",
]
