"""High-level partition planner.

Glues the pieces together: for a virtual worker's GPU set and a pipeline
depth ``Nm``, search GPU orderings, solve each with the exact DP, and
return the :class:`~repro.partition.spec.PartitionPlan` with the smallest
bottleneck period (ties broken by serial latency, then by ordering
signature for determinism).  Also computes ``Maxm``, the largest
memory-feasible ``Nm`` for a virtual worker (§4).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.cluster.gpu import GPUDevice
from repro.cluster.topology import InterconnectSpec
from repro.errors import PartitionError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.memory import DEFAULT_WEIGHT_POLICY
from repro.models.profiler import Profiler
from repro.partition.dp_solver import StageEvaluator, solve_boundaries
from repro.partition.ordering import candidate_orderings, ordering_signature
from repro.partition.spec import PartitionPlan, Stage

#: Entries kept in the boundaries cache before the least recently used
#: one is evicted.  A fuzz batch redraws many equal virtual workers (ED
#: hands every worker the same GPU mix) and the experiments re-plan the
#: same (model, ordering, Nm) in ``max_feasible_nm`` and again in
#: ``choose_nm``; a couple thousand entries covers both comfortably.
_PLAN_CACHE_MAX = 2048

_boundary_cache: "OrderedDict[tuple, list[int] | None]" = OrderedDict()
_plan_cache_hits = 0
_plan_cache_misses = 0


def _plan_cache_key(
    model: ModelGraph,
    ordering: Sequence[GPUDevice],
    nm: int,
    interconnect: InterconnectSpec,
    calibration: Calibration,
    weight_policy: str,
) -> tuple:
    """Everything :func:`solve_boundaries` can observe, by value.

    Stage costs depend on the GPU *types* in order, whether adjacent
    GPUs share a node (or are the same device), the model content, the
    depth, the link/calibration constants, and the variant's
    weight-version accounting policy (it moves the memory-feasibility
    frontier) — not on device ids.  Two virtual workers with the same
    signature therefore share boundaries (ED allocations produce N
    identical workers), and a re-planned worker hits even though
    ``materialize`` rebuilt the model object.
    """
    adjacency = tuple(
        (a.gpu_id == b.gpu_id, a.same_node(b)) for a, b in zip(ordering, ordering[1:])
    )
    specs = tuple(gpu.spec for gpu in ordering)
    return (model, nm, specs, adjacency, interconnect, calibration, weight_policy)


def _solve_cached(evaluator: StageEvaluator, key: tuple) -> list[int] | None:
    global _plan_cache_hits, _plan_cache_misses
    cached = _boundary_cache.get(key)
    if cached is not None or key in _boundary_cache:
        _boundary_cache.move_to_end(key)
        _plan_cache_hits += 1
        return cached
    _plan_cache_misses += 1
    boundaries = solve_boundaries(evaluator)
    _boundary_cache[key] = boundaries
    if len(_boundary_cache) > _PLAN_CACHE_MAX:
        _boundary_cache.popitem(last=False)
    return boundaries


def plan_cache_stats() -> tuple[int, int, int]:
    """``(hits, misses, entries)`` of the boundaries cache (diagnostics)."""
    return _plan_cache_hits, _plan_cache_misses, len(_boundary_cache)


def clear_plan_cache() -> None:
    """Drop all memoized boundaries (tests and benchmarks use this to
    compare cached against fresh solves)."""
    global _plan_cache_hits, _plan_cache_misses
    _boundary_cache.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def _plan_from_boundaries(
    evaluator: StageEvaluator, boundaries: list[int], nm: int, model: ModelGraph
) -> PartitionPlan:
    stages = []
    for s in range(evaluator.k):
        start, stop = boundaries[s], boundaries[s + 1]
        ev = evaluator.evaluate(start, stop, s)
        stages.append(
            Stage(
                index=s,
                start=start,
                stop=stop,
                gpu=evaluator.gpus[s],
                fwd_compute=ev.fwd_compute,
                bwd_compute=ev.bwd_compute,
                fwd_comm_in=ev.fwd_comm_in,
                bwd_comm_in=ev.bwd_comm_in,
                memory_bytes=ev.memory_bytes,
                in_flight=evaluator.in_flight(s),
                param_bytes=model.slice_params(start, stop),
                activation_in_bytes=model.boundary_bytes(start - 1) if s > 0 else model.input_bytes,
            )
        )
    return PartitionPlan(model_name=model.name, nm=nm, stages=tuple(stages))


def plan_virtual_worker(
    model: ModelGraph,
    gpus: Sequence[GPUDevice],
    nm: int,
    interconnect: InterconnectSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
    profiler: Profiler | None = None,
    search_orderings: bool = True,
    weight_policy: str = DEFAULT_WEIGHT_POLICY,
) -> PartitionPlan:
    """Best partition plan for one virtual worker at pipeline depth ``nm``.

    ``weight_policy`` selects the pipeline variant's weight-version
    memory accounting for the per-stage feasibility pruning (the
    default is HetPipe's §4 accounting, bit-identical to the historical
    planner).  Raises :class:`PartitionError` when no ordering admits a
    feasible plan (the model cannot be trained on this virtual worker
    at ``nm`` under that accounting).
    """
    if not gpus:
        raise PartitionError("virtual worker has no GPUs")
    profiler = profiler or Profiler(calibration)

    orderings = candidate_orderings(gpus) if search_orderings else iter([tuple(gpus)])
    # The cache key captures a plain Profiler's inputs (model, GPU
    # specs, calibration) but cannot see into a custom profiler
    # subclass (e.g. one replaying measured costs), so those bypass
    # memoization rather than risk serving another profiler's plan.
    cacheable = type(profiler) is Profiler
    best: tuple[float, float, tuple, PartitionPlan] | None = None
    for ordering in orderings:
        evaluator = StageEvaluator(
            model, ordering, nm, interconnect, calibration, profiler,
            weight_policy=weight_policy,
        )
        if cacheable:
            key = _plan_cache_key(
                model, ordering, nm, interconnect, calibration, weight_policy
            )
            boundaries = _solve_cached(evaluator, key)
        else:
            boundaries = solve_boundaries(evaluator)
        if boundaries is None:
            continue
        plan = _plan_from_boundaries(evaluator, boundaries, nm, model)
        key = (plan.bottleneck_period, plan.serial_latency, ordering_signature(ordering))
        if best is None or key < best[:3]:
            best = (*key, plan)
    if best is None:
        raise PartitionError(
            f"no feasible partition of {model.name} across "
            f"[{', '.join(str(g) for g in gpus)}] at Nm={nm}"
        )
    return best[3]


def plan_virtual_worker_bnb(
    model: ModelGraph,
    gpus: Sequence[GPUDevice],
    nm: int,
    interconnect: InterconnectSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
    profiler: Profiler | None = None,
    weight_policy: str = DEFAULT_WEIGHT_POLICY,
) -> PartitionPlan:
    """Partition plan from the branch-and-bound cross-check solver.

    Natural GPU order only (the B&B exists to cross-check the DP, and
    the registry exposes it as the ``"bnb"`` planner so sweeps can
    compare solvers on identical orderings).  Produces the same
    bottleneck period as the DP on every feasible input — the planner
    sweep's built-in differential check.
    """
    if not gpus:
        raise PartitionError("virtual worker has no GPUs")
    from repro.partition.bnb import solve_bnb

    profiler = profiler or Profiler(calibration)
    evaluator = StageEvaluator(
        model, tuple(gpus), nm, interconnect, calibration, profiler,
        weight_policy=weight_policy,
    )
    boundaries, _ = solve_bnb(evaluator)
    if boundaries is None:
        raise PartitionError(
            f"no feasible partition of {model.name} across "
            f"[{', '.join(str(g) for g in gpus)}] at Nm={nm} (bnb)"
        )
    return _plan_from_boundaries(evaluator, boundaries, nm, model)


def max_feasible_nm(
    model: ModelGraph,
    gpus: Sequence[GPUDevice],
    interconnect: InterconnectSpec,
    calibration: Calibration = DEFAULT_CALIBRATION,
    profiler: Profiler | None = None,
    limit: int = 8,
    search_orderings: bool = True,
    weight_policy: str = DEFAULT_WEIGHT_POLICY,
) -> int:
    """``Maxm`` (§4): the largest pipeline depth with a feasible plan.

    Returns 0 when the model does not fit the virtual worker at all.
    Feasibility is monotone in ``Nm`` (more in-flight minibatches only
    add memory under every weight policy), so a linear scan with early
    exit is exact.  Pass the same ``search_orderings`` the subsequent
    planning will use — feasibility depends on the GPU order.
    """
    profiler = profiler or Profiler(calibration)
    feasible = 0
    for nm in range(1, limit + 1):
        try:
            plan_virtual_worker(
                model, gpus, nm, interconnect, calibration, profiler,
                search_orderings=search_orderings, weight_policy=weight_policy,
            )
        except PartitionError:
            break
        feasible = nm
    return feasible
