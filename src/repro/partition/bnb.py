"""Branch-and-bound partitioner — exhaustive cross-check for the DP.

This solver plays the role CPLEX plays in the paper: an independent
exact optimizer for the same min-max objective and memory constraints.
It enumerates stage boundaries depth-first, pruning any prefix whose
running maximum already meets or exceeds the best complete solution.
It is exponential in the worst case but fine at our model sizes, and the
test suite uses it to verify the DP's optimality on both real models and
hypothesis-generated random chains.
"""

from __future__ import annotations

from repro.partition.dp_solver import StageEvaluator

_INF = float("inf")


def solve_bnb(evaluator: StageEvaluator) -> tuple[list[int] | None, float]:
    """Returns ``(boundaries, best_max_period)``; boundaries None if infeasible."""
    k = evaluator.k
    length = evaluator.num_layers
    if length < k:
        return None, _INF

    best_bound = _INF
    best_boundaries: list[int] | None = None

    def descend(stage: int, start: int, prefix: list[int], running_max: float) -> None:
        nonlocal best_bound, best_boundaries
        if running_max >= best_bound:
            return
        if stage == k - 1:
            ev = evaluator.evaluate(start, length, stage)
            if not ev.feasible:
                return
            total = max(running_max, ev.period)
            if total < best_bound:
                best_bound = total
                best_boundaries = prefix + [length]
            return
        remaining_stages = k - 1 - stage
        for stop in range(start + 1, length - remaining_stages + 1):
            ev = evaluator.evaluate(start, stop, stage)
            if not ev.feasible:
                continue
            new_max = max(running_max, ev.period)
            if new_max >= best_bound:
                continue
            descend(stage + 1, stop, prefix + [stop], new_max)

    descend(0, 0, [0], 0.0)
    return best_boundaries, best_bound
