"""Spec -> built objects: the bridge from :class:`RunSpec` to the system.

:func:`build_scenario` turns a scenario-kind :class:`RunSpec` into the
same :class:`~repro.scenarios.generator.Scenario` value object the fuzz
harness runs — cluster, model graph, and one partition plan per virtual
worker — resolving every open-ended name (model builder, calibration,
interconnect profile, planner) through :mod:`repro.api.registry`.

Two paths, one result type:

* **fuzz-representable** specs (synthetic model, "dp" planner, default
  calibration and profile — everything the seeded generator can emit)
  round-trip through :class:`~repro.scenarios.generator.ScenarioSpec`
  and the generator's memoized ``materialize``.  This is deliberate:
  the fuzz flow builds the same spec several times per seed, and
  sharing that cache keeps spec-driven runs *bit-identical* (digests
  included) to the historical ScenarioSpec path.
* everything else (catalog models by name, alternative planners,
  non-default calibrations/profiles) is built here with its own
  memoization, producing a ``Scenario`` whose ``spec`` field is the
  derived :class:`ScenarioSpec` view the runner reads its knobs from.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.api.registry import CALIBRATIONS, MODELS, PLANNERS, PROFILES
from repro.api.spec import (
    ClusterSpec,
    FidelitySpec,
    ModelSpec,
    NetworkSpec,
    PipelineSpec,
    RunSpec,
)
from repro.errors import PartitionError, SpecError


def run_to_scenario_spec(run: RunSpec):
    """The :class:`ScenarioSpec` view of a scenario-kind ``run``.

    Knobs map one-to-one; ``fidelity.waves_scale`` is folded into
    ``measured_waves`` (the scenario runner's long-horizon convention).
    Catalog models have no synthetic knobs, so their view carries
    ``batch_size=0`` and empty layer tuples — the runner takes the real
    batch size from the built model graph.
    """
    from repro.scenarios.generator import ScenarioSpec

    if run.kind != "scenario":
        raise SpecError(f"expected a scenario spec, got kind={run.kind!r}")
    if run.pipeline.nm is None:
        raise SpecError("a scenario run needs a concrete pipeline.nm")
    model = run.model
    assert model is not None  # enforced by RunSpec validation
    return ScenarioSpec(
        seed=run.seed,
        node_codes=run.cluster.node_codes,
        gpus_per_node=run.cluster.gpus_per_node,
        allocation=run.pipeline.allocation,
        batch_size=model.batch_size if model.is_synthetic else 0,
        image_size=model.image_size if model.is_synthetic else 0,
        conv_widths=model.conv_widths,
        fc_dims=model.fc_dims,
        nm=run.pipeline.nm,
        d=run.pipeline.d,
        placement=run.pipeline.placement,
        jitter=run.pipeline.jitter,
        push_every_minibatch=run.pipeline.push_every_minibatch,
        warmup_waves=run.pipeline.warmup_waves,
        measured_waves=run.pipeline.measured_waves * run.fidelity.waves_scale,
        network_model=run.network.model,
        shards=run.pipeline.shards,
        shard_placement=run.pipeline.shard_placement,
        variant=run.pipeline.variant,
        memory_limited=run.pipeline.memory_limited,
    )


def scenario_spec_to_run(
    spec,
    fidelity: str = "full",
    verify_equivalence: bool | None = None,
    waves_scale: int = 1,
) -> RunSpec:
    """Lift a legacy :class:`ScenarioSpec` into the typed API.

    ``waves_scale`` moves *out* of ``measured_waves`` and into the
    fidelity section, so the RunSpec states the base window and the
    scale separately; :func:`run_to_scenario_spec` folds them back.
    ``spec.measured_waves`` must therefore be the unscaled window.
    """
    return RunSpec(
        kind="scenario",
        seed=spec.seed,
        cluster=ClusterSpec(
            node_codes=spec.node_codes, gpus_per_node=spec.gpus_per_node
        ),
        model=ModelSpec(
            name=f"fuzz{spec.seed}",
            batch_size=spec.batch_size,
            image_size=spec.image_size,
            conv_widths=spec.conv_widths,
            fc_dims=spec.fc_dims,
        ),
        pipeline=PipelineSpec(
            nm=spec.nm,
            d=spec.d,
            allocation=spec.allocation,
            placement=spec.placement,
            shards=spec.shards,
            shard_placement=spec.shard_placement,
            variant=spec.variant,
            memory_limited=spec.memory_limited,
            push_every_minibatch=spec.push_every_minibatch,
            jitter=spec.jitter,
            warmup_waves=spec.warmup_waves,
            measured_waves=spec.measured_waves,
        ),
        network=NetworkSpec(model=spec.network_model),
        fidelity=FidelitySpec(
            fidelity=fidelity,
            verify_equivalence=verify_equivalence,
            waves_scale=waves_scale,
        ),
    )


def _is_fuzz_representable(run: RunSpec) -> bool:
    """True when the seeded generator's materialization covers ``run``.

    The generator names every synthetic model ``fuzz<seed>`` (its
    ``ScenarioSpec`` carries no name field), so only specs declaring
    exactly that name may share its cache — any other name must build
    through the general path or surfaces reporting ``model_name`` would
    silently swap identities.
    """
    return (
        run.model is not None
        and run.model.is_synthetic
        and run.model.name == f"fuzz{run.seed}"
        and run.pipeline.planner == "dp"
        and run.calibration == "default"
        and run.cluster.profile == "grpc_tf112"
    )


def build_cluster(spec: ClusterSpec):
    """The :class:`~repro.cluster.topology.Cluster` a cluster spec names."""
    from repro.cluster.catalog import paper_cluster

    return paper_cluster(
        node_codes=spec.node_codes,
        gpus_per_node=spec.gpus_per_node,
        interconnect=PROFILES.get(spec.profile),
    )


def build_model(spec: ModelSpec):
    """The :class:`~repro.models.graph.ModelGraph` a model spec names."""
    if spec.is_synthetic:
        from repro.scenarios.generator import build_fuzz_model

        return build_fuzz_model(
            spec.name, spec.batch_size, spec.image_size,
            spec.conv_widths, spec.fc_dims,
        )
    return MODELS.get(spec.name)()


def build_scenario(run: RunSpec):
    """Cluster + model + per-VW plans for a scenario-kind ``run``.

    Deterministic and memoized; the same spec always yields identical
    (shared, immutable) objects.  Raises
    :class:`~repro.errors.UnknownNameError` for unresolvable names and
    :class:`~repro.errors.PartitionError` for infeasible deployments.
    """
    from repro.scenarios.generator import Scenario, materialize

    sspec = run_to_scenario_spec(run)
    try:
        if _is_fuzz_representable(run):
            return materialize(sspec)
    except PartitionError as exc:
        if run.pipeline.memory_limited:
            raise _memory_limited_error(run, exc) from exc
        raise
    # Cache key: only what planning can observe — the cluster, model,
    # calibration, and the pipeline's nm/allocation/planner/placement
    # (placement gates validate_local_placement), plus the variant when
    # memory-limited planning makes its weight-version accounting
    # observable.  Everything else — seed, network model, fidelity,
    # oracle suite, staleness bound, window sizes, push cadence, jitter
    # — plays no part in building, so specs differing only in those
    # share one entry (a sweep over fidelity, seeds, or measured_waves
    # re-plans nothing); the derived ScenarioSpec is re-wrapped below
    # with the requested run's fields.
    canonical = replace(
        run,
        seed=0,
        pipeline=replace(
            run.pipeline,
            d=0,
            shards=1,
            shard_placement="size_balanced",
            variant=(
                run.pipeline.variant
                if run.pipeline.memory_limited
                else "vw_hetpipe"
            ),
            push_every_minibatch=False,
            jitter=0.0,
            warmup_waves=2,
            measured_waves=8,
        ),
        network=NetworkSpec(),
        fidelity=FidelitySpec(),
        oracles="default",
        faults=None,
    )
    try:
        built = _build_general_cached(canonical)
    except PartitionError as exc:
        if run.pipeline.memory_limited:
            raise _memory_limited_error(run, exc) from exc
        raise
    if built.spec == sspec:
        return built
    return Scenario(
        spec=sspec, cluster=built.cluster, model=built.model, plans=built.plans
    )


def _memory_limited_error(run: RunSpec, exc: PartitionError) -> SpecError:
    """Actionable rejection for an infeasible memory-limited point."""
    from repro.pipeline.variants import get_variant

    policy = get_variant(run.pipeline.variant).weight_policy
    return SpecError(
        f"pipeline.memory_limited: variant {run.pipeline.variant!r} "
        f"(weight policy {policy!r}) has no feasible partition at "
        f"Nm={run.pipeline.nm} on cluster "
        f"{run.cluster.node_codes}x{run.cluster.gpus_per_node} — the "
        f"analytic per-GPU memory bound exceeds capacity on every split. "
        f"Lower pipeline.nm, switch to a lighter weight-version policy "
        f"(pipedream_2bw or xpipe), or set pipeline.memory_limited=false "
        f"to keep the historical accounting.  [{exc}]"
    )


@lru_cache(maxsize=64)
def _build_general_cached(run: RunSpec):
    """The registry-resolving build path (planning is the expensive part).

    Keyed on the dedicated-network canonical spec: the network model
    plays no part in planning (mirrors the generator's memoization).
    """
    from repro.allocation import allocate
    from repro.models.profiler import Profiler
    from repro.scenarios.generator import Scenario
    from repro.wsp.placement import validate_local_placement

    cluster = build_cluster(run.cluster)
    model = build_model(run.model)
    calibration = CALIBRATIONS.get(run.calibration)()
    planner = PLANNERS.get(run.pipeline.planner)
    assignment = allocate(cluster, run.pipeline.allocation)
    profiler = Profiler(calibration)
    if run.pipeline.memory_limited:
        from repro.pipeline.variants import get_variant

        weight_policy = get_variant(run.pipeline.variant).weight_policy
    else:
        weight_policy = "stash_per_minibatch"
    plans = tuple(
        planner(
            model, vw, run.pipeline.nm, cluster.interconnect, calibration, profiler,
            weight_policy=weight_policy,
        )
        for vw in assignment.virtual_workers
    )
    if run.pipeline.placement == "local":
        validate_local_placement(plans)
    return Scenario(
        spec=run_to_scenario_spec(run), cluster=cluster, model=model, plans=plans
    )


def build_calibration(name: str):
    """The :class:`~repro.models.calibration.Calibration` ``name`` maps to."""
    return CALIBRATIONS.get(name)()
