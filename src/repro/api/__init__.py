"""The unified typed RunSpec API.

One declarative object — :class:`~repro.api.spec.RunSpec` — addresses
every axis of the design space (cluster x model x pipeline/WSP knobs x
network model x fidelity), serializes to canonical JSON with a stable
``spec_hash``, and drives every entry point:

>>> from repro.api import RunSpec, run
>>> spec = RunSpec.from_json(open("examples/specs/fig3_vgg19.json").read())
>>> print(run(spec).render())  # doctest: +SKIP

* :mod:`repro.api.spec` — the frozen section dataclasses, canonical
  JSON round-trip, ``spec_hash``, and sweep-grid expansion.
* :mod:`repro.api.registry` — named registries (models, cluster
  presets, calibrations, interconnect profiles, oracle suites,
  planners, experiments); unknown names raise
  :class:`~repro.errors.UnknownNameError` listing what exists.
* :mod:`repro.api.build` — spec -> built cluster/model/plans.
* :mod:`repro.api.run` — :func:`~repro.api.run.run` /
  :func:`~repro.api.run.run_sweep`, the engines behind ``repro run``
  and ``repro sweep``.

Like :mod:`repro` itself, the namespace resolves lazily (PEP 562) so
importing :mod:`repro.api` costs nothing until a name is touched —
modules deeper in the stack (the scenario generator, the WSP runtime)
import spec types from here without dragging in the runner layers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "SPEC_SCHEMA": "repro.api.spec",
    "ClusterSpec": "repro.api.spec",
    "ExperimentSpec": "repro.api.spec",
    "FaultSpec": "repro.api.spec",
    "FidelitySpec": "repro.api.spec",
    "ModelSpec": "repro.api.spec",
    "NetworkSpec": "repro.api.spec",
    "ObservabilitySpec": "repro.api.spec",
    "PipelineSpec": "repro.api.spec",
    "RunSpec": "repro.api.spec",
    "SweepAxis": "repro.api.spec",
    "SweepSpec": "repro.api.spec",
    "axis_assignments": "repro.api.spec",
    "expand_sweep": "repro.api.spec",
    "CALIBRATIONS": "repro.api.registry",
    "CLUSTERS": "repro.api.registry",
    "EXPERIMENTS": "repro.api.registry",
    "MODELS": "repro.api.registry",
    "ORACLES": "repro.api.registry",
    "PLANNERS": "repro.api.registry",
    "PROFILES": "repro.api.registry",
    "Registry": "repro.api.registry",
    "build_calibration": "repro.api.build",
    "build_cluster": "repro.api.build",
    "build_model": "repro.api.build",
    "build_scenario": "repro.api.build",
    "run_to_scenario_spec": "repro.api.build",
    "scenario_spec_to_run": "repro.api.build",
    "SweepPointResult": "repro.api.run",
    "SweepResult": "repro.api.run",
    "run": "repro.api.run",
    "run_sweep": "repro.api.run",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # static analyzers see the eager imports
    from repro.api.build import (
        build_calibration,
        build_cluster,
        build_model,
        build_scenario,
        run_to_scenario_spec,
        scenario_spec_to_run,
    )
    from repro.api.registry import (
        CALIBRATIONS,
        CLUSTERS,
        EXPERIMENTS,
        MODELS,
        ORACLES,
        PLANNERS,
        PROFILES,
        Registry,
    )
    from repro.api.run import SweepPointResult, SweepResult, run, run_sweep
    from repro.api.spec import (
        SPEC_SCHEMA,
        ClusterSpec,
        ExperimentSpec,
        FaultSpec,
        FidelitySpec,
        ModelSpec,
        NetworkSpec,
        ObservabilitySpec,
        PipelineSpec,
        RunSpec,
        SweepAxis,
        SweepSpec,
        axis_assignments,
        expand_sweep,
    )
