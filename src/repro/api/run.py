"""Spec-driven execution: ``repro run`` / ``repro sweep`` behind one API.

:func:`run` executes a single concrete :class:`RunSpec`:

* ``kind="scenario"`` drives the spec through the full fuzz runner
  (:func:`repro.scenarios.runner.run_scenario`) — invariant oracles,
  differential bounds, 1F1B cross-check — and returns its
  :class:`~repro.scenarios.runner.ScenarioResult`;
* ``kind="experiment"`` regenerates a paper figure/table through the
  experiment registry and returns the experiment's result object
  (whatever the legacy subcommand would have printed via ``render()``).

:func:`run_sweep` expands a spec's ``sweep`` grid and fans the points
across worker processes with :func:`repro.exec.sweep_map` — the same
executor the fuzz batches use, so results come back **in point order
and bit-identical to a serial run**, each tagged with its point's
``spec_hash``.  This is the CI-facing planner-search entry point: a
grid over ``pipeline.planner`` / ``pipeline.nm`` (or any other spec
field) runs anywhere ``repro`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import EXPERIMENTS, MODELS
from repro.api.spec import RunSpec, axis_assignments, expand_sweep
from repro.errors import SpecError


def run(spec: RunSpec, jobs: int | None = 1):
    """Execute one concrete spec; see the module docstring for kinds."""
    if spec.sweep is not None:
        raise SpecError(
            "spec has a sweep section; use run_sweep() / `repro sweep` for grids"
        )
    if spec.kind == "experiment":
        experiment = spec.experiment
        assert experiment is not None  # enforced by RunSpec validation
        MODELS.get(experiment.model)  # typed miss before any work starts
        return EXPERIMENTS.get(experiment.name)(experiment.model, jobs)
    from repro.scenarios.runner import run_scenario

    return run_scenario(spec)


@dataclass(frozen=True)
class SweepPointResult:
    """One merged sweep point: provenance plus the headline outcome."""

    index: int
    spec_hash: str
    label: str  # the swept axis assignments, e.g. "pipeline.planner=dp"
    kind: str
    ok: bool
    summary: str  # one-line outcome (throughput/digest or render digest)
    violations: tuple[str, ...] = ()

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.violations)})"
        label = f" {self.label}" if self.label else ""
        return f"[{self.index:>3} {status:>8}] spec={self.spec_hash[:12]}{label} -> {self.summary}"


@dataclass(frozen=True)
class SweepResult:
    """All points of one grid, in expansion order."""

    grid_hash: str
    points: tuple[SweepPointResult, ...]

    @property
    def failures(self) -> tuple[SweepPointResult, ...]:
        return tuple(p for p in self.points if not p.ok)

    def summary_line(self) -> str:
        return (
            f"sweep: {len(self.points)} points, {len(self.failures)} failing "
            f"(grid {self.grid_hash[:12]})"
        )

    def failure_lines(self) -> list[str]:
        return [
            f"  point {point.index}: {violation}"
            for point in self.failures
            for violation in point.violations
        ]

    def render(self) -> str:
        lines = [self.summary_line()]
        lines.extend(point.describe() for point in self.points)
        lines.extend(self.failure_lines())
        return "\n".join(lines)


def _sweep_point(args: tuple[int, str, str]) -> SweepPointResult:
    """Run one expanded point (the :func:`repro.exec.sweep_map` item).

    Module-level and argument-pure — the point travels as canonical
    JSON so worker processes rebuild it with full validation.  Errors
    are contained per point: an infeasible deployment (PartitionError
    on a too-deep Nm, say) is a normal planner-search outcome and must
    fail its own point, not abort the grid.
    """
    from repro.errors import ReproError

    index, point_json, label = args
    point = RunSpec.from_json(point_json)
    try:
        if point.kind == "experiment":
            import hashlib

            rendered = run(point, jobs=1).render()
            return SweepPointResult(
                index=index,
                spec_hash=point.spec_hash,
                label=label,
                kind=point.kind,
                ok=True,
                summary=f"render sha256 {hashlib.sha256(rendered.encode()).hexdigest()[:12]}",
            )
        result = run(point, jobs=1)
        return SweepPointResult(
            index=index,
            spec_hash=point.spec_hash,
            label=label,
            kind=point.kind,
            ok=result.ok,
            summary=(
                f"{result.throughput:8.1f} img/s, {result.events} events, "
                f"digest {result.digest[:12]}"
            ),
            violations=tuple(result.violations),
        )
    except ReproError as exc:
        return SweepPointResult(
            index=index,
            spec_hash=point.spec_hash,
            label=label,
            kind=point.kind,
            ok=False,
            summary="failed before producing a result",
            violations=(f"{type(exc).__name__}: {exc}",),
        )


def run_sweep(
    spec: RunSpec, jobs: int | None = 1, on_result=None
) -> SweepResult:
    """Expand ``spec``'s grid and run every point deterministically.

    ``jobs`` fans points across worker processes (``None`` = one per
    CPU); the merged results are in expansion order and bit-identical
    to ``jobs=1`` — per-point ``spec_hash`` values are computed from the
    canonical spec JSON, so they are stable across runs, hosts, and
    worker counts.  ``on_result`` (e.g. ``print``-driven) receives each
    :class:`SweepPointResult` in order as it merges.
    """
    from repro.exec import sweep_map

    if spec.sweep is None:
        raise SpecError("spec has no sweep section; use run() for single points")
    points = expand_sweep(spec)
    items = [
        (index, point.to_json(indent=None), axis_assignments(spec, point))
        for index, point in enumerate(points)
    ]
    callback = None
    if on_result is not None:
        callback = lambda i, result: on_result(result)  # noqa: E731
    results = sweep_map(_sweep_point, items, jobs=jobs, on_result=callback)
    return SweepResult(grid_hash=spec.spec_hash, points=tuple(results))
