"""Spec-driven execution: ``repro run`` / ``repro sweep`` behind one API.

:func:`run` executes a single concrete :class:`RunSpec`:

* ``kind="scenario"`` drives the spec through the full fuzz runner
  (:func:`repro.scenarios.runner.run_scenario`) — invariant oracles,
  differential bounds, 1F1B cross-check — and returns its
  :class:`~repro.scenarios.runner.ScenarioResult`;
* ``kind="experiment"`` regenerates a paper figure/table through the
  experiment registry and returns the experiment's result object
  (whatever the legacy subcommand would have printed via ``render()``).

:func:`run_sweep` expands a spec's ``sweep`` grid and fans the points
across worker processes with :func:`repro.exec.sweep_map` — the same
executor the fuzz batches use, so results come back **in point order
and bit-identical to a serial run**, each tagged with its point's
``spec_hash``.  This is the CI-facing planner-search entry point: a
grid over ``pipeline.planner`` / ``pipeline.nm`` (or any other spec
field) runs anywhere ``repro`` runs.

With a :class:`~repro.store.ResultStore` attached the sweep becomes
crash-safe and resumable: every completed point is committed to the
store the moment it finishes (completion order, via the executor's
``on_stream`` hook — a SIGKILL mid-grid loses at most the in-flight
points), and ``resume=True`` reconstructs any point whose verified
entry already exists instead of recomputing it.  Because each point's
outcome is a pure function of its spec — and the store keys entries by
``spec_hash`` — a resumed sweep's merged output is bit-identical to an
uninterrupted serial run; a corrupted entry is quarantined by the store
and simply recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import EXPERIMENTS, MODELS
from repro.api.spec import RunSpec, axis_assignments, expand_sweep
from repro.errors import SpecError


def run(spec: RunSpec, jobs: int | None = 1):
    """Execute one concrete spec; see the module docstring for kinds."""
    if spec.sweep is not None:
        raise SpecError(
            "spec has a sweep section; use run_sweep() / `repro sweep` for grids"
        )
    if spec.kind == "experiment":
        experiment = spec.experiment
        assert experiment is not None  # enforced by RunSpec validation
        MODELS.get(experiment.model)  # typed miss before any work starts
        return EXPERIMENTS.get(experiment.name)(experiment.model, jobs)
    from repro.scenarios.runner import run_scenario

    return run_scenario(spec)


@dataclass(frozen=True)
class SweepPointResult:
    """One merged sweep point: provenance plus the headline outcome."""

    index: int
    spec_hash: str
    label: str  # the swept axis assignments, e.g. "pipeline.planner=dp"
    kind: str
    ok: bool
    summary: str  # one-line outcome (throughput/digest or render digest)
    violations: tuple[str, ...] = ()

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.violations)})"
        label = f" {self.label}" if self.label else ""
        return f"[{self.index:>3} {status:>8}] spec={self.spec_hash[:12]}{label} -> {self.summary}"


@dataclass(frozen=True)
class SweepResult:
    """All points of one grid, in expansion order.

    ``reused`` counts points reconstructed from a result store under
    ``resume=True`` rather than recomputed; it is provenance only — the
    points themselves (and their :meth:`SweepPointResult.describe`
    lines) are bit-identical either way, so per-point output diffs
    clean across a crash/resume boundary.
    """

    grid_hash: str
    points: tuple[SweepPointResult, ...]
    reused: int = 0

    @property
    def failures(self) -> tuple[SweepPointResult, ...]:
        return tuple(p for p in self.points if not p.ok)

    def summary_line(self) -> str:
        reused = f", {self.reused} reused" if self.reused else ""
        return (
            f"sweep: {len(self.points)} points, {len(self.failures)} failing"
            f"{reused} (grid {self.grid_hash[:12]})"
        )

    def failure_lines(self) -> list[str]:
        return [
            f"  point {point.index}: {violation}"
            for point in self.failures
            for violation in point.violations
        ]

    def render(self) -> str:
        lines = [self.summary_line()]
        lines.extend(point.describe() for point in self.points)
        lines.extend(self.failure_lines())
        return "\n".join(lines)


def _sweep_point(args: tuple[int, str, str]) -> SweepPointResult:
    """Run one expanded point (the :func:`repro.exec.sweep_map` item).

    Module-level and argument-pure — the point travels as canonical
    JSON so worker processes rebuild it with full validation.  Errors
    are contained per point — *any* error: an infeasible deployment
    (PartitionError on a too-deep Nm, say) is a normal planner-search
    outcome, and even an unexpected bug in one configuration's code
    path must fail its own point, not abort the other N-1 points of
    the grid.
    """
    index, point_json, label = args
    point = RunSpec.from_json(point_json)
    try:
        if point.kind == "experiment":
            import hashlib

            rendered = run(point, jobs=1).render()
            return SweepPointResult(
                index=index,
                spec_hash=point.spec_hash,
                label=label,
                kind=point.kind,
                ok=True,
                summary=f"render sha256 {hashlib.sha256(rendered.encode()).hexdigest()[:12]}",
            )
        result = run(point, jobs=1)
        return SweepPointResult(
            index=index,
            spec_hash=point.spec_hash,
            label=label,
            kind=point.kind,
            ok=result.ok,
            summary=(
                f"{result.throughput:8.1f} img/s, {result.events} events, "
                f"digest {result.digest[:12]}"
            ),
            violations=tuple(result.violations),
        )
    except Exception as exc:
        return SweepPointResult(
            index=index,
            spec_hash=point.spec_hash,
            label=label,
            kind=point.kind,
            ok=False,
            summary="failed before producing a result",
            violations=(f"{type(exc).__name__}: {exc}",),
        )


def _point_payload(result: SweepPointResult) -> dict:
    """The store-record payload of one completed point.

    Only the spec-determined outcome is stored — index and label are
    properties of the *grid* a point appears in, recomputed from the
    current expansion on resume, so a stored point reconstructs
    byte-identically into any grid that contains its spec.
    """
    return {
        "kind": result.kind,
        "ok": result.ok,
        "summary": result.summary,
        "violations": list(result.violations),
    }


def _point_from_record(record, index: int, label: str) -> SweepPointResult | None:
    """Rebuild a cached point from its verified store record.

    Returns ``None`` for a record that does not look like a sweep point
    (wrong kind, missing fields) — the caller recomputes, which is the
    correct degradation for a store shared with other tools.
    """
    payload = record.payload
    if record.kind not in ("scenario", "experiment"):
        return None
    if not isinstance(payload.get("summary"), str) or not isinstance(
        payload.get("ok"), bool
    ):
        return None
    return SweepPointResult(
        index=index,
        spec_hash=record.key,
        label=label,
        kind=record.kind,
        ok=payload["ok"],
        summary=payload["summary"],
        violations=tuple(payload.get("violations", ())),
    )


def run_sweep(
    spec: RunSpec,
    jobs: int | None = 1,
    on_result=None,
    store=None,
    resume: bool = False,
    timeout: float | None = None,
) -> SweepResult:
    """Expand ``spec``'s grid and run every point deterministically.

    ``jobs`` fans points across worker processes (``None`` = one per
    CPU); the merged results are in expansion order and bit-identical
    to ``jobs=1`` — per-point ``spec_hash`` values are computed from the
    canonical spec JSON, so they are stable across runs, hosts, and
    worker counts.  ``on_result`` (e.g. ``print``-driven) receives each
    :class:`SweepPointResult` in order as it merges.

    ``store`` (a :class:`~repro.store.ResultStore`) makes the sweep
    crash-safe: every completed point is committed the moment it
    finishes, in completion order, so a SIGKILL loses at most the
    in-flight points.  ``resume=True`` additionally skips any point
    whose verified entry already exists in the store (corrupted entries
    are quarantined and recomputed); the merged result — including the
    per-point ``describe()`` lines — is bit-identical to an
    uninterrupted run.  ``timeout`` arms the executor's per-item
    watchdog: a point that hangs past it is killed and retried in
    isolation, and raises :class:`~repro.errors.ItemTimeoutError` if it
    never finishes (finished points are already safe in the store).
    """
    from repro.exec import sweep_map

    if spec.sweep is None:
        raise SpecError("spec has no sweep section; use run() for single points")
    points = expand_sweep(spec)
    labels = [axis_assignments(spec, point) for point in points]

    merged: list = [None] * len(points)
    reused = 0
    pending: list[tuple[int, str, str]] = []
    for index, point in enumerate(points):
        cached = None
        if store is not None and resume:
            record = store.fetch(point.spec_hash)  # quarantines corruption
            if record is not None:
                cached = _point_from_record(record, index, labels[index])
        if cached is not None:
            merged[index] = cached
            reused += 1
        else:
            pending.append((index, point.to_json(indent=None), labels[index]))

    emitted = 0

    def _flush() -> None:
        nonlocal emitted
        while emitted < len(merged) and merged[emitted] is not None:
            if on_result is not None:
                on_result(merged[emitted])
            emitted += 1

    def _deliver(_sub_index: int, result: SweepPointResult) -> None:
        merged[result.index] = result
        _flush()

    on_stream = None
    if store is not None:
        on_stream = lambda _i, result: store.put(  # noqa: E731
            result.spec_hash,
            result.kind,
            _point_payload(result),
            spec=points[result.index].to_dict(),
            tool="repro sweep",
        )

    _flush()  # leading cached points print before any work starts
    if pending:
        sweep_map(
            _sweep_point,
            pending,
            jobs=jobs,
            on_result=_deliver,
            on_stream=on_stream,
            timeout=timeout,
        )
    return SweepResult(
        grid_hash=spec.spec_hash, points=tuple(merged), reused=reused
    )
