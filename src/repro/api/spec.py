"""Typed, serializable run specifications (the ``hetpipe-spec/1`` schema).

HetPipe's design space is a cross-product — cluster composition x
partition planner x DP/WSP staleness bound x network model x fidelity —
and every entry point used to re-plumb that space as ad-hoc kwargs.
This module is the single declarative description of one point (or one
grid) in that space:

* :class:`ClusterSpec`, :class:`ModelSpec`, :class:`PipelineSpec`,
  :class:`NetworkSpec`, :class:`FidelitySpec`, :class:`ExperimentSpec`,
  and :class:`SweepSpec` are frozen section dataclasses, each validating
  itself in ``__post_init__``;
* :class:`RunSpec` composes them and adds the canonical JSON round-trip
  (:meth:`RunSpec.to_json` / :meth:`RunSpec.from_json`) and a stable
  :attr:`RunSpec.spec_hash` — the sha256 of the canonical form, so a
  hash identifies *the configuration*, independent of key order or
  formatting in the file it came from;
* :func:`expand_sweep` turns a spec with a ``sweep`` section into the
  ordered list of concrete points (cartesian product, later axes vary
  fastest), each carrying its own ``spec_hash``.

Name *resolution* (model builders, calibrations, planners, interconnect
profiles) deliberately does not happen here: this module validates
structure and closed literal sets only, so a spec file can be parsed,
hashed, and diffed without importing any heavy machinery.  Names are
resolved against :mod:`repro.api.registry` at build time, where an
unknown name raises :class:`repro.errors.UnknownNameError` listing the
available entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import SpecError

#: Schema tag written into every serialized spec and folded into
#: ``spec_hash``.  Bump on layout changes so hashes from different
#: schemas can never collide silently.
SPEC_SCHEMA = "hetpipe-spec/1"

#: Closed literal sets (validated structurally; everything open-ended —
#: model names, calibrations, planners, profiles — is a registry lookup
#: at build time instead).
ALLOCATION_POLICIES = ("NP", "ED", "HD")
PLACEMENT_POLICIES = ("default", "local")
SHARD_PLACEMENT_POLICIES = ("size_balanced", "locality_aware", "contention_aware")
NETWORK_MODELS = ("dedicated", "shared")
FIDELITIES = ("full", "fast_forward")
RUN_KINDS = ("scenario", "experiment")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def canonical_dumps(data: Any) -> str:
    """The canonical compact JSON form: sorted keys, no whitespace.

    Everything content-addressed in this project — ``spec_hash``, the
    result store's entry checksums and bench-history keys — hashes this
    exact serialization, so the same dict always maps to the same hash
    regardless of insertion order or source formatting.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ClusterSpec:
    """A paper-style testbed: one GPU type per node, N GPUs each.

    ``node_codes`` is one Table-1 catalog letter per node (e.g.
    ``"VRGQ"``); ``profile`` names an interconnect calibration profile
    (resolved via :data:`repro.api.registry.PROFILES`).
    """

    node_codes: str = "VRGQ"
    gpus_per_node: int = 4
    profile: str = "grpc_tf112"

    def __post_init__(self) -> None:
        _require(
            isinstance(self.node_codes, str) and len(self.node_codes) >= 1,
            f"cluster.node_codes must be a non-empty string, got {self.node_codes!r}",
        )
        _require(
            isinstance(self.gpus_per_node, int) and self.gpus_per_node >= 1,
            f"cluster.gpus_per_node must be an int >= 1, got {self.gpus_per_node!r}",
        )
        _require(
            isinstance(self.profile, str) and bool(self.profile),
            f"cluster.profile must be a non-empty string, got {self.profile!r}",
        )


@dataclass(frozen=True)
class ModelSpec:
    """A workload: either a catalog model by name, or a synthetic chain.

    With only ``name`` set, the name is resolved against
    :data:`repro.api.registry.MODELS` at build time ("vgg19",
    "resnet152", ...).  With the synthetic knobs set (all four of
    ``batch_size``, ``image_size``, ``conv_widths``, ``fc_dims``), the
    fuzz generator's conv->pool->fc chain builder is used instead and
    ``name`` is just a label.
    """

    name: str
    batch_size: int | None = None
    image_size: int | None = None
    conv_widths: tuple[int, ...] = ()
    fc_dims: tuple[int, ...] = ()

    @property
    def is_synthetic(self) -> bool:
        return bool(self.conv_widths)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"model.name must be a non-empty string, got {self.name!r}",
        )
        object.__setattr__(self, "conv_widths", tuple(self.conv_widths))
        object.__setattr__(self, "fc_dims", tuple(self.fc_dims))
        synthetic_knobs = (
            self.batch_size is not None,
            self.image_size is not None,
            bool(self.conv_widths),
        )
        _require(
            not (self.fc_dims and not any(synthetic_knobs)),
            "model: fc_dims without the other synthetic knobs "
            "(batch_size, image_size, conv_widths) names no model",
        )
        if any(synthetic_knobs):
            _require(
                all(synthetic_knobs),
                "model: a synthetic chain needs batch_size, image_size, and "
                "conv_widths together (only some were given); a catalog model "
                "takes just a name",
            )
            _require(
                isinstance(self.batch_size, int) and self.batch_size >= 1,
                f"model.batch_size must be an int >= 1, got {self.batch_size!r}",
            )
            _require(
                isinstance(self.image_size, int) and self.image_size >= 1,
                f"model.image_size must be an int >= 1, got {self.image_size!r}",
            )
            for label, dims in (("conv_widths", self.conv_widths), ("fc_dims", self.fc_dims)):
                _require(
                    all(isinstance(d, int) and d >= 1 for d in dims),
                    f"model.{label} must contain ints >= 1, got {dims!r}",
                )


@dataclass(frozen=True)
class PipelineSpec:
    """Pipeline-parallel + WSP knobs for one deployment."""

    nm: int | None = None  # None = pick analytically (experiments only)
    d: int = 0
    allocation: str = "ED"
    placement: str = "default"
    #: PS shard slots per stage; 1 keeps the historical single-endpoint
    #: model (``placement`` applies), K > 1 splits each stage over K PS
    #: processes placed by ``shard_placement``
    shards: int = 1
    shard_placement: str = "size_balanced"
    planner: str = "dp"
    #: pipeline-variant semantics (weight versioning, flush gates,
    #: staleness contract); resolved against the VARIANTS registry at
    #: build time.  The default reproduces the pre-zoo behavior exactly.
    variant: str = "vw_hetpipe"
    #: enforce per-GPU memory capacity in the planner using the
    #: variant's weight-version accounting; False keeps the historical
    #: HetPipe §4 feasibility pruning regardless of variant
    memory_limited: bool = False
    push_every_minibatch: bool = False
    jitter: float = 0.0
    warmup_waves: int = 2
    measured_waves: int = 8

    def __post_init__(self) -> None:
        _require(
            self.nm is None or (isinstance(self.nm, int) and self.nm >= 1),
            f"pipeline.nm must be an int >= 1 or null, got {self.nm!r}",
        )
        _require(
            isinstance(self.d, int) and self.d >= 0,
            f"pipeline.d must be an int >= 0, got {self.d!r}",
        )
        _require(
            self.allocation in ALLOCATION_POLICIES,
            f"pipeline.allocation must be one of {list(ALLOCATION_POLICIES)}, "
            f"got {self.allocation!r}",
        )
        _require(
            self.placement in PLACEMENT_POLICIES,
            f"pipeline.placement must be one of {list(PLACEMENT_POLICIES)}, "
            f"got {self.placement!r}",
        )
        _require(
            isinstance(self.shards, int)
            and not isinstance(self.shards, bool)
            and self.shards >= 1,
            f"pipeline.shards must be an int >= 1, got {self.shards!r}",
        )
        _require(
            self.shard_placement in SHARD_PLACEMENT_POLICIES,
            f"pipeline.shard_placement must be one of "
            f"{list(SHARD_PLACEMENT_POLICIES)}, got {self.shard_placement!r}",
        )
        _require(
            isinstance(self.planner, str) and bool(self.planner),
            f"pipeline.planner must be a non-empty string, got {self.planner!r}",
        )
        _require(
            isinstance(self.variant, str) and bool(self.variant),
            f"pipeline.variant must be a non-empty string, got {self.variant!r}",
        )
        _require(
            isinstance(self.memory_limited, bool),
            f"pipeline.memory_limited must be true/false, got {self.memory_limited!r}",
        )
        _require(
            isinstance(self.jitter, (int, float)) and 0.0 <= float(self.jitter) < 1.0,
            f"pipeline.jitter must be in [0, 1), got {self.jitter!r}",
        )
        object.__setattr__(self, "jitter", float(self.jitter))
        _require(
            isinstance(self.warmup_waves, int) and self.warmup_waves >= 1,
            f"pipeline.warmup_waves must be an int >= 1, got {self.warmup_waves!r}",
        )
        _require(
            isinstance(self.measured_waves, int) and self.measured_waves >= 1,
            f"pipeline.measured_waves must be an int >= 1, got {self.measured_waves!r}",
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Communication model: historical private links or the shared fabric."""

    model: str = "dedicated"

    def __post_init__(self) -> None:
        _require(
            self.model in NETWORK_MODELS,
            f"network.model must be one of {list(NETWORK_MODELS)}, got {self.model!r}",
        )


@dataclass(frozen=True)
class FidelitySpec:
    """Simulation fidelity contract for the run."""

    fidelity: str = "full"
    verify_equivalence: bool | None = None
    waves_scale: int = 1

    def __post_init__(self) -> None:
        _require(
            self.fidelity in FIDELITIES,
            f"fidelity.fidelity must be one of {list(FIDELITIES)}, got {self.fidelity!r}",
        )
        _require(
            self.verify_equivalence is None or isinstance(self.verify_equivalence, bool),
            f"fidelity.verify_equivalence must be true/false/null, "
            f"got {self.verify_equivalence!r}",
        )
        _require(
            isinstance(self.waves_scale, int) and self.waves_scale >= 1,
            f"fidelity.waves_scale must be an int >= 1, got {self.waves_scale!r}",
        )


@dataclass(frozen=True)
class ObservabilitySpec:
    """Telemetry knobs for one run (the :mod:`repro.obs` subsystem).

    Off by default — a spec without this section (or with
    ``enabled: false``) runs exactly the historical code path, and its
    canonical form omits the section entirely so ``spec_hash`` of every
    pre-observability spec is unchanged.
    """

    enabled: bool = False
    #: Utilization/queue-depth sampling cadence in simulated seconds;
    #: 0 disables the periodic sampler (spans and counters still flow).
    sample_every: float = 0.0
    #: Ring-buffer capacity for last-N trace records kept for
    #: diagnostics bundles.
    ring_buffer: int = 256

    def __post_init__(self) -> None:
        _require(
            isinstance(self.enabled, bool),
            f"observability.enabled must be true/false, got {self.enabled!r}",
        )
        _require(
            isinstance(self.sample_every, (int, float))
            and not isinstance(self.sample_every, bool)
            and float(self.sample_every) >= 0.0,
            f"observability.sample_every must be a number >= 0, "
            f"got {self.sample_every!r}",
        )
        object.__setattr__(self, "sample_every", float(self.sample_every))
        _require(
            isinstance(self.ring_buffer, int)
            and not isinstance(self.ring_buffer, bool)
            and self.ring_buffer >= 1,
            f"observability.ring_buffer must be an int >= 1, "
            f"got {self.ring_buffer!r}",
        )


#: Fault kinds a :class:`FaultSpec` may schedule, with the arity of
#: their explicit-event tuples (kind tag included).
FAULT_KINDS: dict[str, int] = {
    # ("straggler", start_frac, vw, stage, factor, duration_frac)
    "straggler": 6,
    # ("crash", start_frac, node, rejoin_frac)   rejoin_frac <= 0: permanent
    "crash": 4,
    # ("link", start_frac, scale, duration_frac)
    "link": 4,
    # ("ps", start_frac, slot, duration_frac)
    "ps": 4,
}


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault schedule for one run (:mod:`repro.faults`).

    Off by default — a spec without this section (or with
    ``enabled: false``) runs exactly the historical code path, and its
    canonical form omits the section entirely, so ``spec_hash`` (and
    every fuzz digest) of a pre-fault spec is unchanged.

    Event *times* are fractions of the run's fault-free makespan (the
    baseline twin the runner measures first), so the same spec scales
    with the scenario instead of hardcoding simulated seconds.  The
    drawn schedule is a pure function of ``(spec, run seed)``; the
    ``events`` tuple appends explicit events for targeted tests/demos
    (see :data:`FAULT_KINDS` for the tuple layouts).
    """

    enabled: bool = False
    #: How many of each fault kind the seeded schedule draws.
    stragglers: int = 0
    crashes: int = 0
    link_faults: int = 0
    ps_faults: int = 0
    #: Worst slowdown multiplier a drawn straggler may apply.
    straggler_factor: float = 2.0
    #: Worst cross-node bandwidth scale a drawn link fault may apply.
    link_scale_floor: float = 0.25
    #: First PS retry delay as a fraction of the fault-free makespan;
    #: retry ``i`` waits ``retry_timeout * 2**i`` (exponential backoff).
    retry_timeout: float = 0.02
    #: Retries before a blocked PS transfer is declared unrecoverable.
    max_retries: int = 10
    #: Versions between parameter checkpoints (recovery resume points).
    checkpoint_every: int = 2
    #: Explicit events appended to the drawn schedule.
    events: tuple[tuple[Any, ...], ...] = ()

    def __post_init__(self) -> None:
        _require(
            isinstance(self.enabled, bool),
            f"faults.enabled must be true/false, got {self.enabled!r}",
        )
        for name in ("stragglers", "crashes", "link_faults", "ps_faults"):
            value = getattr(self, name)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                f"faults.{name} must be an int >= 0, got {value!r}",
            )
        _require(
            isinstance(self.straggler_factor, (int, float))
            and not isinstance(self.straggler_factor, bool)
            and float(self.straggler_factor) >= 1.0,
            f"faults.straggler_factor must be a number >= 1, "
            f"got {self.straggler_factor!r}",
        )
        object.__setattr__(self, "straggler_factor", float(self.straggler_factor))
        _require(
            isinstance(self.link_scale_floor, (int, float))
            and not isinstance(self.link_scale_floor, bool)
            and 0.0 < float(self.link_scale_floor) <= 1.0,
            f"faults.link_scale_floor must be in (0, 1], "
            f"got {self.link_scale_floor!r}",
        )
        object.__setattr__(self, "link_scale_floor", float(self.link_scale_floor))
        _require(
            isinstance(self.retry_timeout, (int, float))
            and not isinstance(self.retry_timeout, bool)
            and float(self.retry_timeout) > 0.0,
            f"faults.retry_timeout must be a number > 0, got {self.retry_timeout!r}",
        )
        object.__setattr__(self, "retry_timeout", float(self.retry_timeout))
        _require(
            isinstance(self.max_retries, int)
            and not isinstance(self.max_retries, bool)
            and self.max_retries >= 1,
            f"faults.max_retries must be an int >= 1, got {self.max_retries!r}",
        )
        _require(
            isinstance(self.checkpoint_every, int)
            and not isinstance(self.checkpoint_every, bool)
            and self.checkpoint_every >= 1,
            f"faults.checkpoint_every must be an int >= 1, "
            f"got {self.checkpoint_every!r}",
        )
        events = tuple(
            tuple(event) if isinstance(event, (list, tuple)) else event
            for event in self.events
        )
        object.__setattr__(self, "events", events)
        for i, event in enumerate(events):
            _require(
                isinstance(event, tuple) and len(event) >= 1,
                f"faults.events[{i}] must be a [kind, ...] array, got {event!r}",
            )
            kind = event[0]
            _require(
                kind in FAULT_KINDS,
                f"faults.events[{i}] kind must be one of "
                f"{sorted(FAULT_KINDS)}, got {kind!r}",
            )
            _require(
                len(event) == FAULT_KINDS[kind],
                f"faults.events[{i}] ({kind!r}) needs {FAULT_KINDS[kind]} "
                f"entries, got {len(event)}",
            )
            _require(
                all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in event[1:]
                ),
                f"faults.events[{i}] entries after the kind must be numbers, "
                f"got {event!r}",
            )
            _require(
                float(event[1]) >= 0.0,
                f"faults.events[{i}] start fraction must be >= 0, got {event[1]!r}",
            )


@dataclass(frozen=True)
class ExperimentSpec:
    """A paper figure/table regeneration, by registry name."""

    name: str
    model: str = "vgg19"

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"experiment.name must be a non-empty string, got {self.name!r}",
        )
        _require(
            isinstance(self.model, str) and bool(self.model),
            f"experiment.model must be a non-empty string, got {self.model!r}",
        )


@dataclass(frozen=True)
class SweepAxis:
    """One grid axis: a dotted field path and the values it sweeps."""

    path: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        _require(
            isinstance(self.path, str) and bool(self.path),
            f"sweep axis path must be a non-empty string, got {self.path!r}",
        )
        object.__setattr__(self, "values", tuple(self.values))
        _require(
            len(self.values) >= 1,
            f"sweep axis {self.path!r} needs at least one value",
        )


@dataclass(frozen=True)
class SweepSpec:
    """A grid over a base :class:`RunSpec` (cartesian product of axes)."""

    axes: tuple[SweepAxis, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        _require(len(self.axes) >= 1, "sweep.axes must list at least one axis")
        paths = [axis.path for axis in self.axes]
        _require(
            len(set(paths)) == len(paths),
            f"sweep.axes paths must be unique, got {paths}",
        )


@dataclass(frozen=True)
class RunSpec:
    """One fully-described run (or, with ``sweep`` set, a grid of them)."""

    kind: str = "scenario"
    seed: int = 0
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    model: ModelSpec | None = None
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    fidelity: FidelitySpec = field(default_factory=FidelitySpec)
    calibration: str = "default"
    oracles: str = "default"
    experiment: ExperimentSpec | None = None
    sweep: SweepSpec | None = None
    observability: ObservabilitySpec | None = None
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        # A disabled observability section is behaviorally identical to
        # an absent one; normalize to None so both forms serialize (and
        # hash) the same way.  Same for a disabled fault section.
        if self.observability is not None and not self.observability.enabled:
            object.__setattr__(self, "observability", None)
        if self.faults is not None and not self.faults.enabled:
            object.__setattr__(self, "faults", None)
        _require(
            self.kind in RUN_KINDS,
            f"kind must be one of {list(RUN_KINDS)}, got {self.kind!r}",
        )
        _require(
            isinstance(self.seed, int) and self.seed >= 0,
            f"seed must be an int >= 0, got {self.seed!r}",
        )
        _require(
            isinstance(self.calibration, str) and bool(self.calibration),
            f"calibration must be a non-empty string, got {self.calibration!r}",
        )
        _require(
            isinstance(self.oracles, str) and bool(self.oracles),
            f"oracles must be a non-empty string, got {self.oracles!r}",
        )
        if self.kind == "scenario":
            _require(
                self.model is not None,
                "a scenario spec needs a model section",
            )
            _require(
                self.experiment is None,
                "a scenario spec cannot carry an experiment section",
            )
            # Sweep grids may leave nm to be filled by an axis; concrete
            # scenario points are checked again at build time.
            if self.sweep is None:
                _require(
                    self.pipeline.nm is not None,
                    "a scenario spec needs a concrete pipeline.nm "
                    "(analytic selection is an experiment-level feature)",
                )
        else:
            _require(
                self.experiment is not None,
                "an experiment spec needs an experiment section",
            )

    # ------------------------------------------------------------------
    # canonical serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types dict, schema tag included (tuples -> lists)."""
        payload = _asdict_plain(self)
        # Absent observability/faults is the historical layout: omit the
        # keys entirely so pre-existing specs keep their spec_hash.
        if payload.get("observability") is None:
            del payload["observability"]
        if payload.get("faults") is None:
            del payload["faults"]
        payload["schema"] = SPEC_SCHEMA
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON: sorted keys, deterministic formatting."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent) + (
            "\n" if indent is not None else ""
        )

    @classmethod
    def from_dict(cls, data: Any) -> "RunSpec":
        """Parse and validate; unknown or ill-typed keys raise
        :class:`~repro.errors.SpecError` with the offending path."""
        if not isinstance(data, dict):
            raise SpecError(f"spec root must be a JSON object, got {type(data).__name__}")
        data = dict(data)
        schema = data.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SpecError(
                f"spec schema {schema!r} is not supported; expected {SPEC_SCHEMA!r}"
            )
        return _section_from_dict(cls, data, path="")

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @property
    def spec_hash(self) -> str:
        """sha256 of the schema tag + canonical compact JSON.

        Invariant under key order and formatting of the source file;
        changes whenever any field that affects behavior changes.
        """
        return hashlib.sha256(canonical_dumps(self.to_dict()).encode()).hexdigest()


# ----------------------------------------------------------------------
# dict <-> dataclass plumbing
# ----------------------------------------------------------------------

#: RunSpec fields that hold a nested section dataclass (or None).
_SECTION_TYPES: dict[str, type] = {
    "cluster": ClusterSpec,
    "model": ModelSpec,
    "pipeline": PipelineSpec,
    "network": NetworkSpec,
    "fidelity": FidelitySpec,
    "experiment": ExperimentSpec,
    "sweep": SweepSpec,
    "observability": ObservabilitySpec,
    "faults": FaultSpec,
}

#: Sections that may be null / absent.
_OPTIONAL_SECTIONS = {"model", "experiment", "sweep", "observability", "faults"}


def _asdict_plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value):
        return {
            f.name: _asdict_plain(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_asdict_plain(v) for v in value]
    return value


def _section_from_dict(cls: type, data: Any, path: str) -> Any:
    """Build dataclass ``cls`` from ``data``, rejecting unknown keys."""
    label = path or "spec"
    if not isinstance(data, dict):
        raise SpecError(f"{label} must be a JSON object, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{label} has unknown key(s) {unknown}; known keys: {sorted(known)}"
        )
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        raw = data[f.name]
        child = f"{path}.{f.name}" if path else f.name
        if cls is RunSpec and f.name in _SECTION_TYPES:
            if raw is None:
                if f.name not in _OPTIONAL_SECTIONS:
                    raise SpecError(f"{child} cannot be null")
                kwargs[f.name] = None
            elif f.name == "cluster" and isinstance(raw, str):
                # preset sugar: `"cluster": "paper"` resolves through the
                # CLUSTERS registry to a full ClusterSpec, so the
                # canonical (serialized, hashed) form always carries the
                # resolved fields
                from repro.api.registry import CLUSTERS

                kwargs[f.name] = CLUSTERS.get(raw)
            else:
                kwargs[f.name] = _section_from_dict(_SECTION_TYPES[f.name], raw, child)
        elif cls is SweepSpec and f.name == "axes":
            if not isinstance(raw, list):
                raise SpecError(f"{child} must be a JSON array of axis objects")
            kwargs[f.name] = tuple(
                _section_from_dict(SweepAxis, axis, f"{child}[{i}]")
                for i, axis in enumerate(raw)
            )
        elif isinstance(raw, list):
            kwargs[f.name] = tuple(
                tuple(v) if isinstance(v, list) else v for v in raw
            )
        elif isinstance(raw, bool) or raw is None or isinstance(raw, (int, float, str)):
            kwargs[f.name] = raw
        else:
            raise SpecError(
                f"{child} has unsupported JSON type {type(raw).__name__}"
            )
    try:
        return cls(**kwargs)
    except SpecError:
        raise
    except TypeError as exc:
        raise SpecError(f"{label}: {exc}") from None


# ----------------------------------------------------------------------
# sweep expansion
# ----------------------------------------------------------------------


def _set_field(spec: RunSpec, path: str, value: Any) -> RunSpec:
    """``replace`` along a dotted path ("pipeline.nm", "seed", ...)."""
    parts = path.split(".")
    if len(parts) == 1:
        (name,) = parts
        scalars = sorted(
            f.name for f in fields(RunSpec)
            if f.name != "sweep" and f.name not in _SECTION_TYPES
        )
        if name in _SECTION_TYPES:
            # A raw JSON object would bypass the section dataclass's
            # validation entirely; axes address leaves, not sections.
            raise SpecError(
                f"sweep axis path {path!r} names a whole section; sweep a "
                f"leaf field instead (e.g. {name!r}.<field>)"
            )
        if name not in scalars:
            raise SpecError(
                f"sweep axis path {path!r} is not a settable RunSpec field; "
                f"top-level fields: {scalars}"
            )
        return replace(spec, **{name: value})
    if len(parts) == 2:
        section_name, leaf = parts
        section_type = _SECTION_TYPES.get(section_name)
        if section_type is None:
            raise SpecError(
                f"sweep axis path {path!r} does not name a RunSpec section; "
                f"sections: {sorted(_SECTION_TYPES)}"
            )
        section = getattr(spec, section_name)
        if section is None:
            raise SpecError(
                f"sweep axis path {path!r} targets the absent {section_name!r} section"
            )
        if leaf not in {f.name for f in fields(section_type)}:
            raise SpecError(
                f"sweep axis path {path!r}: {section_name} has no field {leaf!r}; "
                f"fields: {sorted(f.name for f in fields(section_type))}"
            )
        if isinstance(value, list):
            value = tuple(value)
        return replace(spec, **{section_name: replace(section, **{leaf: value})})
    raise SpecError(f"sweep axis path {path!r} nests too deep (max section.field)")


def expand_sweep(spec: RunSpec) -> list[RunSpec]:
    """The ordered concrete points of a sweep grid.

    Cartesian product of the axes in declaration order, later axes
    varying fastest; each point is the base spec (``sweep`` cleared)
    with the axis fields replaced, re-validated by construction.  A
    spec without a ``sweep`` section expands to itself.
    """
    if spec.sweep is None:
        return [spec]
    points = [spec]
    for axis in spec.sweep.axes:
        points = [
            _set_field(point, axis.path, value)
            for point in points
            for value in axis.values
        ]
    # Clear ``sweep`` only after the axes are applied: the grid form is
    # allowed to leave axis-filled fields (e.g. a scenario's
    # ``pipeline.nm``) unset, and the concrete-point validation must see
    # the filled values, not the base's placeholders.
    return [replace(point, sweep=None) for point in points]


def fidelity_mode(fidelity: "str | FidelitySpec", caller: str) -> str:
    """Resolve a ``fidelity`` argument that may be typed or legacy.

    The canonical form is a :class:`FidelitySpec` (or a whole
    :class:`RunSpec` upstream); a bare non-default string still works as
    a shim but emits a :class:`DeprecationWarning` naming ``caller``.
    The default ``"full"`` string stays silent — it is the absence of
    the knob, not a use of the legacy surface.

    The standalone measurement surfaces honor only the ``fidelity``
    field (they have no equivalence twin and scale their own windows in
    minibatches), so a spec carrying ``waves_scale`` or
    ``verify_equivalence`` is rejected rather than silently truncated.
    """
    if isinstance(fidelity, FidelitySpec):
        unsupported = [
            name
            for name, is_set in (
                ("waves_scale", fidelity.waves_scale != 1),
                ("verify_equivalence", fidelity.verify_equivalence is not None),
            )
            if is_set
        ]
        if unsupported:
            raise SpecError(
                f"{caller} honors only FidelitySpec.fidelity; "
                f"{', '.join(unsupported)} has no effect here — drive the "
                f"run from a full RunSpec for those knobs"
            )
        return fidelity.fidelity
    if fidelity != "full":
        import warnings

        warnings.warn(
            f"passing fidelity={fidelity!r} directly to {caller} is "
            f"deprecated; pass a repro.api.FidelitySpec (or drive the run "
            f"from a RunSpec)",
            DeprecationWarning,
            stacklevel=3,
        )
    return fidelity


def axis_assignments(spec: RunSpec, point: RunSpec) -> str:
    """Human label for one point: ``path=value`` per swept axis."""
    if spec.sweep is None:
        return ""
    parts = []
    for axis in spec.sweep.axes:
        value: Any = point
        for name in axis.path.split("."):
            value = getattr(value, name)
        parts.append(f"{axis.path}={value}")
    return " ".join(parts)
