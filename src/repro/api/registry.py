"""Named registries: the one place strings resolve to factories.

Every open-ended axis of the design space — workload models, cluster
presets, calibrations, interconnect profiles, invariant-oracle suites,
partition planners, and the paper experiments — used to be a private
``dict`` lookup somewhere (``experiments.common.MODELS``,
``cluster.catalog.INTERCONNECT_PROFILES``, per-subcommand ``choices``
lists).  This module replaces that plumbing with typed
:class:`Registry` instances whose misses raise
:class:`repro.errors.UnknownNameError` listing the available names (the
CLI maps that to exit code 2).

Entries are lazy factories: looking a name up imports only what that
name needs, so ``repro fuzz`` / ``repro bench`` startup — itself a
tracked benchmark — stays free of NumPy and the experiment harnesses.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, TypeVar

from repro.errors import UnknownNameError

T = TypeVar("T")


class Registry(Generic[T]):
    """An ordered name -> value mapping with actionable misses."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, value: T) -> T:
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = value
        return value

    def get(self, name: str) -> T:
        """The entry for ``name``; :class:`UnknownNameError` if absent."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, list(self._entries)) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Registry({self.kind!r}, {self.names()})"


# ----------------------------------------------------------------------
# models: name -> () -> ModelGraph
# ----------------------------------------------------------------------

MODELS: Registry[Callable[[], Any]] = Registry("model")


def _model_builder(attr: str) -> Callable[[], Any]:
    def build() -> Any:
        import repro.models as models

        return getattr(models, attr)()

    return build


for _name, _attr in (
    ("vgg16", "build_vgg16"),
    ("vgg19", "build_vgg19"),
    ("resnet50", "build_resnet50"),
    ("resnet101", "build_resnet101"),
    ("resnet152", "build_resnet152"),
):
    MODELS.register(_name, _model_builder(_attr))


# ----------------------------------------------------------------------
# clusters: name -> ClusterSpec preset
# ----------------------------------------------------------------------

def _cluster_presets() -> dict[str, Any]:
    from repro.api.spec import ClusterSpec

    return {
        # the §8.1 testbed and its Table-4 scaling subsets
        "paper": ClusterSpec(node_codes="VRGQ", gpus_per_node=4),
        "paper_v": ClusterSpec(node_codes="V", gpus_per_node=4),
        "paper_vr": ClusterSpec(node_codes="VR", gpus_per_node=4),
        "paper_vrq": ClusterSpec(node_codes="VRQ", gpus_per_node=4),
        "paper_vrqg": ClusterSpec(node_codes="VRQG", gpus_per_node=4),
    }


CLUSTERS: Registry[Any] = Registry("cluster preset")
for _name, _spec in _cluster_presets().items():
    CLUSTERS.register(_name, _spec)


# ----------------------------------------------------------------------
# calibrations: name -> () -> Calibration
# ----------------------------------------------------------------------

CALIBRATIONS: Registry[Callable[[], Any]] = Registry("calibration")


def _default_calibration() -> Any:
    from repro.models.calibration import DEFAULT_CALIBRATION

    return DEFAULT_CALIBRATION


def _recompute_calibration() -> Any:
    from repro.models.calibration import DEFAULT_CALIBRATION

    return DEFAULT_CALIBRATION.with_overrides(activation_recompute=True)


CALIBRATIONS.register("default", _default_calibration)
CALIBRATIONS.register("activation_recompute", _recompute_calibration)


# ----------------------------------------------------------------------
# interconnect profiles: name -> InterconnectSpec
# ----------------------------------------------------------------------

PROFILES: Registry[Any] = Registry("interconnect profile")


def _register_profiles() -> None:
    from repro.cluster.catalog import INTERCONNECT_PROFILES

    for name, spec in INTERCONNECT_PROFILES.items():
        PROFILES.register(name, spec)


_register_profiles()


# ----------------------------------------------------------------------
# oracle suites: name -> () -> list of RuntimeOracle
# ----------------------------------------------------------------------

ORACLES: Registry[Callable[[], Any]] = Registry("oracle suite")


def _oracles_default() -> Any:
    from repro.sim.invariants import default_oracles

    return default_oracles()


def _oracles_staleness() -> Any:
    from repro.sim.invariants import StalenessOracle

    return [StalenessOracle()]


def _oracles_none() -> Any:
    return []


def _oracles_faults() -> Any:
    from repro.sim.invariants import fault_oracles

    return fault_oracles()


ORACLES.register("default", _oracles_default)
ORACLES.register("staleness", _oracles_staleness)
ORACLES.register("none", _oracles_none)
ORACLES.register("faults", _oracles_faults)


# ----------------------------------------------------------------------
# pipeline variants: name -> () -> VariantDef
# ----------------------------------------------------------------------

VARIANTS: Registry[Callable[[], Any]] = Registry("pipeline variant")


def _variant_entry(name: str) -> Callable[[], Any]:
    def resolve() -> Any:
        from repro.pipeline.variants import get_variant

        return get_variant(name)

    return resolve


#: The pipeline-variant zoo (see :mod:`repro.pipeline.variants.defs` for
#: the semantics each entry pins down): "vw_hetpipe" is the paper's WSP
#: pipeline and the default everywhere; the others re-interpret the same
#: substrate under PipeDream / PipeDream-2BW / GPipe / XPipe weight
#: versioning and admission rules.
for _name in ("vw_hetpipe", "gpipe_flush", "pipedream", "pipedream_2bw", "xpipe"):
    VARIANTS.register(_name, _variant_entry(_name))


# ----------------------------------------------------------------------
# planners: name -> (model, gpus, nm, interconnect, calibration,
#                    profiler) -> PartitionPlan
# ----------------------------------------------------------------------

PLANNERS: Registry[Callable[..., Any]] = Registry("planner")


def _plan_dp(
    model, gpus, nm, interconnect, calibration, profiler,
    weight_policy: str = "stash_per_minibatch",
) -> Any:
    from repro.partition import plan_virtual_worker

    return plan_virtual_worker(
        model, gpus, nm, interconnect, calibration, profiler,
        search_orderings=False, weight_policy=weight_policy,
    )


def _plan_dp_ordered(
    model, gpus, nm, interconnect, calibration, profiler,
    weight_policy: str = "stash_per_minibatch",
) -> Any:
    from repro.partition import plan_virtual_worker

    return plan_virtual_worker(
        model, gpus, nm, interconnect, calibration, profiler,
        search_orderings=True, weight_policy=weight_policy,
    )


def _plan_bnb(
    model, gpus, nm, interconnect, calibration, profiler,
    weight_policy: str = "stash_per_minibatch",
) -> Any:
    from repro.partition import plan_virtual_worker_bnb

    return plan_virtual_worker_bnb(
        model, gpus, nm, interconnect, calibration, profiler,
        weight_policy=weight_policy,
    )


#: "dp" is the paper-faithful exact DP in natural GPU order — the
#: default everywhere; "dp_ordered" adds the GPU-ordering search (an
#: extension); "bnb" is the branch-and-bound cross-check solver.
PLANNERS.register("dp", _plan_dp)
PLANNERS.register("dp_ordered", _plan_dp_ordered)
PLANNERS.register("bnb", _plan_bnb)


# ----------------------------------------------------------------------
# placement policies: name -> (PlacementRequest) -> list[StagePlacement]
# ----------------------------------------------------------------------

PLACEMENTS: Registry[Callable[..., Any]] = Registry("placement policy")


def _placement_policy(attr: str) -> Callable[..., Any]:
    def resolve(request: Any) -> Any:
        import repro.wsp.placement as placement

        return getattr(placement, attr)(request)

    return resolve


#: "default"/"local" are the historical unsharded policies (shards=1
#: only); the other three place K > 1 shard slots per stage — see
#: :mod:`repro.wsp.placement` for the semantics of each.
for _name, _attr in (
    ("default", "_policy_default"),
    ("local", "_policy_local"),
    ("size_balanced", "_policy_size_balanced"),
    ("locality_aware", "_policy_locality_aware"),
    ("contention_aware", "_policy_contention_aware"),
):
    PLACEMENTS.register(_name, _placement_policy(_attr))


# ----------------------------------------------------------------------
# experiments: name -> (model_name, jobs) -> result with .render()
# ----------------------------------------------------------------------

EXPERIMENTS: Registry[Callable[..., Any]] = Registry("experiment")


def _exp_fig3(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_fig3

    return run_fig3(model, jobs=jobs)


def _exp_fig4(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_fig4

    return run_fig4(model, jobs=jobs)


def _exp_table4(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_table4

    return run_table4(model, jobs=jobs)


def _exp_fig5(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_fig5

    return run_fig5()


def _exp_fig6(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_fig6

    return run_fig6()


def _exp_sync(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_sync_overhead

    return run_sync_overhead(model)


def _exp_ablations(model: str, jobs: int | None) -> Any:
    from repro.experiments import run_ablations

    return run_ablations(model)


EXPERIMENTS.register("fig3", _exp_fig3)
EXPERIMENTS.register("fig4", _exp_fig4)
EXPERIMENTS.register("table4", _exp_table4)
EXPERIMENTS.register("fig5", _exp_fig5)
EXPERIMENTS.register("fig6", _exp_fig6)
EXPERIMENTS.register("sync", _exp_sync)
EXPERIMENTS.register("ablations", _exp_ablations)
