"""Plain-text and markdown table rendering for experiment results."""

from __future__ import annotations

from typing import Any, Sequence

Row = Sequence[Any]


def _stringify(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Row, rows: Sequence[Row], title: str | None = None) -> str:
    """Fixed-width aligned table for terminal output."""
    cells = [[_stringify(h) for h in headers]] + [[_stringify(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Row, rows: Sequence[Row]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    head = "| " + " | ".join(_stringify(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(_stringify(c) for c in row) + " |" for row in rows]
    return "\n".join([head, sep] + body)


def ascii_curve(
    points: Sequence[tuple[float, float]],
    width: int = 70,
    height: int = 14,
    label: str = "",
) -> str:
    """Tiny ASCII plot of (x, y) series — accuracy curves in the terminal."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [f"{label} (y: {y_lo:.3f}..{y_hi:.3f}, x: {x_lo:.0f}..{x_hi:.0f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    return "\n".join(lines)
