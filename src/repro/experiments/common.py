"""Shared experiment plumbing.

Everything the per-figure modules need: the model registry, the seven
Fig-3 virtual-worker mixes, paper-faithful planning defaults (natural
GPU order — the paper's partitioner does not reorder GPUs; our ordering
search is an extension exercised by the ablation bench), and the Nm
selection procedure ("Nm is set such that performance is maximized while
every virtual worker uses the same value", §8.3).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

from repro.allocation import VirtualWorkerAssignment, allocate
from repro.api.registry import MODELS
from repro.cluster import Cluster, paper_cluster
from repro.cluster.gpu import GPUDevice
from repro.errors import PartitionError
from repro.models import ModelGraph
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.profiler import Profiler
from repro.partition import PartitionPlan, max_feasible_nm, plan_virtual_worker

logger = logging.getLogger(__name__)

#: MLP architecture for the numeric convergence experiments.
EXPERIMENT_MODEL_DIMS = [24, 64, 32, 8]

#: Target "top-1 accuracy" for the synthetic convergence runs — chosen
#: just below the plateau so every configuration can reach it (the paper
#: uses 74% ResNet-152 / 67% VGG-19 on ImageNet).
TARGET_ACCURACY = {"vgg19": 0.65, "resnet152": 0.66}

#: Experiments partition in the paper's natural GPU order.
PAPER_PLANNING = {"search_orderings": False}

#: Highest pipeline depth the experiments sweep (Fig. 3 plots Nm 1..7).
MAX_NM = 7


def build_model(name: str) -> ModelGraph:
    """The named workload, via the API's model registry.

    Unknown names raise :class:`~repro.errors.UnknownNameError` listing
    the registered models (the CLI maps that to exit code 2).
    """
    return MODELS.get(name)()


def fig3_virtual_workers(cluster: Cluster) -> dict[str, list[GPUDevice]]:
    """The seven single-VW GPU mixes of Figure 3, in paper order."""
    gpus = cluster.gpus
    return {
        "VVVV": list(gpus[0:4]),
        "VRGQ": [gpus[0], gpus[4], gpus[8], gpus[12]],
        "RRRR": list(gpus[4:8]),
        "VVQQ": [gpus[0], gpus[1], gpus[12], gpus[13]],
        "GGGG": list(gpus[8:12]),
        "RRGG": [gpus[4], gpus[5], gpus[8], gpus[9]],
        "QQQQ": list(gpus[12:16]),
    }


def plan_assignment(
    model: ModelGraph,
    assignment: VirtualWorkerAssignment,
    nm: int,
    cluster: Cluster,
    calibration: Calibration = DEFAULT_CALIBRATION,
    profiler: Profiler | None = None,
) -> list[PartitionPlan]:
    """Paper-faithful plans (natural order) for every virtual worker."""
    profiler = profiler or Profiler(calibration)
    return [
        plan_virtual_worker(
            model, vw, nm, cluster.interconnect, calibration, profiler, **PAPER_PLANNING
        )
        for vw in assignment.virtual_workers
    ]


@dataclass(frozen=True)
class NmChoice:
    """The selected shared pipeline depth and the resulting plans."""

    nm: int
    max_feasible: int
    plans: list[PartitionPlan]


def choose_nm(
    model: ModelGraph,
    assignment: VirtualWorkerAssignment,
    cluster: Cluster,
    calibration: Calibration = DEFAULT_CALIBRATION,
    max_nm: int = MAX_NM,
    placement: str | None = None,
    d: int = 0,
) -> NmChoice:
    """Pick the shared ``Nm`` "such that performance is maximized" (§8.3).

    ``Nm`` must be identical in every virtual worker, so the cap is the
    minimum ``Maxm`` (§4).  With ``placement`` given, each candidate is
    *measured* with a short end-to-end run (pipeline + parameter server
    at the given ``D``) — this captures the wave-size/sync-amortization
    trade-off that makes the paper run VGG-19 at ``Nm = 5``.  Without a
    placement, a pipe-only analytic proxy ranks candidates (cheap; used
    by unit tests).
    """
    # Imported here to avoid a circular import (wsp.measure -> plans).
    from repro.wsp import measure_hetpipe

    profiler = Profiler(calibration)
    cap = min(
        max_feasible_nm(
            model, vw, cluster.interconnect, calibration, profiler, limit=max_nm,
            **PAPER_PLANNING,
        )
        for vw in assignment.virtual_workers
    )
    if cap < 1:
        raise PartitionError(
            f"{model.name} infeasible for {assignment.describe()} at any Nm"
        )
    best: NmChoice | None = None
    best_rate = -1.0
    for nm in range(1, cap + 1):
        plans = plan_assignment(model, assignment, nm, cluster, calibration, profiler)
        if placement is not None:
            metrics = measure_hetpipe(
                cluster, model, plans, d=d, placement=placement,
                calibration=calibration, warmup_waves=2, measured_waves=4,
            )
            rate = metrics.throughput
        else:
            # Saturated rate of the slowest VW: a pipe holding nm
            # minibatches over k stages completes at most nm per full
            # traversal until nm covers the stages, then one per
            # bottleneck period.
            rate = min(
                min(nm / plan.serial_latency, 1.0 / plan.bottleneck_period)
                for plan in plans
            )
        if rate > best_rate:
            best_rate = rate
            best = NmChoice(nm=nm, max_feasible=cap, plans=plans)
    assert best is not None
    logger.debug(
        "choose_nm: %s %s -> Nm=%d (cap %d)",
        model.name, assignment.describe(), best.nm, cap,
    )
    return best


def hetpipe_assignment_for_subset(node_codes: str) -> tuple[Cluster, VirtualWorkerAssignment]:
    """Cluster + ED assignment for a Table-4 GPU subset ("V", "VR", ...).

    A single node yields one virtual worker of its four GPUs (the
    paper's 4[V] single-VW configuration); multiple nodes yield four
    equal virtual workers via ED.
    """
    cluster = paper_cluster(node_codes=node_codes)
    if len(cluster.nodes) == 1:
        assignment = allocate(cluster, "NP")  # one VW = the whole node
    else:
        assignment = allocate(cluster, "ED")
    return cluster, assignment
