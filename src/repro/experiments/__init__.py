"""Experiment harness: one module per paper table/figure.

===================  =======================================
Paper result         Module
===================  =======================================
Figure 3             :mod:`repro.experiments.fig3_single_vw`
Figure 4             :mod:`repro.experiments.fig4_multi_vw`
Table 4              :mod:`repro.experiments.table4_whimpy`
Figure 5             :mod:`repro.experiments.fig5_resnet_convergence`
Figure 6             :mod:`repro.experiments.fig6_vgg_convergence`
§8.4 sync overhead   :mod:`repro.experiments.sync_overhead`
design ablations     :mod:`repro.experiments.ablations`
network contention   :mod:`repro.experiments.netsim_report`
===================  =======================================
"""

from repro.experiments.ablations import AblationResult, run_ablations
from repro.experiments.fig3_single_vw import Fig3Result, run_fig3
from repro.experiments.fig4_multi_vw import Fig4Result, run_fig4
from repro.experiments.fig5_resnet_convergence import Fig5Result, run_fig5
from repro.experiments.fig6_vgg_convergence import Fig6Result, run_fig6
from repro.experiments.netsim_report import NetsimResult, run_netsim
from repro.experiments.sync_overhead import SyncOverheadResult, run_sync_overhead
from repro.experiments.table4_whimpy import Table4Result, run_table4

__all__ = [
    "AblationResult",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "NetsimResult",
    "SyncOverheadResult",
    "Table4Result",
    "run_ablations",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_netsim",
    "run_sync_overhead",
    "run_table4",
]
