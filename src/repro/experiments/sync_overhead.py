"""§8.4 synchronization-overhead analysis: waiting and idle time vs D.

With compute jitter enabled (real clusters are noisy), measure per-wave
waiting time for the updated global weights at ``D = 0, 4, 32`` and the
fraction of waiting during which the virtual worker was truly idle.
Paper findings: waiting at ``D = 4`` is ~62% of ``D = 0``; actual idle
time is only ~18% of waiting because the pipeline keeps processing
already-admitted minibatches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import paper_cluster
from repro.allocation import allocate
from repro.experiments.common import build_model, choose_nm
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.wsp import measure_hetpipe


@dataclass(frozen=True)
class SyncOverheadRow:
    d: int
    throughput: float
    wait_per_wave: float
    idle_fraction: float
    wait_ratio_vs_d0: float


@dataclass(frozen=True)
class SyncOverheadResult:
    model_name: str
    rows: list[SyncOverheadRow]

    def row(self, d: int) -> SyncOverheadRow:
        for row in self.rows:
            if row.d == d:
                return row
        raise KeyError(d)

    def render(self) -> str:
        return format_table(
            ["D", "img/s", "wait/wave (ms)", "idle frac of wait", "wait vs D=0"],
            [
                (r.d, r.throughput, r.wait_per_wave * 1e3, r.idle_fraction, r.wait_ratio_vs_d0)
                for r in self.rows
            ],
            title=(
                f"§8.4 — {self.model_name} sync overhead vs D "
                "(paper: wait(D=4) ~= 62% of wait(D=0); idle ~= 18% of wait)"
            ),
        )


def run_sync_overhead(
    model_name: str = "vgg19",
    calibration: Calibration = DEFAULT_CALIBRATION,
    d_values: tuple[int, ...] = (0, 4, 32),
    jitter: float = 0.08,
    measured_waves: int = 16,
) -> SyncOverheadResult:
    """Waiting/idle accounting of ED-local HetPipe across D values."""
    model = build_model(model_name)
    cluster = paper_cluster()
    assignment = allocate(cluster, "ED")
    choice = choose_nm(model, assignment, cluster, calibration, placement="local")
    rows: list[SyncOverheadRow] = []
    base_wait: float | None = None
    for d in d_values:
        metrics = measure_hetpipe(
            cluster, model, choice.plans, d=d, placement="local",
            calibration=calibration, measured_waves=measured_waves, jitter=jitter,
        )
        if base_wait is None:
            base_wait = metrics.avg_wait_per_wave
        rows.append(
            SyncOverheadRow(
                d=d,
                throughput=metrics.throughput,
                wait_per_wave=metrics.avg_wait_per_wave,
                idle_fraction=metrics.idle_fraction_of_wait,
                wait_ratio_vs_d0=(
                    metrics.avg_wait_per_wave / base_wait if base_wait > 0 else 0.0
                ),
            )
        )
    return SyncOverheadResult(model_name=model_name, rows=rows)
