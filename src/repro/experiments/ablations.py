"""Ablations of DESIGN.md §6 — design choices quantified.

1. **Wave-aggregated vs per-minibatch push** — WSP's communication
   saving (§5 argues pushing per wave "significantly reduces the
   communication overhead").
2. **GPU ordering search vs natural order** — our extension beyond the
   paper: letting the planner permute GPUs inside a virtual worker.
3. **GPipe-style flush vs HetPipe continuous pipeline** — the §2.3
   comparison, quantified on the same partition.
4. **D sweep under NP** — bounded staleness absorbing stragglers, the
   regime where D matters most (heterogeneous virtual workers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation import allocate
from repro.cluster import paper_cluster
from repro.experiments.common import build_model, choose_nm, plan_assignment
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.partition import max_feasible_nm, plan_virtual_worker
from repro.pipeline import measure_pipeline
from repro.pipeline.one_f_one_b import measure_1f1b_pipeline
from repro.pipeline.variants import measure_flush_pipeline
from repro.units import mib
from repro.wsp import measure_hetpipe


@dataclass(frozen=True)
class AblationRow:
    name: str
    variant: str
    value: float
    unit: str


@dataclass(frozen=True)
class AblationResult:
    model_name: str
    rows: list[AblationRow]

    def values(self, name: str) -> dict[str, float]:
        return {r.variant: r.value for r in self.rows if r.name == name}

    def render(self) -> str:
        return format_table(
            ["ablation", "variant", "value", "unit"],
            [(r.name, r.variant, r.value, r.unit) for r in self.rows],
            title=f"Ablations — {self.model_name}",
        )


def run_ablations(
    model_name: str = "resnet152",
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> AblationResult:
    model = build_model(model_name)
    cluster = paper_cluster()
    rows: list[AblationRow] = []

    # 1. wave push vs per-minibatch push (ED default placement, where
    # sync traffic crosses the network and the difference is visible)
    assignment = allocate(cluster, "ED")
    choice = choose_nm(model, assignment, cluster, calibration, placement="default")
    for variant, per_minibatch in (("per-wave", False), ("per-minibatch", True)):
        metrics = measure_hetpipe(
            cluster, model, choice.plans, d=0, placement="default",
            calibration=calibration, measured_waves=6,
            push_every_minibatch=per_minibatch,
        )
        rows.append(AblationRow("push-granularity", variant, metrics.throughput, "img/s"))
        rows.append(
            AblationRow(
                "push-granularity-traffic", variant,
                metrics.sync_cross_node_bytes_per_wave / mib(1), "MiB/wave",
            )
        )

    # 2. ordering search on one heterogeneous virtual worker
    vw = assignment.virtual_workers[0]
    for variant, search in (("natural", False), ("searched", True)):
        plan = plan_virtual_worker(
            model, vw, choice.nm, cluster.interconnect, calibration,
            search_orderings=search,
        )
        metrics = measure_pipeline(plan, cluster.interconnect, model.batch_size, measured_minibatches=40)
        rows.append(AblationRow("gpu-ordering", variant, metrics.throughput, "img/s"))

    # 3. GPipe-style flush vs continuous pipeline on an identical plan
    plan = choice.plans[0]
    continuous = measure_pipeline(plan, cluster.interconnect, model.batch_size, measured_minibatches=40)
    flush = measure_flush_pipeline(plan, cluster.interconnect, model.batch_size, measured_minibatches=40)
    rows.append(AblationRow("pipeline-style", "hetpipe-continuous", continuous.throughput, "img/s"))
    rows.append(AblationRow("pipeline-style", "gpipe-flush", flush, "img/s"))

    # 3b. PipeDream-style 1F1B dispatch on the same plan (§2.3 / §9)
    one_f_one_b = measure_1f1b_pipeline(
        plan, cluster.interconnect, model.batch_size, measured_minibatches=40
    )
    rows.append(AblationRow("pipeline-style", "pipedream-1f1b", one_f_one_b, "img/s"))

    # 3c. GPipe-style activation recomputation: more Maxm, slower steps
    vw0 = assignment.virtual_workers[0]
    recompute_cal = calibration.with_overrides(activation_recompute=True)
    for variant, cal in (("off", calibration), ("on", recompute_cal)):
        cap = max_feasible_nm(
            model, vw0, cluster.interconnect, cal, limit=10, search_orderings=False
        )
        rows.append(AblationRow("recompute-maxm", variant, float(cap), "Nm"))
        re_plan = plan_virtual_worker(
            model, vw0, min(cap, choice.nm), cluster.interconnect, cal,
            search_orderings=False,
        )
        metrics = measure_pipeline(
            re_plan, cluster.interconnect, model.batch_size, measured_minibatches=40
        )
        rows.append(AblationRow("recompute-throughput", variant, metrics.throughput, "img/s"))

    # 4. D sweep under NP (heterogeneous virtual workers -> stragglers)
    np_assignment = allocate(cluster, "NP")
    np_choice = choose_nm(model, np_assignment, cluster, calibration, placement="default")
    for d in (0, 4, 32):
        metrics = measure_hetpipe(
            cluster, model, np_choice.plans, d=d, placement="default",
            calibration=calibration, measured_waves=6, jitter=0.05,
        )
        rows.append(AblationRow("np-d-sweep", f"D={d}", metrics.throughput, "img/s"))

    return AblationResult(model_name=model_name, rows=rows)
