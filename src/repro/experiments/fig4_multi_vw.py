"""Figure 4: multi-virtual-worker throughput under the allocation policies.

Bars: Horovod (AllReduce BSP; only 12 GPUs for ResNet-152), then HetPipe
with NP / ED / ED-local / HD at ``D = 0``.  For each policy ``Nm`` is
chosen to maximize performance subject to the shared-Nm constraint
(§8.3); the chosen value is reported alongside, matching the numbers
printed on the paper's bars.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.cluster import paper_cluster
from repro.allocation import allocate
from repro.errors import MemoryCapacityError
from repro.experiments.common import build_model, choose_nm
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.parallel import measure_horovod
from repro.units import mib
from repro.wsp import measure_hetpipe

logger = logging.getLogger(__name__)

#: Paper bar values (images/s), read from Figure 4 / cross-checked with
#: Table 4 where exact numbers are given.
PAPER_FIG4 = {
    "vgg19": {"Horovod": 339, "ED-local": 606},
    "resnet152": {"Horovod": 415, "ED-local": 580},
}


@dataclass(frozen=True)
class Fig4Bar:
    label: str
    nm: int | None
    throughput: float
    gpus: int
    cross_node_sync_mib_per_wave: float
    cross_node_pipe_mib_per_minibatch: float


@dataclass(frozen=True)
class Fig4Result:
    model_name: str
    bars: list[Fig4Bar]
    paper: dict[str, int]

    def bar(self, label: str) -> Fig4Bar:
        for bar in self.bars:
            if bar.label == label:
                return bar
        raise KeyError(label)

    def render(self) -> str:
        return format_table(
            ["policy", "Nm", "img/s", "GPUs", "sync x-node MiB/wave", "pipe x-node MiB/mb", "paper"],
            [
                (
                    bar.label,
                    bar.nm if bar.nm is not None else "-",
                    bar.throughput,
                    bar.gpus,
                    bar.cross_node_sync_mib_per_wave,
                    bar.cross_node_pipe_mib_per_minibatch,
                    self.paper.get(bar.label, ""),
                )
                for bar in self.bars
            ],
            title=f"Figure 4 — {self.model_name}: Horovod vs HetPipe policies (D=0)",
        )


def _policy_bar(
    args: tuple[str, str, str, Calibration, int, int],
) -> Fig4Bar:
    """One bar of the figure (the :func:`repro.exec.sweep_map` item).

    ``policy == "horovod"`` measures the AllReduce baseline; anything
    else is a HetPipe (policy, placement) pair.  Module-level and
    argument-pure so bars can run in worker processes.
    """
    model_name, policy, placement, calibration, d, measured_waves = args
    model = build_model(model_name)
    cluster = paper_cluster()
    if policy == "horovod":
        try:
            horovod = measure_horovod(cluster, model, calibration)
            return Fig4Bar(
                label="Horovod",
                nm=None,
                throughput=horovod.throughput,
                gpus=horovod.num_gpus,
                cross_node_sync_mib_per_wave=horovod.cross_node_bytes_per_minibatch / mib(1),
                cross_node_pipe_mib_per_minibatch=0.0,
            )
        except MemoryCapacityError:
            return Fig4Bar("Horovod", None, 0.0, 0, 0.0, 0.0)
    assignment = allocate(cluster, policy)
    choice = choose_nm(
        model, assignment, cluster, calibration, placement=placement, d=d
    )
    metrics = measure_hetpipe(
        cluster,
        model,
        choice.plans,
        d=d,
        placement=placement,
        calibration=calibration,
        measured_waves=measured_waves,
    )
    label = f"{policy}-local" if placement == "local" else policy
    return Fig4Bar(
        label=label,
        nm=choice.nm,
        throughput=metrics.throughput,
        gpus=assignment.total_gpus,
        cross_node_sync_mib_per_wave=metrics.sync_cross_node_bytes_per_wave / mib(1),
        cross_node_pipe_mib_per_minibatch=metrics.pipeline_cross_node_bytes_per_minibatch / mib(1),
    )


def run_fig4(
    model_name: str,
    calibration: Calibration = DEFAULT_CALIBRATION,
    d: int = 0,
    measured_waves: int = 8,
    jobs: int | None = 1,
) -> Fig4Result:
    """Measure Horovod plus the four HetPipe policy bars.

    ``jobs`` distributes the bars across worker processes (see
    :mod:`repro.exec`); bar order is fixed either way.
    """
    from repro.exec import sweep_map

    configs = [
        ("horovod", "default"),
        ("NP", "default"),
        ("ED", "default"),
        ("ED", "local"),
        ("HD", "default"),
    ]
    logger.info("fig4: %s over %d policy bars (jobs=%s)", model_name, len(configs), jobs)
    bars = sweep_map(
        _policy_bar,
        [
            (model_name, policy, placement, calibration, d, measured_waves)
            for policy, placement in configs
        ],
        jobs=jobs,
    )
    return Fig4Result(model_name=model_name, bars=bars, paper=PAPER_FIG4[model_name])
