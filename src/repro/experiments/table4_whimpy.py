"""Table 4: throughput as whimpy GPUs are added.

GPU subsets 4[V], 8[VR], 12[VRQ], 16[VRQG]; Horovod vs HetPipe with
ED-local placement (a single VVVV virtual worker for the 4-GPU case,
four equal virtual workers otherwise).  The paper's parenthesised
numbers — the total concurrent minibatches ``Nm x num_VWs`` — are
reported too, and ResNet-152 Horovod at 16 GPUs is the feasibility 'X'.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryCapacityError
from repro.experiments.common import build_model, choose_nm, hetpipe_assignment_for_subset
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.parallel import measure_horovod
from repro.wsp import measure_hetpipe

SUBSETS = ("V", "VR", "VRQ", "VRQG")

PAPER_TABLE4 = {
    "vgg19": {
        "Horovod": {"V": 164, "VR": 205, "VRQ": 265, "VRQG": 339},
        "HetPipe": {"V": (300, 5), "VR": (530, 16), "VRQ": (572, 20), "VRQG": (606, 20)},
    },
    "resnet152": {
        "Horovod": {"V": 233, "VR": 353, "VRQ": 415, "VRQG": None},  # X at 16
        "HetPipe": {"V": (256, 5), "VR": (516, 20), "VRQ": (538, 24), "VRQG": (580, 28)},
    },
}


@dataclass(frozen=True)
class Table4Row:
    subset: str
    gpus: int
    horovod: float | None  # None == infeasible (the paper's X)
    hetpipe: float
    concurrent: int  # Nm x num_VWs
    nm: int
    num_vws: int


@dataclass(frozen=True)
class Table4Result:
    model_name: str
    rows: list[Table4Row]

    def row(self, subset: str) -> Table4Row:
        for row in self.rows:
            if row.subset == subset:
                return row
        raise KeyError(subset)

    def speedup_from_whimpy(self) -> float:
        """HetPipe 16-GPU vs single-node throughput (paper: up to 2.3x)."""
        return self.row("VRQG").hetpipe / self.row("V").hetpipe

    def render(self) -> str:
        paper = PAPER_TABLE4[self.model_name]
        rows = []
        for row in self.rows:
            p_h = paper["Horovod"][row.subset]
            p_hp = paper["HetPipe"][row.subset]
            rows.append(
                (
                    f"{row.gpus}[{row.subset}]",
                    "X" if row.horovod is None else f"{row.horovod:.0f}",
                    "X" if p_h is None else p_h,
                    f"{row.hetpipe:.0f}({row.concurrent})",
                    f"{p_hp[0]}({p_hp[1]})",
                )
            )
        return format_table(
            ["GPUs", "Horovod", "paper", "HetPipe(conc)", "paper"],
            rows,
            title=f"Table 4 — {self.model_name}: adding whimpy GPUs (ED-local)",
        )


def _subset_row(args: tuple[str, str, Calibration, int]) -> Table4Row:
    """One GPU-subset row (the :func:`repro.exec.sweep_map` item).

    Module-level and argument-pure so subsets can run in worker
    processes; each row is an independent deterministic measurement.
    """
    model_name, subset, calibration, measured_waves = args
    model = build_model(model_name)
    cluster, assignment = hetpipe_assignment_for_subset(subset)
    try:
        hv = measure_horovod(cluster, model, calibration)
        # The paper's 'X': Horovod cannot use this GPU set in full
        # (ResNet-152 does not fit the G GPUs at 16).
        horovod: float | None = hv.throughput if hv.excluded_gpus == 0 else None
    except MemoryCapacityError:
        horovod = None
    choice = choose_nm(model, assignment, cluster, calibration, placement="local")
    # a single-node VW cannot use 'local' placement benefits/penalties
    # distinction; placement local is still valid (all shards on the
    # one node)
    placement = "local"
    metrics = measure_hetpipe(
        cluster,
        model,
        choice.plans,
        d=0,
        placement=placement,
        calibration=calibration,
        measured_waves=measured_waves,
    )
    return Table4Row(
        subset=subset,
        gpus=assignment.total_gpus,
        horovod=horovod,
        hetpipe=metrics.throughput,
        concurrent=choice.nm * assignment.num_virtual_workers,
        nm=choice.nm,
        num_vws=assignment.num_virtual_workers,
    )


def run_table4(
    model_name: str,
    calibration: Calibration = DEFAULT_CALIBRATION,
    measured_waves: int = 8,
    jobs: int | None = 1,
) -> Table4Result:
    """Measure Horovod and HetPipe(ED-local) on each GPU subset.

    ``jobs`` distributes the subsets across worker processes (see
    :mod:`repro.exec`); row order is fixed either way.
    """
    from repro.exec import sweep_map

    rows = sweep_map(
        _subset_row,
        [(model_name, subset, calibration, measured_waves) for subset in SUBSETS],
        jobs=jobs,
    )
    return Table4Result(model_name=model_name, rows=rows)
