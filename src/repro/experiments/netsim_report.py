"""Network-contention report: per-resource utilization and hot links.

Runs one HetPipe deployment twice — once under the historical dedicated
per-stream links and once on the shared contention-aware fabric — and
reports what the fabric saw: utilization, traffic, queueing delay, and
peak queue depth per shared resource (PCIe lanes, host lanes, PCIe
switches, NICs, IB fabric), plus the top-k congested links.  This is the
``repro netsim`` subcommand's backend and the measurement any future
contention-aware planner would consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation import allocate
from repro.cluster.catalog import DEFAULT_PROFILE, paper_cluster
from repro.errors import ConfigurationError
from repro.experiments.common import build_model, choose_nm, plan_assignment
from repro.experiments.report import format_table
from repro.netsim.fabric import utilization_report
from repro.wsp import measure_hetpipe
from repro.wsp.runtime import HetPipeRuntime


@dataclass(frozen=True)
class NetsimResult:
    """Dedicated-vs-shared comparison plus the fabric's resource table."""

    model_name: str
    node_codes: str
    allocation: str
    nm: int
    d: int
    placement: str
    profile: str
    dedicated_throughput: float
    shared_throughput: float
    queue_delay_total: float
    max_queue_depth: int
    #: (name, kind, utilization, GiB moved, queue delay s, peak depth)
    resources: tuple[tuple[str, str, float, float, float, int], ...]
    top: int
    shards: int = 1
    shard_placement: str = "size_balanced"
    #: queueing attributed to ps.*-tagged flows alone (fabric mode)
    ps_queue_delay_total: float = 0.0
    ps_max_queue_depth: int = 0

    @property
    def slowdown(self) -> float:
        """Dedicated / shared throughput — the modeled contention cost."""
        if self.shared_throughput <= 0:
            return float("inf")
        return self.dedicated_throughput / self.shared_throughput

    def render(self) -> str:
        lines = [
            format_table(
                ["resource", "kind", "util", "GiB", "queue s", "peak q"],
                [
                    (name, kind, f"{util:.3f}", f"{gib:.3f}", f"{delay:.4f}", depth)
                    for name, kind, util, gib, delay, depth in self.resources[: self.top]
                ],
                title=(
                    f"netsim — {self.model_name} on {self.node_codes} "
                    f"({self.allocation}, Nm={self.nm}, D={self.d}, "
                    f"place={self.placement}, "
                    # appended only for sharded-PS runs so default
                    # output stays byte-identical to the unsharded report
                    + (
                        f"shards={self.shards}:{self.shard_placement}, "
                        if self.shards > 1
                        else ""
                    )
                    + f"profile={self.profile}): "
                    f"top {min(self.top, len(self.resources))} congested resources"
                ),
            ),
            "",
            f"dedicated links: {self.dedicated_throughput:8.1f} img/s",
            f"shared fabric:   {self.shared_throughput:8.1f} img/s "
            f"({self.slowdown:.2f}x slowdown from contention)",
            f"total queueing delay {self.queue_delay_total:.3f}s, "
            f"peak queue depth {self.max_queue_depth}",
        ]
        if self.shards > 1:
            lines.append(
                f"ps queueing delay {self.ps_queue_delay_total:.3f}s, "
                f"peak ps queue depth {self.ps_max_queue_depth}"
            )
        return "\n".join(lines)


def run_netsim(
    model_name: str = "vgg19",
    node_codes: str = "VRGQ",
    allocation: str = "ED",
    d: int = 0,
    nm: int | None = None,
    placement: str = "default",
    profile: str = DEFAULT_PROFILE,
    top: int = 8,
    warmup_waves: int = 2,
    measured_waves: int = 4,
    shards: int = 1,
    shard_placement: str = "size_balanced",
) -> NetsimResult:
    """Measure one deployment under both network models.

    ``nm=None`` picks the analytic best shared pipeline depth (§8.3's
    procedure without the slow end-to-end sweep).
    """
    model = build_model(model_name)
    cluster = paper_cluster(node_codes=node_codes, profile=profile)
    assignment = allocate(cluster, allocation)
    if nm is None:
        nm = choose_nm(model, assignment, cluster).nm
    plans = plan_assignment(model, assignment, nm, cluster)

    dedicated = measure_hetpipe(
        cluster, model, plans, d=d, placement=placement,
        shards=shards, shard_placement=shard_placement,
        warmup_waves=warmup_waves, measured_waves=measured_waves,
    )
    # The shared run uses the runtime directly so the fabric object (and
    # its per-resource counters) stays inspectable after the run.
    runtime = HetPipeRuntime(
        cluster, model, plans, d=d, placement=placement,
        shards=shards, shard_placement=shard_placement,
        network_model="shared",
    )
    runtime.start()
    runtime.run_until_global_version(warmup_waves - 1)
    t0 = runtime.sim.now
    done0 = runtime.total_minibatches_done()
    runtime.run_until_global_version(warmup_waves + measured_waves - 1)
    window = runtime.sim.now - t0
    if window <= 0:
        raise ConfigurationError("empty netsim measurement window")
    shared_throughput = (
        (runtime.total_minibatches_done() - done0) * model.batch_size / window
    )
    assert runtime.fabric is not None
    runtime.fabric.verify(elapsed=runtime.sim.now)
    delay, depth = runtime.fabric.queue_stats()
    ps_delay, ps_depth = runtime.ps_queue_stats()
    rows = utilization_report(runtime.fabric, elapsed=runtime.sim.now)
    rows.sort(key=lambda r: (r[4], r[2]), reverse=True)  # queue delay, then util

    return NetsimResult(
        model_name=model_name,
        node_codes=node_codes,
        allocation=allocation,
        nm=nm,
        d=d,
        placement=placement,
        profile=profile,
        dedicated_throughput=dedicated.throughput,
        shared_throughput=shared_throughput,
        queue_delay_total=delay,
        max_queue_depth=depth,
        resources=tuple(rows),
        top=top,
        shards=shards,
        shard_placement=shard_placement,
        ps_queue_delay_total=ps_delay,
        ps_max_queue_depth=ps_depth,
    )
