"""Shared machinery for the convergence experiments (Figures 5 and 6).

Settings chosen so the synthetic task exhibits the paper's regime (see
EXPERIMENTS.md calibration notes): at ``lr = 0.01`` staleness costs a
few percent of minibatches while throughput differences dominate, and
heavy-tail stalls let workers drift so that ``D`` matters.  Runs are
averaged over several seeds because time-to-threshold is noisy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    EXPERIMENT_MODEL_DIMS,
    TARGET_ACCURACY,
    build_model,
    choose_nm,
    hetpipe_assignment_for_subset,
)
from repro.models.calibration import Calibration
from repro.training import (
    BSPTrainer,
    BSPTrainingConfig,
    WSPTrainer,
    WSPTrainingConfig,
    time_to_accuracy,
)
from repro.training.convergence import Curve
from repro.training.nn import make_classification
from repro.wsp import measure_hetpipe

#: Numeric-trainer settings shared by Fig. 5 and Fig. 6.
CONV_LR = 0.01
CONV_JITTER = 0.12
CONV_STALL_PROB = 0.005
CONV_SEEDS = (5, 6, 7)
CONV_MAX_MINIBATCHES = 25000
CONV_EVAL_EVERY = 300
CONV_SMOOTH_WINDOW = 7


@dataclass(frozen=True)
class ConvergenceRun:
    """Multi-seed summary of one configuration."""

    label: str
    throughput: float  # images/s from the performance layer
    mean_time_to_target: float
    mean_minibatches_to_target: float
    final_accuracy: float  # first seed
    curve: Curve  # first seed

    def speedup_vs(self, other: "ConvergenceRun") -> float:
        """Paper-style: 0.49 == 49% faster than ``other``."""
        return 1.0 - self.mean_time_to_target / other.mean_time_to_target


def _mean_seeded(label, throughput, target, make_trainer) -> ConvergenceRun:
    times, counts = [], []
    first_curve: Curve = []
    for seed in CONV_SEEDS:
        trainer = make_trainer(seed)
        curve = trainer.train(
            max_minibatches=CONV_MAX_MINIBATCHES, eval_every=CONV_EVAL_EVERY
        )
        t, n = time_to_accuracy(curve, target, window=CONV_SMOOTH_WINDOW)
        times.append(t)
        counts.append(n)
        if not first_curve:
            first_curve = curve
    return ConvergenceRun(
        label=label,
        throughput=throughput,
        mean_time_to_target=float(np.mean(times)),
        mean_minibatches_to_target=float(np.mean(counts)),
        final_accuracy=first_curve[-1][2],
        curve=first_curve,
    )


def horovod_run(label: str, num_workers: int, iteration_time: float, throughput: float, target: float) -> ConvergenceRun:
    """BSP numeric training at the Horovod performance model's pace."""
    dataset = make_classification()

    def make(seed: int) -> BSPTrainer:
        return BSPTrainer(
            BSPTrainingConfig(
                num_workers=num_workers,
                iteration_time=iteration_time,
                lr=CONV_LR,
                seed=seed,
            ),
            dataset,
            EXPERIMENT_MODEL_DIMS,
        )

    return _mean_seeded(label, throughput, target, make)


def hetpipe_run(
    label: str,
    model_name: str,
    subset: str,
    d: int,
    calibration: Calibration,
    placement: str = "local",
) -> ConvergenceRun:
    """Perf-sim a HetPipe deployment, then train numerically at its pace."""
    model = build_model(model_name)
    cluster, assignment = hetpipe_assignment_for_subset(subset)
    choice = choose_nm(model, assignment, cluster, calibration, placement=placement, d=d)
    perf = measure_hetpipe(
        cluster, model, choice.plans, d=d, placement=placement,
        calibration=calibration, measured_waves=8,
    )
    intervals = tuple(
        perf.window / done if done else float("inf") for done in perf.per_vw_minibatches
    )
    dataset = make_classification()

    def make(seed: int) -> WSPTrainer:
        return WSPTrainer(
            WSPTrainingConfig(
                num_virtual_workers=assignment.num_virtual_workers,
                nm=choice.nm,
                d=d,
                lr=CONV_LR,
                minibatch_interval=intervals,
                jitter=CONV_JITTER,
                stall_prob=CONV_STALL_PROB,
                seed=seed,
            ),
            dataset,
            EXPERIMENT_MODEL_DIMS,
        )

    return _mean_seeded(label, perf.throughput, TARGET_ACCURACY[model_name], make)
