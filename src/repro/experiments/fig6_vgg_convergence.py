"""Figure 6: VGG-19 top-1 accuracy vs time as ``D`` varies.

All 16 GPUs, ED-local.  Four curves: Horovod, HetPipe ``D = 0``
(BSP-like), ``D = 4`` and ``D = 32``.  The paper's findings reproduced
in shape:

* ``D = 0`` converges faster than Horovod (throughput; paper: 29%);
* ``D = 4`` converges faster still (paper: 49% over Horovod) because
  waiting for the global weights shrinks;
* ``D = 32`` stops helping throughput while staleness grows under
  heavy-tail stalls, degrading convergence slightly vs ``D = 4``
  (paper: 4.7%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import paper_cluster
from repro.experiments.common import TARGET_ACCURACY, build_model
from repro.experiments.convergence_common import ConvergenceRun, hetpipe_run, horovod_run
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.parallel import measure_horovod

PAPER_SPEEDUP_VS_HOROVOD = {"D=0": 0.29, "D=4": 0.49}


@dataclass(frozen=True)
class Fig6Result:
    model_name: str
    runs: dict[str, ConvergenceRun]

    def render(self) -> str:
        base = self.runs["Horovod"]
        rows = []
        for label, run in self.runs.items():
            speedup = "" if label == "Horovod" else f"{run.speedup_vs(base):.2f}"
            rows.append(
                (
                    label,
                    run.throughput,
                    run.mean_time_to_target,
                    run.mean_minibatches_to_target,
                    run.final_accuracy,
                    speedup,
                    PAPER_SPEEDUP_VS_HOROVOD.get(label, ""),
                )
            )
        return format_table(
            ["config", "img/s", "t2a (s)", "mb2a", "final acc", "speedup", "paper"],
            rows,
            title=(
                f"Figure 6 — {self.model_name} convergence vs D "
                f"(target {TARGET_ACCURACY[self.model_name]})"
            ),
        )


def run_fig6(
    model_name: str = "vgg19",
    calibration: Calibration = DEFAULT_CALIBRATION,
    d_values: tuple[int, ...] = (0, 4, 32),
) -> Fig6Result:
    """Horovod vs HetPipe at several global staleness bounds."""
    model = build_model(model_name)
    target = TARGET_ACCURACY[model_name]
    cluster = paper_cluster()

    horovod = measure_horovod(cluster, model, calibration)
    runs = {
        "Horovod": horovod_run(
            "Horovod", horovod.num_gpus, horovod.iteration_time,
            horovod.throughput, target,
        )
    }
    for d in d_values:
        runs[f"D={d}"] = hetpipe_run(
            f"D={d}", model_name, "VRQG", d=d, calibration=calibration
        )
    return Fig6Result(model_name=model_name, runs=runs)
