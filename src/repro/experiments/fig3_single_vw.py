"""Figure 3: single-virtual-worker throughput and GPU utilization vs Nm.

For each of the seven GPU mixes, partition the model (paper-faithful
natural order), run the pipeline alone at ``Nm = 1 .. min(Maxm, 7)`` and
record absolute throughput, throughput normalized to ``Nm = 1``, and the
maximum average per-stage GPU utilization — exactly the two panels the
paper plots.  The paper's annotated ``Nm = 1`` absolute numbers are
included for comparison.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.cluster import paper_cluster
from repro.errors import PartitionError
from repro.experiments.common import MAX_NM, PAPER_PLANNING, build_model, fig3_virtual_workers
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.profiler import Profiler
from repro.partition import max_feasible_nm, plan_virtual_worker
from repro.pipeline import measure_pipeline

logger = logging.getLogger(__name__)

#: The absolute Nm=1 throughputs annotated in Figure 3 (images/s).
PAPER_FIG3_NM1 = {
    "vgg19": {"VVVV": 119, "VRGQ": 60, "RRRR": 107, "VVQQ": 116, "GGGG": 62, "RRGG": 68, "QQQQ": 51},
    "resnet152": {"VVVV": 96, "VRGQ": 42, "RRRR": 87, "VVQQ": 53, "GGGG": 58, "RRGG": 58, "QQQQ": 43},
}


@dataclass(frozen=True)
class Fig3Row:
    """One (mix, Nm) measurement."""

    mix: str
    nm: int
    throughput: float
    normalized: float
    max_gpu_util: float
    peak_in_flight: tuple[int, ...]


@dataclass(frozen=True)
class Fig3Result:
    model_name: str
    rows: list[Fig3Row]
    paper_nm1: dict[str, int]

    def nm1_throughput(self, mix: str) -> float:
        for row in self.rows:
            if row.mix == mix and row.nm == 1:
                return row.throughput
        raise KeyError(mix)

    def render(self) -> str:
        lines = [
            format_table(
                ["mix", "Nm", "img/s", "norm", "max util", "paper Nm=1"],
                [
                    (
                        row.mix,
                        row.nm,
                        row.throughput,
                        row.normalized,
                        row.max_gpu_util,
                        self.paper_nm1[row.mix] if row.nm == 1 else "",
                    )
                    for row in self.rows
                ],
                title=f"Figure 3 — {self.model_name}: single virtual worker vs Nm",
            )
        ]
        return "\n".join(lines)


def _mix_rows(
    args: tuple[str, str, Calibration, int, int],
) -> list[Fig3Row]:
    """All rows of one GPU mix (the per-worker sweep item).

    Module-level and argument-pure so :func:`repro.exec.sweep_map` can
    fan mixes out across worker processes; every measurement is a
    deterministic simulation, so the rows are identical wherever they
    run.
    """
    model_name, mix, calibration, max_nm, measured_minibatches = args
    model = build_model(model_name)
    cluster = paper_cluster()
    profiler = Profiler(calibration)
    gpus = fig3_virtual_workers(cluster)[mix]
    cap = max_feasible_nm(
        model, gpus, cluster.interconnect, calibration, profiler, limit=max_nm
    )
    rows: list[Fig3Row] = []
    base = None
    for nm in range(1, cap + 1):
        try:
            plan = plan_virtual_worker(
                model, gpus, nm, cluster.interconnect, calibration, profiler,
                **PAPER_PLANNING,
            )
        except PartitionError:
            break
        metrics = measure_pipeline(
            plan, cluster.interconnect, model.batch_size,
            measured_minibatches=measured_minibatches,
        )
        if base is None:
            base = metrics.throughput
        rows.append(
            Fig3Row(
                mix=mix,
                nm=nm,
                throughput=metrics.throughput,
                normalized=metrics.throughput / base,
                max_gpu_util=metrics.max_utilization,
                peak_in_flight=metrics.peak_in_flight,
            )
        )
    return rows


def run_fig3(
    model_name: str,
    calibration: Calibration = DEFAULT_CALIBRATION,
    max_nm: int = MAX_NM,
    measured_minibatches: int = 40,
    jobs: int | None = 1,
) -> Fig3Result:
    """Measure all seven mixes across the feasible Nm range.

    ``jobs`` distributes the mixes across worker processes (see
    :mod:`repro.exec`); the rows come back in paper order either way.
    """
    from repro.exec import sweep_map

    mixes = list(fig3_virtual_workers(paper_cluster()))
    logger.info("fig3: %s over %d mixes (jobs=%s)", model_name, len(mixes), jobs)
    per_mix = sweep_map(
        _mix_rows,
        [(model_name, mix, calibration, max_nm, measured_minibatches) for mix in mixes],
        jobs=jobs,
    )
    rows = [row for mix_rows in per_mix for row in mix_rows]
    return Fig3Result(model_name=model_name, rows=rows, paper_nm1=PAPER_FIG3_NM1[model_name])
