"""Figure 5: ResNet-152 top-1 accuracy vs time.

Three configurations at ``D = 0``:

* Horovod on 12 GPUs (ResNet-152 does not fit the four RTX 2060s),
* HetPipe on the same 12 GPUs (ED-local over V/R/Q),
* HetPipe on all 16 GPUs (ED-local over V/R/Q/G — the whimpy GPUs that
  Horovod cannot use at all contribute).

Per-minibatch virtual-time intervals come from the performance
simulator; the accuracy curves come from real SGD under the respective
synchronization semantics, averaged over seeds.  The paper's headline:
HetPipe-12 converges 35% faster than Horovod, HetPipe-16 39% faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import TARGET_ACCURACY, build_model, hetpipe_assignment_for_subset
from repro.experiments.convergence_common import ConvergenceRun, hetpipe_run, horovod_run
from repro.experiments.report import format_table
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.parallel import measure_horovod

PAPER_SPEEDUPS = {"HetPipe-12": 0.35, "HetPipe-16": 0.39}


@dataclass(frozen=True)
class Fig5Result:
    model_name: str
    runs: dict[str, ConvergenceRun]

    def render(self) -> str:
        base = self.runs["Horovod-12"]
        rows = []
        for label, run in self.runs.items():
            speedup = "" if label == "Horovod-12" else f"{run.speedup_vs(base):.2f}"
            rows.append(
                (
                    label,
                    run.throughput,
                    run.mean_time_to_target,
                    run.mean_minibatches_to_target,
                    run.final_accuracy,
                    speedup,
                    PAPER_SPEEDUPS.get(label, ""),
                )
            )
        return format_table(
            ["config", "img/s", "t2a (s)", "mb2a", "final acc", "speedup", "paper"],
            rows,
            title=(
                f"Figure 5 — {self.model_name} convergence "
                f"(target {TARGET_ACCURACY[self.model_name]})"
            ),
        )


def run_fig5(
    model_name: str = "resnet152",
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> Fig5Result:
    """Horovod-12 vs HetPipe-12 vs HetPipe-16 accuracy-over-time."""
    model = build_model(model_name)
    target = TARGET_ACCURACY[model_name]

    cluster12, _ = hetpipe_assignment_for_subset("VRQ")
    horovod = measure_horovod(cluster12, model, calibration)
    runs = {
        "Horovod-12": horovod_run(
            "Horovod-12", horovod.num_gpus, horovod.iteration_time,
            horovod.throughput, target,
        )
    }
    for subset, label in (("VRQ", "HetPipe-12"), ("VRQG", "HetPipe-16")):
        runs[label] = hetpipe_run(label, model_name, subset, d=0, calibration=calibration)
    return Fig5Result(model_name=model_name, runs=runs)
