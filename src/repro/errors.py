"""Exception hierarchy for the HetPipe reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the common failure modes:

* :class:`ConfigurationError` — an experiment or cluster description is
  internally inconsistent (e.g. a virtual worker with zero GPUs).
* :class:`PartitionError` — the partitioner could not produce a feasible
  plan (most commonly: the model does not fit in the aggregate GPU memory
  of a virtual worker for the requested number of in-flight minibatches).
* :class:`SimulationError` — the discrete-event simulator detected an
  impossible state (negative delays, events after the horizon, deadlock).
* :class:`StalenessViolation` — the WSP runtime observed a weight version
  that violates the local or global staleness bound.  This is always a bug
  in the caller or in this library, never a recoverable condition.
* :class:`MemoryCapacityError` — a device was asked to hold more bytes
  than its capacity; raised by the memory accountant and by baselines
  (e.g. Horovod on a GPU that cannot hold the full model).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An experiment, cluster, or model description is inconsistent."""


class PartitionError(ReproError):
    """No feasible partition exists for the requested constraints."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an impossible state."""


class StalenessViolation(ReproError):
    """A WSP staleness bound (local or global) was violated."""


class InvariantViolation(ReproError):
    """A runtime invariant oracle observed an impossible execution.

    Raised by :mod:`repro.sim.invariants` the moment a run breaks one of
    the paper's correctness properties (staleness admission, scheduling
    order, clock monotonicity, conservation).  Like
    :class:`StalenessViolation` this always indicates a bug, never a
    recoverable condition; the fuzz harness treats it as a finding."""


class MemoryCapacityError(ReproError):
    """A device was asked to hold more bytes than its capacity."""


class SpecError(ConfigurationError):
    """A declarative run spec (:mod:`repro.api.spec`) is malformed.

    Raised while parsing/validating ``RunSpec`` JSON: unknown keys,
    ill-typed values, missing required sections, or invalid sweep axis
    paths.  The message always names the offending field path and, where
    a closed set exists, the accepted values.  The CLI maps this (and
    :class:`UnknownNameError`) to exit code 2."""


class UnknownNameError(ConfigurationError):
    """A registry lookup (:mod:`repro.api.registry`) missed.

    Carries the registry kind, the requested name, and the sorted list
    of available names, so callers — the CLI in particular — can print
    an actionable message instead of a raw ``KeyError`` traceback."""

    def __init__(self, kind: str, name: str, available: "list[str]") -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown {kind} {name!r}; available: {', '.join(self.available) or '(none)'}"
        )


class WorkerCrashError(ReproError):
    """A sweep worker process died and its work could not be recovered.

    Raised by :func:`repro.exec.sweep_map` after a worker process exits
    abnormally (segfault, OOM kill, ``os._exit``) *and* the serial
    retry of its stripe also dies.  Carries the index of the first item
    whose retry failed so the caller can name the poisoned work item."""

    def __init__(self, item_index: int, detail: str) -> None:
        self.item_index = item_index
        super().__init__(
            f"worker crashed on item {item_index} and the serial retry "
            f"died too: {detail}"
        )


class ConvergenceError(ReproError):
    """A training run failed to reach its target accuracy in budget."""
