"""Exception hierarchy for the HetPipe reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the common failure modes:

* :class:`ConfigurationError` — an experiment or cluster description is
  internally inconsistent (e.g. a virtual worker with zero GPUs).
* :class:`PartitionError` — the partitioner could not produce a feasible
  plan (most commonly: the model does not fit in the aggregate GPU memory
  of a virtual worker for the requested number of in-flight minibatches).
* :class:`SimulationError` — the discrete-event simulator detected an
  impossible state (negative delays, events after the horizon, deadlock).
* :class:`StalenessViolation` — the WSP runtime observed a weight version
  that violates the local or global staleness bound.  This is always a bug
  in the caller or in this library, never a recoverable condition.
* :class:`MemoryCapacityError` — a device was asked to hold more bytes
  than its capacity; raised by the memory accountant and by baselines
  (e.g. Horovod on a GPU that cannot hold the full model).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An experiment, cluster, or model description is inconsistent."""


class PartitionError(ReproError):
    """No feasible partition exists for the requested constraints."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an impossible state."""


class StalenessViolation(ReproError):
    """A WSP staleness bound (local or global) was violated."""


class InvariantViolation(ReproError):
    """A runtime invariant oracle observed an impossible execution.

    Raised by :mod:`repro.sim.invariants` the moment a run breaks one of
    the paper's correctness properties (staleness admission, scheduling
    order, clock monotonicity, conservation).  Like
    :class:`StalenessViolation` this always indicates a bug, never a
    recoverable condition; the fuzz harness treats it as a finding."""


class MemoryCapacityError(ReproError):
    """A device was asked to hold more bytes than its capacity."""


class SpecError(ConfigurationError):
    """A declarative run spec (:mod:`repro.api.spec`) is malformed.

    Raised while parsing/validating ``RunSpec`` JSON: unknown keys,
    ill-typed values, missing required sections, or invalid sweep axis
    paths.  The message always names the offending field path and, where
    a closed set exists, the accepted values.  The CLI maps this (and
    :class:`UnknownNameError`) to exit code 2."""


class UnknownNameError(ConfigurationError):
    """A registry lookup (:mod:`repro.api.registry`) missed.

    Carries the registry kind, the requested name, and the sorted list
    of available names, so callers — the CLI in particular — can print
    an actionable message instead of a raw ``KeyError`` traceback."""

    def __init__(self, kind: str, name: str, available: "list[str]") -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown {kind} {name!r}; available: {', '.join(self.available) or '(none)'}"
        )


class StoreCorruptionError(ReproError):
    """A result-store entry failed read-time integrity verification.

    Raised by :mod:`repro.store` when an entry under ``objects/`` is
    truncated, is not valid JSON, carries an unknown schema tag, or its
    embedded sha256 checksum does not match its content.  The normal
    sweep path never surfaces this error: :meth:`ResultStore.fetch`
    quarantines the damaged file (moved to ``quarantine/``) and returns
    a miss so the point is recomputed.  It escapes only from the strict
    surfaces (``ResultStore.load``, ``repro store verify``), and the CLI
    maps it to exit code 2 — consistent with :class:`UnknownNameError` —
    naming the offending entry."""

    def __init__(self, path: str, detail: str) -> None:
        self.path = path
        self.detail = detail
        super().__init__(
            f"result store entry {path!r} is corrupted ({detail}); "
            f"quarantine it with `repro store quarantine` (or rerun the "
            f"sweep with --resume, which quarantines and recomputes it)"
        )


class ItemTimeoutError(ReproError):
    """A sweep item exceeded its per-item wall-clock watchdog.

    Raised by :func:`repro.exec.sweep_map` when one work item runs past
    ``timeout`` seconds in its worker *and* on every bounded isolated
    retry — a single pathological spec must be able to hang neither a
    worker nor the whole sweep.  Carries the item's original index so
    the caller can name it; points already completed (and, under
    ``repro sweep --store``, already persisted) are not lost.  The CLI
    maps this to exit code 2 — consistent with
    :class:`UnknownNameError`."""

    def __init__(self, item_index: int, timeout: float, attempts: int) -> None:
        self.item_index = item_index
        self.timeout = timeout
        self.attempts = attempts
        super().__init__(
            f"sweep item {item_index} exceeded its {timeout:g}s watchdog on "
            f"all {attempts} isolated attempt(s); the item looks "
            f"pathological — raise --timeout, drop the point from the grid, "
            f"or resume with --store/--resume to keep the finished points"
        )


class WorkerCrashError(ReproError):
    """A sweep worker process died and its work could not be recovered.

    Raised by :func:`repro.exec.sweep_map` after a worker process exits
    abnormally (segfault, OOM kill, ``os._exit``) *and* the serial
    retry of its stripe also dies.  Carries the index of the first item
    whose retry failed so the caller can name the poisoned work item."""

    def __init__(self, item_index: int, detail: str) -> None:
        self.item_index = item_index
        super().__init__(
            f"worker crashed on item {item_index} and the serial retry "
            f"died too: {detail}"
        )


class ConvergenceError(ReproError):
    """A training run failed to reach its target accuracy in budget."""
