"""Command-line interface: ``hetpipe <experiment> [--model ...]``.

Each subcommand regenerates one paper table/figure on the simulated
testbed and prints it side by side with the paper's numbers.  The
``fuzz`` subcommand instead drives the scenario fuzzing harness: seeded
random configurations through the full runtime under invariant oracles
(see :mod:`repro.scenarios`), optionally on the contention-aware shared
network (``--network shared``).  ``netsim`` reports per-resource network
utilization and the top congested links of one deployment under the
shared fabric (see :mod:`repro.netsim`).  ``bench`` times the hot paths
(fuzz throughput, engine micro-ops, plan cache, experiments) and writes
``BENCH_sweep.json`` — the tracked perf baseline (see
:mod:`repro.exec.bench`).

``run`` and ``sweep`` are the declarative entries (see
:mod:`repro.api`): ``repro run spec.json`` executes one typed
:class:`~repro.api.spec.RunSpec` — a figure regeneration or a single
oracle-checked scenario — and ``repro sweep grid.json`` expands a
spec's sweep section into its cartesian grid and runs every point,
tagged with its ``spec_hash``.  Checked-in spec files live under
``examples/specs/``.

Multi-scenario commands accept ``--jobs N`` and fan their independent
work items across worker processes through :mod:`repro.exec`; output is
bit-identical to a serial run.  Experiment modules import lazily, per
subcommand: ``repro fuzz`` / ``repro bench`` startup is itself part of
the tracked benchmark, so it must not pay for NumPy and the numeric
trainers it never uses.

Exit codes are uniform: 0 success, 1 findings (fuzz violations, failing
sweep points, perf regressions), 2 bad configuration — malformed specs
(:class:`~repro.errors.SpecError`) and unknown registry names
(:class:`~repro.errors.UnknownNameError`, which lists what exists)
print one actionable line to stderr instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.catalog import DEFAULT_PROFILE, INTERCONNECT_PROFILES


def _positive_int(value: str) -> int:
    """argparse type: an int >= 1 (a zero-seed fuzz gate passes vacuously)."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    """argparse type: a float > 0 (watchdog timeouts)."""
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {parsed}")
    return parsed


def _add_model_arg(parser: argparse.ArgumentParser, default: str = "vgg19") -> None:
    parser.add_argument(
        "--model", choices=["vgg19", "resnet152"], default=default,
        help="workload to measure",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser, default: int | None = 1) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=default, metavar="N",
        help="worker processes for the sweep (default: %(default)s; "
        "results are bit-identical to --jobs 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hetpipe",
        description="HetPipe (ATC'20) reproduction: regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        default="warning",
        help="stdlib logging threshold for the repro.* loggers "
        "(default: warning, which keeps historical output unchanged)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig3", help="single-VW throughput/utilization vs Nm")
    _add_model_arg(p)
    _add_jobs_arg(p)
    p = sub.add_parser("fig4", help="multi-VW throughput per allocation policy")
    _add_model_arg(p)
    _add_jobs_arg(p)
    p = sub.add_parser("table4", help="throughput while adding whimpy GPUs")
    _add_model_arg(p)
    _add_jobs_arg(p)
    p = sub.add_parser("fig5", help="ResNet-152 convergence (12 vs 16 GPUs)")
    p.add_argument("--curves", action="store_true", help="print ASCII accuracy curves")
    p = sub.add_parser("fig6", help="VGG-19 convergence vs D")
    p.add_argument("--curves", action="store_true", help="print ASCII accuracy curves")
    p = sub.add_parser("sync", help="§8.4 waiting/idle time vs D")
    _add_model_arg(p)
    p = sub.add_parser("ablations", help="design-choice ablations")
    _add_model_arg(p, default="resnet152")
    p = sub.add_parser(
        "fuzz", help="seeded scenario fuzzing under runtime invariant oracles"
    )
    p.add_argument(
        "--seeds", type=_positive_int, default=25, metavar="N",
        help="number of consecutive seeds to run (default: 25)",
    )
    p.add_argument(
        "--base-seed", type=int, default=0, metavar="S",
        help="first seed of the batch (default: 0)",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print one line per scenario, not just the summary",
    )
    p.add_argument(
        "--network", choices=["dedicated", "shared"], default="dedicated",
        help="network model: historical private links, or the shared "
        "contention-aware fabric with its extra oracles (default: dedicated)",
    )
    p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes (default: one per CPU; per-seed digests "
        "are bit-identical to --jobs 1)",
    )
    p.add_argument(
        "--fidelity", choices=["full", "fast_forward"], default="full",
        help="full: bit-identical replay digests (hetpipe-trace/1); "
        "fast_forward: coalesce confirmed steady-state cycles under the "
        "semantic-equivalence contract (hetpipe-trace/2 digests; every "
        "scenario that coalesced also runs its full-fidelity twin and "
        "any contract deviation is a violation) (default: full)",
    )
    p.add_argument(
        "--no-verify-equivalence", dest="verify_equivalence",
        action="store_false", default=None,
        help="under --fidelity fast_forward, skip the full-fidelity twin "
        "runs (pure speed; the contract is then only spot-checked by CI)",
    )
    p.add_argument(
        "--waves-scale", type=_positive_int, default=1, metavar="K",
        help="multiply every scenario's measured window by K (long-"
        "horizon fuzzing; K>1 changes digests at either fidelity) "
        "(default: 1)",
    )
    p.add_argument(
        "--shards", type=_positive_int, default=1, metavar="K",
        help="PS shard slots per stage (K>1 reruns the same seeded "
        "scenarios with a K-way sharded PS and changes digests; the "
        "default 1 keeps them frozen)",
    )
    p.add_argument(
        "--shard-placement",
        choices=["size_balanced", "locality_aware", "contention_aware"],
        default="size_balanced",
        help="shard placement policy used when --shards > 1 "
        "(default: size_balanced)",
    )
    p.add_argument(
        "--variant", default="vw_hetpipe", metavar="NAME",
        help="pipeline variant to re-run the seeded scenarios under "
        "(resolved through the VARIANTS registry: vw_hetpipe, "
        "gpipe_flush, pipedream, pipedream_2bw, xpipe; unknown names "
        "exit 2 listing what exists; the default vw_hetpipe keeps the "
        "frozen digests)",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="draw a seeded fault schedule per scenario (stragglers, "
        "crash/rejoin, link degradation, PS failures) and check the "
        "graceful-degradation oracles instead of the fault-free timing "
        "envelopes; the scenario draw is unchanged, but digests differ "
        "from the frozen fault-free corpus",
    )
    p.add_argument(
        "--bundle-dir", default=None, metavar="DIR",
        help="on any oracle violation, re-run the failing seed with "
        "diagnostics capture and write one reproducible bundle directory "
        "per failure under DIR (spec.json + trace ring + oracle state + "
        "queue snapshots; replay with `repro run <bundle>/spec.json`)",
    )
    p = sub.add_parser(
        "bench",
        help="time the hot paths (fuzz throughput, engine/trace micro-ops, "
        "plan cache, experiments) and write the BENCH_sweep.json baseline",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="CI-smoke sizes (25 seeds, smaller micro-benchmarks, fig3 only)",
    )
    p.add_argument(
        "--seeds", type=_positive_int, default=None, metavar="N",
        help="override the fuzz seed count",
    )
    p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker processes for the parallel fuzz measurement "
        "(default: one per CPU)",
    )
    p.add_argument(
        "--out", default="", metavar="PATH",
        help="write the JSON payload here (default: print only; pass "
        "BENCH_sweep.json explicitly to refresh the committed baseline)",
    )
    p.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare fuzz throughput against a committed baseline JSON "
        "and exit 1 on regression",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional throughput regression for --check "
        "(default: 0.30)",
    )
    p.add_argument(
        "--no-experiments", action="store_true",
        help="skip the end-to-end figure timings",
    )
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="also append this run's payload to a result store as an "
        "accumulating bench history record (keyed by the payload's "
        "content hash; inspect with `repro store ls DIR`)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run the suite under cProfile, print the human top-25 to "
        "stdout, and write the structured hetpipe-profile/1 JSON next to "
        "the --out path (BENCH_profile.json) so profiles are diffable "
        "across PRs",
    )
    p = sub.add_parser(
        "netsim",
        help="per-resource network utilization and top congested links "
        "under the shared contention-aware fabric",
    )
    _add_model_arg(p)
    p.add_argument(
        "--nodes", default="VRGQ", metavar="CODES",
        help="node GPU codes, one letter per node (default: VRGQ)",
    )
    p.add_argument(
        "--alloc", choices=["NP", "ED", "HD"], default="ED",
        help="virtual-worker allocation policy (default: ED)",
    )
    p.add_argument("--d", type=int, default=0, help="global staleness bound D")
    p.add_argument(
        "--nm", type=_positive_int, default=None,
        help="pipeline depth Nm (default: analytic best)",
    )
    p.add_argument(
        "--placement", default="default", metavar="POLICY",
        help="parameter placement policy (resolved through the "
        "PLACEMENTS registry: default, local; unknown names exit 2 "
        "listing what exists)",
    )
    p.add_argument(
        "--shards", type=_positive_int, default=1, metavar="K",
        help="PS shard slots per stage (default: 1, unsharded)",
    )
    p.add_argument(
        "--shard-placement",
        choices=["size_balanced", "locality_aware", "contention_aware"],
        default="size_balanced",
        help="shard placement policy used when --shards > 1 "
        "(default: size_balanced)",
    )
    p.add_argument(
        "--profile", choices=sorted(INTERCONNECT_PROFILES), default=DEFAULT_PROFILE,
        help="link calibration profile (default: %(default)s)",
    )
    p.add_argument(
        "--top", type=_positive_int, default=8,
        help="how many congested resources to list (default: 8)",
    )
    p = sub.add_parser(
        "run",
        help="execute one declarative RunSpec JSON file (see examples/specs/)",
    )
    p.add_argument("spec", metavar="SPEC.json", help="path to a RunSpec file")
    p.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for experiment-kind specs (a scenario "
        "spec is one deterministic simulation and always runs serially)",
    )
    p = sub.add_parser(
        "trace",
        help="run one RunSpec instrumented and export a Chrome-trace/"
        "Perfetto timeline JSON (one track per GPU/processor/channel/"
        "fabric resource; open at ui.perfetto.dev)",
    )
    p.add_argument("spec", metavar="SPEC.json", help="path to a scenario RunSpec file")
    p.add_argument(
        "--out", default="run.trace.json", metavar="PATH",
        help="timeline output path (default: %(default)s)",
    )
    p = sub.add_parser(
        "sweep",
        help="expand a RunSpec's sweep grid and run every point "
        "(in-order results, per-point spec_hash)",
    )
    p.add_argument("spec", metavar="GRID.json", help="path to a RunSpec file with a sweep section")
    p.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the grid (default: 1; results are "
        "bit-identical to --jobs 1)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-point progress lines (summary only)",
    )
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="commit every completed point to a crash-safe result store "
        "the moment it finishes (a SIGKILL mid-grid loses at most the "
        "in-flight points)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip points whose verified entry already exists in --store "
        "(corrupted entries are quarantined and recomputed); merged "
        "output is bit-identical to an uninterrupted run",
    )
    p.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECS",
        help="per-point wall-clock watchdog: a point that hangs past "
        "SECS is killed and retried in isolation; one that never "
        "finishes exits 2 naming its index (finished points are already "
        "safe in --store)",
    )
    p = sub.add_parser(
        "store",
        help="inspect and maintain a result store directory "
        "(see `repro sweep --store`)",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser(
        "ls", help="list the store's entries (key, kind, summary)"
    )
    p.add_argument("dir", metavar="DIR", help="store directory")
    p.add_argument(
        "--where", action="append", default=None, metavar="FIELD=VALUE",
        help="only list entries whose record spec matches, e.g. "
        "--where pipeline.variant=pipedream (dotted path into the "
        "entry's spec dict; repeatable — clauses AND together; values "
        "compare as strings, so booleans are true/false and numbers "
        "their literal form)",
    )
    p = store_sub.add_parser(
        "verify",
        help="check every entry against its embedded checksum; exits 1 "
        "listing the defects if any entry is corrupt (read-only: "
        "nothing is quarantined)",
    )
    p.add_argument("dir", metavar="DIR", help="store directory")
    p = store_sub.add_parser(
        "gc",
        help="drop leftover temp files, purge quarantined entries, and "
        "prune manifest rows whose object is gone",
    )
    p.add_argument("dir", metavar="DIR", help="store directory")
    p = store_sub.add_parser(
        "quarantine",
        help="move one entry out of the store by key (it will be "
        "recomputed by the next resumed sweep)",
    )
    p.add_argument("dir", metavar="DIR", help="store directory")
    p.add_argument("key", metavar="KEY", help="entry key (a spec_hash)")
    p = sub.add_parser("all", help="run every experiment (slow)")
    _add_jobs_arg(p)
    return parser


def _parse_where(raw: str) -> tuple[list[str], str]:
    """Split one ``--where dotted.field=value`` clause; malformed exits 2."""
    from repro.errors import SpecError

    field, sep, value = raw.partition("=")
    if not sep or not field:
        raise SpecError(
            f"--where wants FIELD=VALUE (a dotted path into the record's "
            f"spec, e.g. pipeline.variant=pipedream), got {raw!r}"
        )
    return field.split("."), value


def _entry_matches(store, key: str, clauses) -> bool:
    """True when the verified record's spec satisfies every clause.

    The walk is forgiving — a record without a spec, or a path that
    dead-ends, simply doesn't match (filters narrow; they never error on
    heterogeneous stores).  Values compare as strings so booleans and
    numbers filter by their JSON literal form.
    """
    record = store.load(key)
    if record is None or record.spec is None:
        return False
    for path, expected in clauses:
        node = record.spec
        for part in path:
            if not isinstance(node, dict) or part not in node:
                return False
            node = node[part]
        actual = "true" if node is True else "false" if node is False else str(node)
        if actual != expected:
            return False
    return True


def _dispatch_store(args) -> int:
    """``repro store {ls,verify,gc,quarantine}``: store maintenance.

    ``verify`` follows the findings convention (exit 1 listing the
    defects, nothing modified); ``quarantine`` of a missing key is a
    configuration error (exit 2 upstream).
    """
    import os

    from repro.errors import ConfigurationError
    from repro.store import ResultStore

    if not os.path.isdir(args.dir):
        raise ConfigurationError(
            f"{args.dir!r} is not a directory; pass the --store DIR a "
            f"sweep wrote (it contains objects/ and manifest.json)"
        )
    store = ResultStore(args.dir)
    if args.store_command == "ls":
        entries = store.entries()
        if getattr(args, "where", None):
            clauses = [_parse_where(raw) for raw in args.where]
            entries = [
                entry for entry in entries
                if _entry_matches(store, entry["key"], clauses)
            ]
        for entry in entries:
            summary = entry.get("summary") or ""
            print(f"{entry['key'][:12]}  {entry.get('kind', '?'):>10}  {summary}")
        print(f"store: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} in {args.dir}")
        return 0
    if args.store_command == "verify":
        defects = store.verify()
        for key, detail in defects:
            print(f"CORRUPT {key[:12]}: {detail}")
        print(
            f"store: {len(store)} entr{'y' if len(store) == 1 else 'ies'} "
            f"checked, {len(defects)} corrupt"
        )
        return 1 if defects else 0
    if args.store_command == "gc":
        counts = store.gc()
        print(
            f"store: dropped {counts['tmp']} temp file(s), purged "
            f"{counts['quarantined']} quarantined entr"
            f"{'y' if counts['quarantined'] == 1 else 'ies'}, pruned "
            f"{counts['manifest']} stale manifest row(s)"
        )
        return 0
    assert args.store_command == "quarantine"
    moved = store.quarantine(args.key)
    if moved is None:
        raise ConfigurationError(
            f"no entry {args.key!r} in {args.dir}; `repro store ls` lists "
            f"the keys that exist"
        )
    print(f"quarantined {args.key[:12]} -> {moved}")
    return 0


def _load_spec(path: str):
    """Parse a RunSpec file; misses and malformations exit 2 upstream."""
    from repro.api.spec import RunSpec
    from repro.errors import SpecError

    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from None
    return RunSpec.from_json(text)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    import logging

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    from repro.errors import (
        ConfigurationError,
        ItemTimeoutError,
        PartitionError,
        StoreCorruptionError,
    )

    try:
        return _dispatch(args)
    except (
        ConfigurationError,
        PartitionError,
        StoreCorruptionError,
        ItemTimeoutError,
    ) as exc:
        # Typed configuration errors — malformed specs (SpecError),
        # unknown registry names (UnknownNameError, which lists the
        # available entries), inconsistent clusters, infeasible
        # deployments, corrupted store entries (StoreCorruptionError
        # names the file), hung sweep items (ItemTimeoutError names the
        # point): one actionable line, exit code 2 — never a raw
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    # Every experiment import happens inside its branch: `repro fuzz` and
    # `repro bench` must start without touching NumPy or the experiment
    # harnesses (their startup is part of the tracked benchmark).
    if args.command == "fig3":
        from repro.experiments import run_fig3

        print(run_fig3(args.model, jobs=args.jobs).render())
    elif args.command == "fig4":
        from repro.experiments import run_fig4

        print(run_fig4(args.model, jobs=args.jobs).render())
    elif args.command == "table4":
        from repro.experiments import run_table4

        print(run_table4(args.model, jobs=args.jobs).render())
    elif args.command == "fig5":
        from repro.experiments import run_fig5
        from repro.experiments.report import ascii_curve

        result = run_fig5()
        print(result.render())
        if args.curves:
            for label, run in result.runs.items():
                print(ascii_curve([(t, a) for t, _, a in run.curve], label=label))
    elif args.command == "fig6":
        from repro.experiments import run_fig6
        from repro.experiments.report import ascii_curve

        result = run_fig6()
        print(result.render())
        if args.curves:
            for label, run in result.runs.items():
                print(ascii_curve([(t, a) for t, _, a in run.curve], label=label))
    elif args.command == "sync":
        from repro.experiments import run_sync_overhead

        print(run_sync_overhead(args.model).render())
    elif args.command == "ablations":
        from repro.experiments import run_ablations

        print(run_ablations(args.model).render())
    elif args.command == "fuzz":
        from repro.scenarios import run_fuzz

        report = run_fuzz(
            range(args.base_seed, args.base_seed + args.seeds),
            verbose_log=print if args.verbose else None,
            network_model=args.network,
            jobs=args.jobs,
            fidelity=args.fidelity,
            verify_equivalence=args.verify_equivalence,
            waves_scale=args.waves_scale,
            shards=args.shards,
            shard_placement=args.shard_placement,
            bundle_dir=args.bundle_dir,
            faults=args.faults,
            variant=args.variant,
        )
        print(report.summary())
        return 1 if report.failures else 0
    elif args.command == "bench":
        from repro.exec.bench import main_bench

        return main_bench(args)
    elif args.command == "netsim":
        from repro.experiments.netsim_report import run_netsim

        print(
            run_netsim(
                model_name=args.model,
                node_codes=args.nodes,
                allocation=args.alloc,
                d=args.d,
                nm=args.nm,
                placement=args.placement,
                shards=args.shards,
                shard_placement=args.shard_placement,
                profile=args.profile,
                top=args.top,
            ).render()
        )
    elif args.command == "run":
        from repro.api.run import run

        spec = _load_spec(args.spec)
        result = run(spec, jobs=args.jobs)
        if spec.kind == "experiment":
            print(result.render())
            return 0
        print(result.describe())
        if result.violations:
            for violation in result.violations:
                print(f"  - {violation}")
            return 1
        return 0
    elif args.command == "trace":
        import json

        from repro.errors import SpecError
        from repro.obs.timeline import trace_run

        spec = _load_spec(args.spec)
        if spec.kind != "scenario" or spec.sweep is not None:
            raise SpecError(
                "`repro trace` instruments a single scenario run; "
                f"got kind={spec.kind!r}"
                + (" with a sweep section (use `repro sweep`)" if spec.sweep else "")
            )
        payload = trace_run(spec)
        with open(args.out, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        meta = payload["otherData"]
        print(
            f"trace: {len(payload['traceEvents'])} events "
            f"({meta['spans']} spans, {meta['annotations']} annotations, "
            f"{meta['samples']} samples) -> {args.out}"
        )
        print("open in chrome://tracing or https://ui.perfetto.dev")
    elif args.command == "sweep":
        from repro.api.run import run_sweep

        spec = _load_spec(args.spec)
        store = None
        if args.store is not None:
            from repro.store import ResultStore

            store = ResultStore(args.store)
        elif args.resume:
            from repro.errors import SpecError

            raise SpecError("--resume needs --store DIR (nowhere to resume from)")
        on_result = None if args.quiet else (lambda point: print(point.describe()))
        result = run_sweep(
            spec,
            jobs=args.jobs,
            on_result=on_result,
            store=store,
            resume=args.resume,
            timeout=args.timeout,
        )
        print(result.summary_line())
        if args.quiet:  # the per-point lines were suppressed above
            for point in result.failures:
                print(point.describe())
        for line in result.failure_lines():
            print(line)
        return 1 if result.failures else 0
    elif args.command == "store":
        return _dispatch_store(args)
    elif args.command == "all":
        from repro.experiments import (
            run_ablations,
            run_fig3,
            run_fig4,
            run_fig5,
            run_fig6,
            run_sync_overhead,
            run_table4,
        )

        for model in ("vgg19", "resnet152"):
            print(run_fig3(model, jobs=args.jobs).render())
            print()
            print(run_fig4(model, jobs=args.jobs).render())
            print()
            print(run_table4(model, jobs=args.jobs).render())
            print()
        print(run_fig5().render())
        print()
        print(run_fig6().render())
        print()
        print(run_sync_overhead().render())
        print()
        print(run_ablations().render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
