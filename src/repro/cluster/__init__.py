"""Heterogeneous GPU cluster substrate.

Static description of the hardware the paper evaluates on (Table 1 and
§8.1): GPU device specs, nodes of four homogeneous GPUs, and the
interconnects (PCIe 3.0 x16 within a node, 56 Gb/s InfiniBand between
nodes).  The description is pure data — the pipeline/WSP runtimes turn it
into simulated :class:`~repro.sim.resources.Channel` objects.
"""

from repro.cluster.gpu import GPUDevice, GPUSpec
from repro.cluster.node import Node
from repro.cluster.topology import Cluster, InterconnectSpec
from repro.cluster.catalog import (
    DEFAULT_PROFILE,
    GPU_BY_CODE,
    INTERCONNECT_PROFILES,
    QUADRO_P4000,
    RTX_2060,
    TITAN_RTX,
    TITAN_V,
    interconnect_profile,
    paper_cluster,
    paper_interconnect,
    single_type_cluster,
)

__all__ = [
    "Cluster",
    "DEFAULT_PROFILE",
    "GPUDevice",
    "GPUSpec",
    "GPU_BY_CODE",
    "INTERCONNECT_PROFILES",
    "InterconnectSpec",
    "Node",
    "interconnect_profile",
    "QUADRO_P4000",
    "RTX_2060",
    "TITAN_RTX",
    "TITAN_V",
    "paper_cluster",
    "paper_interconnect",
    "single_type_cluster",
]
