"""Cluster topology: nodes + interconnect parameters.

The :class:`Cluster` assigns cluster-unique GPU ids, answers locality
queries (same node or not) and exposes the effective point-to-point link
parameters the profiler and runtimes use.  Effective bandwidths follow §7
of the paper: PCIe peak is multiplied by a Paleo-style scaling-down
constant, and inter-node (InfiniBand) transfers use a latency + size/BW
linear-regression model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.gpu import GPUDevice, GPUSpec
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.units import gb_per_s, gbps, us


@dataclass(frozen=True)
class InterconnectSpec:
    """Link parameters for a cluster.

    ``pcie_scale`` and ``ib_scale`` are the scaling-down constants (§7)
    that map peak to achievable bandwidth; latencies absorb the constant
    term of the linear-regression communication model.  The fitted
    values for a given software stack live in the named calibration
    profiles of :data:`repro.cluster.catalog.INTERCONNECT_PROFILES`
    (the defaults here equal the paper's ``grpc_tf112`` profile).
    """

    pcie_bandwidth: float = gb_per_s(15.75)  # PCIe 3.0 x16 peak
    pcie_scale: float = 0.75
    pcie_latency: float = us(25)
    ib_bandwidth: float = gbps(56)  # InfiniBand FDR
    #: achieved fraction of IB line rate for GPU-to-GPU tensor transfers;
    #: TF 1.12 staged transfers through host memory over gRPC, which
    #: sustains only ~0.8 GB/s — this constant is fitted to the paper's
    #: heterogeneous Nm=1 throughputs (see EXPERIMENTS.md calibration)
    ib_scale: float = 0.10
    ib_latency: float = us(150)

    def __post_init__(self) -> None:
        if not 0 < self.pcie_scale <= 1 or not 0 < self.ib_scale <= 1:
            raise ConfigurationError("link scaling constants must be in (0, 1]")

    @property
    def pcie_effective(self) -> float:
        """Achievable intra-node GPU-to-GPU bandwidth (bytes/s)."""
        return self.pcie_bandwidth * self.pcie_scale

    @property
    def ib_effective(self) -> float:
        """Achievable inter-node bandwidth (bytes/s)."""
        return self.ib_bandwidth * self.ib_scale

    def link_between(self, a: GPUDevice, b: GPUDevice) -> tuple[float, float]:
        """``(effective_bandwidth, latency)`` for a transfer from a to b."""
        if a.same_node(b):
            return self.pcie_effective, self.pcie_latency
        return self.ib_effective, self.ib_latency

    def transfer_time(self, nbytes: float, a: GPUDevice, b: GPUDevice) -> float:
        """Unloaded point-to-point transfer time for ``nbytes``."""
        if a.gpu_id == b.gpu_id:
            return 0.0
        bandwidth, latency = self.link_between(a, b)
        return latency + nbytes / bandwidth


class Cluster:
    """A set of nodes with an interconnect.

    >>> from repro.cluster.catalog import paper_cluster
    >>> cluster = paper_cluster()
    >>> len(cluster.gpus)
    16
    >>> cluster.codes()
    'VVVVRRRRGGGGQQQQ'
    """

    def __init__(self, nodes: Sequence[Node], interconnect: InterconnectSpec) -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        self.nodes = list(nodes)
        self.interconnect = interconnect
        self.gpus: list[GPUDevice] = []
        next_id = 0
        for node in self.nodes:
            devices = []
            for slot in range(node.gpu_count):
                devices.append(
                    GPUDevice(gpu_id=next_id, node_id=node.node_id, spec=node.gpu_spec, slot=slot)
                )
                next_id += 1
            node.gpus = devices
            self.gpus.extend(devices)
        self._by_id = {gpu.gpu_id: gpu for gpu in self.gpus}

    def gpu(self, gpu_id: int) -> GPUDevice:
        return self._by_id[gpu_id]

    def node(self, node_id: int) -> Node:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigurationError(f"no node with id {node_id}")

    def gpus_of_type(self, code: str) -> list[GPUDevice]:
        """All devices whose spec code matches (e.g. 'V')."""
        return [gpu for gpu in self.gpus if gpu.code == code]

    def codes(self) -> str:
        """Cluster fingerprint: one letter per GPU in id order."""
        return "".join(gpu.code for gpu in self.gpus)

    def specs(self) -> list[GPUSpec]:
        """Distinct GPU specs present, in first-appearance order."""
        seen: dict[str, GPUSpec] = {}
        for gpu in self.gpus:
            seen.setdefault(gpu.code, gpu.spec)
        return list(seen.values())

    def subset(self, gpu_ids: Iterable[int]) -> list[GPUDevice]:
        return [self._by_id[g] for g in gpu_ids]

    def __len__(self) -> int:
        return len(self.gpus)

    def __str__(self) -> str:
        return " ".join(str(node) for node in self.nodes)
