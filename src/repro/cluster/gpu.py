"""GPU device model.

A :class:`GPUSpec` captures the Table-1 hardware numbers plus one
calibration knob (``arch_efficiency``) that converts the marketing peak
(cores x clock x 2 FMA) into a sustainable FP32 training rate.  The paper
orders compute power V > R > G > Q; raw cores x clock would put the TITAN
RTX first, so per-model efficiency factors restore the measured ordering.
Values slightly above 1.0 are legitimate: consumer dies routinely sustain
clocks above the quoted "boost clock", so the marketing peak
underestimates them (capped at 1.5 by validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import mhz


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes mirror Table 1 of the paper; ``memory_bytes`` and
    ``memory_bandwidth`` are in SI bytes and bytes/second.
    """

    name: str
    code: str  # one-letter code used in the paper: V, R, G, Q
    architecture: str
    cuda_cores: int
    boost_clock_mhz: float
    memory_bytes: float
    memory_bandwidth: float
    arch_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.cuda_cores <= 0:
            raise ConfigurationError(f"{self.name}: cuda_cores must be positive")
        if self.memory_bytes <= 0 or self.memory_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: memory sizes must be positive")
        if not 0 < self.arch_efficiency <= 1.5:
            raise ConfigurationError(f"{self.name}: implausible arch_efficiency")
        if len(self.code) != 1:
            raise ConfigurationError(f"{self.name}: code must be one letter")

    @property
    def peak_flops(self) -> float:
        """Marketing peak FP32 FLOP/s: cores x clock x 2 (FMA)."""
        return self.cuda_cores * mhz(self.boost_clock_mhz) * 2

    @property
    def effective_flops(self) -> float:
        """Sustainable FP32 rate used by the roofline profiler."""
        return self.peak_flops * self.arch_efficiency

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class GPUDevice:
    """One physical GPU instance: a spec placed in a node slot.

    ``gpu_id`` is unique within a cluster; ``node_id`` identifies the
    hosting node (GPUs on the same node talk over PCIe, otherwise over
    the inter-node fabric).
    """

    gpu_id: int
    node_id: int
    spec: GPUSpec
    slot: int = field(default=0)

    @property
    def code(self) -> str:
        return self.spec.code

    @property
    def memory_bytes(self) -> float:
        return self.spec.memory_bytes

    def same_node(self, other: "GPUDevice") -> bool:
        return self.node_id == other.node_id

    def __str__(self) -> str:
        return f"gpu{self.gpu_id}({self.spec.code}@node{self.node_id})"
