"""Catalog of the paper's hardware (Table 1) and cluster builders.

The four GPU models, their one-letter codes, and the 4-node x 4-GPU
testbed of §8.1.  ``arch_efficiency`` values are calibration constants
(see :mod:`repro.models.calibration`) chosen so the compute-power order
is V > R > G > Q as the paper reports.
"""

from __future__ import annotations

from repro.cluster.gpu import GPUSpec
from repro.cluster.node import Node
from repro.cluster.topology import Cluster, InterconnectSpec
from repro.errors import ConfigurationError
from repro.units import gb, gb_per_s, us

TITAN_V = GPUSpec(
    name="TITAN V",
    code="V",
    architecture="Volta",
    cuda_cores=5120,
    boost_clock_mhz=1455,
    memory_bytes=gb(12),
    memory_bandwidth=gb_per_s(653),
    arch_efficiency=1.00,
)

TITAN_RTX = GPUSpec(
    name="TITAN RTX",
    code="R",
    architecture="Turing",
    cuda_cores=4608,
    boost_clock_mhz=1770,
    memory_bytes=gb(24),
    memory_bandwidth=gb_per_s(672),
    arch_efficiency=0.82,
)

RTX_2060 = GPUSpec(
    name="GeForce RTX 2060",
    code="G",
    architecture="Turing",
    cuda_cores=1920,
    boost_clock_mhz=1680,
    memory_bytes=gb(6),
    memory_bandwidth=gb_per_s(336),
    arch_efficiency=1.10,
)

QUADRO_P4000 = GPUSpec(
    name="Quadro P4000",
    code="Q",
    architecture="Pascal",
    cuda_cores=1792,
    boost_clock_mhz=1480,
    memory_bytes=gb(8),
    memory_bandwidth=gb_per_s(243),
    arch_efficiency=1.21,
)

GPU_BY_CODE: dict[str, GPUSpec] = {
    spec.code: spec for spec in (TITAN_V, TITAN_RTX, RTX_2060, QUADRO_P4000)
}


#: Named link-calibration profiles: the achieved-fraction constants that
#: map peak to sustained bandwidth for a given software stack.  The
#: paper's testbed (`grpc_tf112`) staged inter-node tensors through host
#: memory over TF 1.12's gRPC transport, sustaining only ~10% of the FDR
#: line rate (the fitted ``ib_scale=0.10`` behind the ~0.8 GB/s achieved
#: IB figure); `nccl_modern` models an RDMA-capable stack (GPUDirect
#: NCCL) that keeps most of the wire rate and much lower software
#: latency — useful for what-if runs on the same topology.
INTERCONNECT_PROFILES: dict[str, InterconnectSpec] = {
    "grpc_tf112": InterconnectSpec(pcie_scale=0.75, ib_scale=0.10),
    "nccl_modern": InterconnectSpec(
        pcie_scale=0.90,
        pcie_latency=us(10),
        ib_scale=0.80,
        ib_latency=us(20),
    ),
}

#: The calibration the paper's experiments ran under.
DEFAULT_PROFILE = "grpc_tf112"


def interconnect_profile(name: str) -> InterconnectSpec:
    """Look up a named calibration profile (see ``INTERCONNECT_PROFILES``)."""
    try:
        return INTERCONNECT_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown interconnect profile {name!r}; expected one of "
            f"{sorted(INTERCONNECT_PROFILES)}"
        ) from None


def paper_interconnect(profile: str = DEFAULT_PROFILE) -> InterconnectSpec:
    """PCIe 3.0 x16 within nodes, 56 Gb/s InfiniBand across (§8.1),
    calibrated per the named ``profile``."""
    return interconnect_profile(profile)


def paper_cluster(
    node_codes: str = "VRGQ",
    gpus_per_node: int = 4,
    interconnect: InterconnectSpec | None = None,
    profile: str = DEFAULT_PROFILE,
) -> Cluster:
    """The §8.1 testbed: one node per GPU type, four GPUs per node.

    ``node_codes`` selects which node types to instantiate, in order, so
    the Table-4 scaling experiments can build the 1-, 2- and 3-node
    subsets ("V", "VR", "VRQ", "VRQG").
    """
    nodes = []
    for node_id, code in enumerate(node_codes):
        if code not in GPU_BY_CODE:
            raise ConfigurationError(f"unknown GPU code {code!r}; expected one of VRGQ")
        nodes.append(Node(node_id=node_id, gpu_spec=GPU_BY_CODE[code], gpu_count=gpus_per_node))
    return Cluster(nodes, interconnect or paper_interconnect(profile))


def single_type_cluster(code: str, node_count: int = 1, gpus_per_node: int = 4) -> Cluster:
    """A homogeneous cluster of one GPU type (unit tests, ablations)."""
    return paper_cluster(node_codes=code * node_count, gpus_per_node=gpus_per_node)
