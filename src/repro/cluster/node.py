"""Node model: a host machine with a homogeneous set of GPUs.

Matches the paper's testbed shape (§8.1): each node holds four GPUs of a
single type behind PCIe 3.0 x16, 64 GB of host memory, and one InfiniBand
NIC.  Heterogeneity exists *across* nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.gpu import GPUDevice, GPUSpec
from repro.errors import ConfigurationError
from repro.units import gib


@dataclass
class Node:
    """A host with ``gpu_count`` GPUs of one spec."""

    node_id: int
    gpu_spec: GPUSpec
    gpu_count: int = 4
    host_memory_bytes: float = gib(64)
    gpus: list[GPUDevice] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.gpu_count <= 0:
            raise ConfigurationError(f"node{self.node_id}: gpu_count must be positive")
        # GPUs are materialized by the Cluster so ids are cluster-unique;
        # a standalone Node can also self-populate for unit tests.
        if not self.gpus:
            self.gpus = [
                GPUDevice(gpu_id=-1, node_id=self.node_id, spec=self.gpu_spec, slot=s)
                for s in range(self.gpu_count)
            ]

    @property
    def code(self) -> str:
        return self.gpu_spec.code

    def __str__(self) -> str:
        return f"node{self.node_id}[{self.gpu_spec.code}x{self.gpu_count}]"
