"""End-to-end scenario execution with always-on invariant oracles.

:func:`run_scenario` drives one generated scenario through the real
:class:`~repro.wsp.runtime.HetPipeRuntime` with the full oracle suite
attached, then closes with three independent verdicts:

1. **Invariants** — any live oracle violation, deadlock (quiescing short
   of the target version), or event-budget blowout fails the scenario.
2. **Differential bounds** — the measured window is compared against the
   envelopes of :mod:`repro.training.theory`: per-worker completions
   must sit inside :func:`~repro.training.theory.wsp_completion_bounds`,
   no worker may beat its
   :func:`~repro.training.theory.pipeline_rate_bound`, and the window
   cannot exceed the serialized worst case
   (:func:`~repro.training.theory.wsp_wave_time_bound`, with PS apply
   contention added and a slack factor for transfer queueing).
3. **1F1B cross-check** — the same partition plan is also run through
   the PipeDream-style :class:`~repro.pipeline.one_f_one_b.OneFOneBPipeline`
   under :class:`~repro.sim.invariants.OneFOneBOracle`, so the variant
   scheduler is fuzzed alongside the paper's FIFO discipline.

Every run is deterministic; :class:`ScenarioResult.digest` hashes the
full trace so replays can be compared bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InvariantViolation, ReproError, SimulationError
from repro.netsim.fabric import DEFAULT_FABRIC_SPEC, FabricSpec
from repro.pipeline.one_f_one_b import OneFOneBPipeline
from repro.scenarios.generator import (
    Scenario,
    ScenarioSpec,
    congested_fabric_spec,
    generate_scenario,
    materialize,
)
from repro.sim.engine import Simulator
from repro.sim.invariants import OneFOneBOracle, default_oracles
from repro.sim.trace import Trace
from repro.training.envelopes import (
    pipeline_rate_bound,
    wsp_completion_bounds,
    wsp_wave_time_bound,
)
from repro.wsp.runtime import HetPipeRuntime

#: Multiplier on the serialized worst-case window bound.  The bound in
#: :func:`wsp_wave_time_bound` ignores cross-worker queueing on shared
#: parameter-server shards beyond the apply processors, so the harness
#: grants this much headroom before calling a run impossibly slow.
WINDOW_SLACK = 3.0

#: Events granted per expected minibatch before a run is declared a
#: storm.  A minibatch costs ~4 events per stage (two task completions,
#: two transfers) plus wave sync; 200 is two orders of magnitude above.
EVENTS_PER_MINIBATCH = 200


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fuzzed scenario."""

    spec: ScenarioSpec
    digest: str
    violations: tuple[str, ...]
    throughput: float  # images/s over the measured window
    window: float  # simulated seconds measured
    events: int
    per_vw_completions: tuple[int, ...]
    #: end-of-run simulated time (time to the target global version)
    makespan: float = 0.0
    #: makespan of the dedicated-network twin run (shared scenarios only;
    #: the contention oracle requires makespan >= dedicated_makespan)
    dedicated_makespan: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.violations)})"
        return (
            f"[{status:>8}] {self.spec.describe()} "
            f"-> {self.throughput:8.1f} img/s, {self.events} events, "
            f"digest {self.digest[:12]}"
        )


def _sync_time_bound(scenario: Scenario, runtime: HetPipeRuntime, vw: int) -> float:
    """Serialized per-wave channel time for ``vw``: PS push+pull plus the
    pipeline's own inter-stage activation/gradient transfers.

    ``plan.serial_latency`` (used by :func:`wsp_wave_time_bound`) covers
    compute and *receive* costs, but a wave also occupies the stage
    links; folding those transfers in keeps the window bound a true
    worst case even for communication-dominated scenarios.
    """
    ic = scenario.cluster.interconnect
    plan = scenario.plans[vw]
    placement = runtime.placements[vw]
    push_mult = scenario.spec.nm if scenario.spec.push_every_minibatch else 1
    total = 0.0
    for stage, dests in zip(plan.stages, placement):
        src = stage.gpu.node_id
        for shard_node, nbytes in dests:
            if shard_node == src:
                per_transfer = ic.pcie_latency + nbytes / ic.pcie_effective
            else:
                per_transfer = ic.ib_latency + nbytes / ic.ib_effective
            total += per_transfer * (push_mult + 1)  # pushes + one pull
    for s in range(1, plan.k):
        bandwidth, latency = ic.link_between(plan.stages[s - 1].gpu, plan.stages[s].gpu)
        boundary = latency + plan.stages[s].activation_in_bytes / bandwidth
        total += 2 * boundary * plan.nm  # fwd activation + bwd gradient, per minibatch
    return total


def _apply_time_bound(scenario: Scenario, runtime: HetPipeRuntime) -> float:
    """Serialized shard-apply cost of one wave from *every* worker.

    Apply processors are shared PS-side, so in the worst case all
    workers' applies queue behind each other.
    """
    rate = runtime.calibration.ps_apply_bandwidth
    push_mult = scenario.spec.nm if scenario.spec.push_every_minibatch else 1
    total = 0.0
    for placement in runtime.placements:
        for dests in placement:
            for _, nbytes in dests:
                total += push_mult * nbytes / rate
    return total


def _check_bounds(
    scenario: Scenario,
    runtime: HetPipeRuntime,
    window: float,
    completions: Sequence[int],
    violations: list[str],
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
) -> None:
    spec = scenario.spec
    low, high = wsp_completion_bounds(spec.nm, spec.d, spec.measured_waves)
    for vw, (plan, done) in enumerate(zip(scenario.plans, completions)):
        if not low <= done <= high:
            violations.append(
                f"differential: vw{vw} completed {done} minibatches in a "
                f"{spec.measured_waves}-wave window, outside [{low}, {high}]"
            )
        ceiling = window * pipeline_rate_bound(plan, spec.jitter) + spec.nm + 1
        if done > ceiling:
            violations.append(
                f"differential: vw{vw} completed {done} minibatches in "
                f"{window:.6f}s, above the compute ceiling {ceiling:.1f}"
            )
    apply_bound = _apply_time_bound(scenario, runtime)
    syncs = [
        _sync_time_bound(scenario, runtime, vw) for vw in range(len(scenario.plans))
    ]
    if spec.network_model == "shared":
        # On the shared fabric, every worker's transfers can serialize
        # behind every other worker's on the same NIC/switch, and the
        # congested topology runs resources at `min_scale` of the
        # dedicated bandwidths — the serialized worst case is the *sum*
        # over workers, rescaled.
        total_sync = sum(syncs) / fabric_spec.min_scale()
        syncs = [total_sync] * len(syncs)
    wave_bound = max(
        wsp_wave_time_bound(plan, sync, spec.jitter)
        for plan, sync in zip(scenario.plans, syncs)
    )
    limit = spec.measured_waves * (wave_bound + apply_bound) * WINDOW_SLACK
    if window > limit:
        violations.append(
            f"differential: {spec.measured_waves} waves took {window:.6f}s, "
            f"beyond the serialized worst case {limit:.6f}s (livelock?)"
        )


def _check_1f1b(scenario: Scenario, violations: list[str]) -> str:
    """Run the 1F1B variant on plan 0 under its dispatch oracle."""
    plan = scenario.plans[0]
    limit = 3 * plan.nm + 2 * plan.k
    sim = Simulator()
    # Streaming digest: the oracle subscribes live and the replay hash
    # folds in at emit time, so no record is ever stored.
    trace = Trace(enabled=False, digest=True)
    pipeline = OneFOneBPipeline(
        sim, plan, scenario.cluster.interconnect, limit=limit,
        name=f"1f1b{scenario.spec.seed}", trace=trace,
    )
    oracle = OneFOneBOracle(pipeline)
    try:
        pipeline.start()
        sim.run_until_idle(max_events=EVENTS_PER_MINIBATCH * limit * plan.k)
        if pipeline.completed != limit:
            violations.append(
                f"1f1b: pipeline quiesced at {pipeline.completed}/{limit} minibatches"
            )
        if oracle.forwards_checked == 0 and plan.k > 1:
            violations.append("1f1b: oracle observed no forward dispatches")
    except ReproError as exc:
        violations.append(f"1f1b: {exc}")
    return trace.digest()


def _makespan_only(scenario: Scenario, spec: ScenarioSpec, budget: int) -> float:
    """Time for the *dedicated*-network twin of ``spec`` to reach the
    target global version (no oracles, no trace — just the clock)."""
    runtime = HetPipeRuntime(
        scenario.cluster,
        scenario.model,
        list(scenario.plans),
        d=spec.d,
        placement=spec.placement,
        push_every_minibatch=spec.push_every_minibatch,
        jitter=spec.jitter,
        network_model="dedicated",
    )
    runtime.start()
    runtime.run_until_global_version(
        spec.warmup_waves + spec.measured_waves - 1, max_events=budget
    )
    return runtime.sim.now


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario end to end and return its verdict.

    Shared-network scenarios additionally run their dedicated twin and
    assert the contention oracle: adding contention (and a congested
    fabric) can only slow a run down, so the shared makespan must be at
    least the dedicated one.
    """
    violations: list[str] = []
    scenario = materialize(spec)
    shared = spec.network_model == "shared"
    fabric_spec = congested_fabric_spec(spec.seed) if shared else DEFAULT_FABRIC_SPEC
    # Storage stays off: the oracles are live subscribers and the digest
    # is folded in record-by-record, so memory no longer grows with the
    # run's makespan (the digest value is identical to the stored-record
    # hash the harness used to compute).
    trace = Trace(enabled=False, digest=True)
    runtime = HetPipeRuntime(
        scenario.cluster,
        scenario.model,
        list(scenario.plans),
        d=spec.d,
        placement=spec.placement,
        trace=trace,
        push_every_minibatch=spec.push_every_minibatch,
        jitter=spec.jitter,
        oracles=default_oracles(),
        network_model=spec.network_model,
        fabric_spec=fabric_spec,
    )
    total_waves = spec.warmup_waves + spec.measured_waves
    expected_minibatches = (
        len(scenario.plans) * (total_waves + spec.d + 3) * spec.nm
    )
    budget = EVENTS_PER_MINIBATCH * expected_minibatches * max(
        plan.k for plan in scenario.plans
    )

    window = 0.0
    completions: tuple[int, ...] = tuple(0 for _ in scenario.plans)
    throughput = 0.0
    makespan = 0.0
    dedicated_makespan = 0.0
    try:
        runtime.start()
        runtime.run_until_global_version(spec.warmup_waves - 1, max_events=budget)
        t0 = runtime.sim.now
        done0 = [stats.minibatches_done for stats in runtime.stats]
        runtime.run_until_global_version(total_waves - 1, max_events=budget)
        window = runtime.sim.now - t0
        makespan = runtime.sim.now
        completions = tuple(
            stats.minibatches_done - before
            for stats, before in zip(runtime.stats, done0)
        )
        throughput = (
            sum(completions) * scenario.model.batch_size / window if window > 0 else 0.0
        )
        runtime.check_invariants()
        _check_bounds(scenario, runtime, window, completions, violations, fabric_spec)
        if shared:
            dedicated_makespan = _makespan_only(scenario, spec, budget)
            if makespan < dedicated_makespan * (1.0 - 1e-9):
                violations.append(
                    f"contention: shared makespan {makespan:.6f}s beat the "
                    f"dedicated twin's {dedicated_makespan:.6f}s (contention "
                    f"cannot speed a run up)"
                )
    except (InvariantViolation, SimulationError) as exc:
        violations.append(f"{type(exc).__name__}: {exc}")

    pipe_digest = _check_1f1b(scenario, violations)
    combined = hashlib.sha256(
        (trace.digest() + pipe_digest).encode()
    ).hexdigest()
    return ScenarioResult(
        spec=spec,
        digest=combined,
        violations=tuple(violations),
        throughput=throughput,
        window=window,
        events=runtime.sim.events_processed,
        per_vw_completions=completions,
        makespan=makespan,
        dedicated_makespan=dedicated_makespan,
    )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz batch."""

    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.ok]

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.results)} scenarios, "
            f"{len(self.failures)} failing, {self.total_violations} violations"
        ]
        for result in self.failures:
            lines.append(f"  seed {result.spec.seed}: {result.spec.describe()}")
            for violation in result.violations:
                lines.append(f"    - {violation}")
        return "\n".join(lines)


def _fuzz_one(args: tuple[int, str]) -> ScenarioResult:
    """Run a single seed end to end (the :func:`sweep_map` work item).

    Module-level and argument-pure so worker processes can import it by
    reference; generation failures are reported as findings rather than
    raised — the harness's contract is that *any* seed yields a verdict.
    """
    from dataclasses import replace

    seed, network_model = args
    try:
        scenario = generate_scenario(seed)
        return run_scenario(replace(scenario.spec, network_model=network_model))
    except ReproError as exc:
        return ScenarioResult(
            spec=ScenarioSpec(
                seed=seed, node_codes="?", gpus_per_node=0, allocation="?",
                batch_size=0, image_size=0, conv_widths=(), fc_dims=(),
                nm=0, d=0, placement="?", jitter=0.0,
                push_every_minibatch=False, warmup_waves=0, measured_waves=0,
            ),
            digest="",
            violations=(f"generation: {type(exc).__name__}: {exc}",),
            throughput=0.0,
            window=0.0,
            events=0,
            per_vw_completions=(),
        )


def run_fuzz(
    seeds: Iterable[int],
    verbose_log=None,
    network_model: str = "dedicated",
    jobs: int | None = 1,
) -> FuzzReport:
    """Generate and run the scenario for every seed.

    ``verbose_log`` (e.g. ``print``) receives one line per scenario, in
    seed order regardless of ``jobs``.
    ``network_model="shared"`` reruns the same seeded scenarios on the
    contention-aware fabric (with a seed-drawn congested topology) under
    the additional flow-conservation / utilization / makespan oracles;
    the scenario draw itself is unaffected, so a seed always denotes the
    same deployment in both modes.
    ``jobs`` fans seeds out across worker processes via
    :func:`repro.exec.sweep_map` (``None`` = one per CPU); every seed is
    an independent deterministic simulation, so the report — digests
    included — is bit-identical to a serial run.
    """
    from repro.exec import sweep_map

    on_result = None
    if verbose_log is not None:
        on_result = lambda index, result: verbose_log(result.describe())  # noqa: E731
    results = sweep_map(
        _fuzz_one,
        [(seed, network_model) for seed in seeds],
        jobs=jobs,
        on_result=on_result,
    )
    return FuzzReport(results=results)
