"""End-to-end scenario execution with always-on invariant oracles.

:func:`run_scenario` drives one generated scenario through the real
:class:`~repro.wsp.runtime.HetPipeRuntime` with the full oracle suite
attached, then closes with three independent verdicts:

1. **Invariants** — any live oracle violation, deadlock (quiescing short
   of the target version), or event-budget blowout fails the scenario.
2. **Differential bounds** — the measured window is compared against the
   envelopes of :mod:`repro.training.theory`: per-worker completions
   must sit inside :func:`~repro.training.theory.wsp_completion_bounds`,
   no worker may beat its
   :func:`~repro.training.theory.pipeline_rate_bound`, and the window
   cannot exceed the serialized worst case
   (:func:`~repro.training.theory.wsp_wave_time_bound`, with PS apply
   contention added and a slack factor for transfer queueing).
3. **1F1B cross-check** — the same partition plan is also run through
   the PipeDream-style :class:`~repro.pipeline.one_f_one_b.OneFOneBPipeline`
   under :class:`~repro.sim.invariants.OneFOneBOracle`, so the variant
   scheduler is fuzzed alongside the paper's FIFO discipline.

Every run is deterministic; :class:`ScenarioResult.digest` hashes the
full trace so replays can be compared bit-for-bit.

Scenarios are canonically described by a typed
:class:`~repro.api.spec.RunSpec` — :func:`run_scenario` accepts one
directly (legacy :class:`ScenarioSpec` inputs are lifted into one), the
fuzz driver constructs one per seed, and every result records the
spec's ``spec_hash`` so any artifact is traceable to, and replayable
from, its exact configuration (``repro run <spec.json>``).
"""

from __future__ import annotations

import hashlib
import logging
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.api.build import build_scenario
from repro.api.spec import SPEC_SCHEMA, FidelitySpec, RunSpec
from repro.errors import InvariantViolation, ReproError, SimulationError
from repro.netsim.fabric import DEFAULT_FABRIC_SPEC, FabricSpec
from repro.pipeline.one_f_one_b import OneFOneBPipeline
from repro.scenarios.generator import (
    Scenario,
    ScenarioSpec,
    congested_fabric_spec,
    generate_scenario,
)
from repro.sim.engine import Simulator
from repro.sim.equivalence import compare_fingerprints, semantic_fingerprint
from repro.sim.fastforward import run_pipeline_fast_forward, validate_fidelity
from repro.sim.invariants import OneFOneBOracle, StalenessOracle
from repro.sim.trace import Trace
from repro.training.envelopes import (
    pipeline_rate_bound,
    wsp_completion_bounds,
    wsp_wave_time_bound,
)
from repro.wsp.runtime import HetPipeRuntime

#: Multiplier on the serialized worst-case window bound.  The bound in
#: :func:`wsp_wave_time_bound` ignores cross-worker queueing on shared
#: parameter-server shards beyond the apply processors, so the harness
#: grants this much headroom before calling a run impossibly slow.
WINDOW_SLACK = 3.0

#: Events granted per expected minibatch before a run is declared a
#: storm.  A minibatch costs ~4 events per stage (two task completions,
#: two transfers) plus wave sync; 200 is two orders of magnitude above.
EVENTS_PER_MINIBATCH = 200

#: Ring-buffer capacity for diagnostics capture when the spec carries no
#: observability section of its own.
DEFAULT_DIAGNOSTIC_RING = 256

#: Completed fabric flows kept in a diagnostics snapshot.
_SNAPSHOT_FLOWS = 32

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one fuzzed scenario."""

    spec: ScenarioSpec
    digest: str
    violations: tuple[str, ...]
    throughput: float  # images/s over the measured window
    window: float  # simulated seconds measured
    events: int
    per_vw_completions: tuple[int, ...]
    #: end-of-run simulated time (time to the target global version)
    makespan: float = 0.0
    #: makespan of the dedicated-network twin run (shared scenarios only;
    #: the contention oracle requires makespan >= dedicated_makespan)
    dedicated_makespan: float = 0.0
    #: fidelity the scenario ran under ("full" or "fast_forward")
    fidelity: str = "full"
    #: heap events actually dispatched (main runtime + 1F1B cross-check;
    #: the equivalence twin's events are verification overhead, not the
    #: scenario's cost, and are excluded)
    events_simulated: int = 0
    #: events coalesced analytically by steady-state skips
    events_fast_forwarded: int = 0
    #: whether the full-fidelity twin ran and the semantic fingerprints
    #: were compared (fast_forward runs only)
    equivalence_checked: bool = False
    #: hash of the canonical RunSpec the scenario was constructed from
    #: (every fuzz seed runs through the typed API), so any artifact
    #: carrying this result is traceable to its exact configuration
    spec_hash: str = ""
    #: the spec schema the hash was computed under
    api_schema: str = SPEC_SCHEMA
    #: diagnostics capture (trace ring, oracle state, queue snapshots);
    #: populated only by ``run_scenario(..., capture_diagnostics=True)``
    #: re-runs of failing seeds, and fed into
    #: :func:`repro.obs.bundle.write_bundle`
    diagnostics: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.violations)})"
        line = (
            f"[{status:>8}] {self.spec.describe()} "
            f"-> {self.throughput:8.1f} img/s, {self.events} events, "
            f"digest {self.digest[:12]}"
        )
        if self.fidelity != "full":
            line += f" ff={self.events_fast_forwarded}"
        if self.spec_hash:
            line += f" spec {self.spec_hash[:12]}"
        return line


def _sync_time_bound(scenario: Scenario, runtime: HetPipeRuntime, vw: int) -> float:
    """Serialized per-wave channel time for ``vw``: PS push+pull plus the
    pipeline's own inter-stage activation/gradient transfers.

    ``plan.serial_latency`` (used by :func:`wsp_wave_time_bound`) covers
    compute and *receive* costs, but a wave also occupies the stage
    links; folding those transfers in keeps the window bound a true
    worst case even for communication-dominated scenarios.
    """
    ic = scenario.cluster.interconnect
    plan = scenario.plans[vw]
    placement = runtime.placements[vw]
    push_mult = scenario.spec.nm if scenario.spec.push_every_minibatch else 1
    total = 0.0
    for stage, dests in zip(plan.stages, placement):
        src = stage.gpu.node_id
        for shard_node, nbytes in dests:
            if shard_node == src:
                per_transfer = ic.pcie_latency + nbytes / ic.pcie_effective
            else:
                per_transfer = ic.ib_latency + nbytes / ic.ib_effective
            total += per_transfer * (push_mult + 1)  # pushes + one pull
    for s in range(1, plan.k):
        bandwidth, latency = ic.link_between(plan.stages[s - 1].gpu, plan.stages[s].gpu)
        boundary = latency + plan.stages[s].activation_in_bytes / bandwidth
        total += 2 * boundary * plan.nm  # fwd activation + bwd gradient, per minibatch
    return total


def _apply_time_bound(scenario: Scenario, runtime: HetPipeRuntime) -> float:
    """Serialized shard-apply cost of one wave from *every* worker.

    Apply processors are shared PS-side, so in the worst case all
    workers' applies queue behind each other.
    """
    rate = runtime.calibration.ps_apply_bandwidth
    push_mult = scenario.spec.nm if scenario.spec.push_every_minibatch else 1
    total = 0.0
    for placement in runtime.placements:
        for dests in placement:
            for _, nbytes in dests:
                total += push_mult * nbytes / rate
    return total


def _check_bounds(
    scenario: Scenario,
    runtime: HetPipeRuntime,
    window: float,
    completions: Sequence[int],
    violations: list[str],
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
) -> None:
    spec = scenario.spec
    low, high = wsp_completion_bounds(spec.nm, spec.d, spec.measured_waves)
    for vw, (plan, done) in enumerate(zip(scenario.plans, completions)):
        if not low <= done <= high:
            violations.append(
                f"differential: vw{vw} completed {done} minibatches in a "
                f"{spec.measured_waves}-wave window, outside [{low}, {high}]"
            )
        ceiling = window * pipeline_rate_bound(plan, spec.jitter) + spec.nm + 1
        if done > ceiling:
            violations.append(
                f"differential: vw{vw} completed {done} minibatches in "
                f"{window:.6f}s, above the compute ceiling {ceiling:.1f}"
            )
    apply_bound = _apply_time_bound(scenario, runtime)
    syncs = [
        _sync_time_bound(scenario, runtime, vw) for vw in range(len(scenario.plans))
    ]
    if spec.network_model == "shared":
        # On the shared fabric, every worker's transfers can serialize
        # behind every other worker's on the same NIC/switch, and the
        # congested topology runs resources at `min_scale` of the
        # dedicated bandwidths — the serialized worst case is the *sum*
        # over workers, rescaled.
        total_sync = sum(syncs) / fabric_spec.min_scale()
        syncs = [total_sync] * len(syncs)
    wave_bound = max(
        wsp_wave_time_bound(plan, sync, spec.jitter)
        for plan, sync in zip(scenario.plans, syncs)
    )
    limit = spec.measured_waves * (wave_bound + apply_bound) * WINDOW_SLACK
    if window > limit:
        violations.append(
            f"differential: {spec.measured_waves} waves took {window:.6f}s, "
            f"beyond the serialized worst case {limit:.6f}s (livelock?)"
        )


def _check_1f1b(
    scenario: Scenario, violations: list[str], fidelity: str = "full"
) -> tuple[str, int, int]:
    """Run the 1F1B variant on plan 0 under its dispatch oracle.

    Returns ``(digest, events_simulated, events_fast_forwarded)``.  The
    1F1B pipeline is deterministic (no jitter), so under the
    fast_forward fidelity its steady-state cycles always coalesce.
    """
    plan = scenario.plans[0]
    limit = 3 * plan.nm + 2 * plan.k
    sim = Simulator()
    # Streaming digest: the oracle subscribes live and the replay hash
    # folds in at emit time, so no record is ever stored.
    trace = Trace(enabled=False, digest=True, schema=1 if fidelity == "full" else 2)
    pipeline = OneFOneBPipeline(
        sim, plan, scenario.cluster.interconnect, limit=limit,
        name=f"1f1b{scenario.spec.seed}", trace=trace,
    )
    oracle = OneFOneBOracle(pipeline)
    budget = EVENTS_PER_MINIBATCH * limit * plan.k
    try:
        pipeline.start()
        if fidelity == "fast_forward":
            run_pipeline_fast_forward(pipeline, limit, max_events=budget)
        else:
            sim.run_until_idle(max_events=budget)
        if pipeline.completed != limit:
            violations.append(
                f"1f1b: pipeline quiesced at {pipeline.completed}/{limit} minibatches"
            )
        if oracle.forwards_checked == 0 and plan.k > 1:
            violations.append("1f1b: oracle observed no forward dispatches")
    except ReproError as exc:
        violations.append(f"1f1b: {exc}")
    return trace.digest(), sim.events_processed, sim.events_fast_forwarded


def _makespan_only(
    scenario: Scenario,
    run: RunSpec,
    budget: int,
    keep_network: bool = False,
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
) -> float:
    """Time for a fault-free twin of ``run`` to reach the target global
    version (no oracles, no trace — just the clock).

    By default the twin runs on the dedicated network (the contention
    oracle's reference); with ``keep_network`` it keeps the run's own
    network model, which is the fault-injection baseline — the horizon
    fault fractions scale by and the degradation oracle's yardstick.
    """
    spec = scenario.spec
    twin = replace(
        run,
        network=run.network if keep_network else replace(run.network, model="dedicated"),
        fidelity=FidelitySpec(),
        faults=None,
    )
    runtime = HetPipeRuntime.from_spec(
        twin,
        cluster=scenario.cluster,
        model=scenario.model,
        plans=list(scenario.plans),
        fabric_spec=fabric_spec,
    )
    runtime.start()
    runtime.run_until_global_version(
        spec.warmup_waves + spec.measured_waves - 1, max_events=budget
    )
    return runtime.sim.now


def _build_runtime(
    scenario: Scenario,
    run: RunSpec,
    fidelity: str,
    trace: Trace,
    oracles,
    fabric_spec: FabricSpec,
) -> HetPipeRuntime:
    """The WSP runtime for one scenario run (main or equivalence twin)."""
    if fidelity != run.fidelity.fidelity:
        run = replace(run, fidelity=replace(run.fidelity, fidelity=fidelity))
    return HetPipeRuntime.from_spec(
        run,
        cluster=scenario.cluster,
        model=scenario.model,
        plans=list(scenario.plans),
        trace=trace,
        oracles=oracles,
        fabric_spec=fabric_spec,
    )


def _drive_main(
    runtime: HetPipeRuntime, spec: ScenarioSpec, budget: int
) -> tuple[float, tuple[int, ...], float]:
    """Drive a built runtime through warmup + the measured window.

    Returns ``(window, completions, makespan)``.
    """
    total_waves = spec.warmup_waves + spec.measured_waves
    runtime.start()
    runtime.run_until_global_version(spec.warmup_waves - 1, max_events=budget)
    t0 = runtime.sim.now
    done0 = [stats.minibatches_done for stats in runtime.stats]
    runtime.run_until_global_version(total_waves - 1, max_events=budget)
    window = runtime.sim.now - t0
    completions = tuple(
        stats.minibatches_done - before
        for stats, before in zip(runtime.stats, done0)
    )
    return window, completions, runtime.sim.now


def _jsonable(value: Any, depth: int = 0) -> Any:
    """A JSON-safe view of arbitrary oracle/runtime internals.

    Plain containers and scalars pass through (tuple keys stringify);
    anything else degrades to ``repr`` — diagnostics must never raise.
    """
    if depth > 5:
        return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        out = {}
        for index, (key, val) in enumerate(value.items()):
            if index >= 256:
                out["_truncated"] = f"{len(value) - 256} more entries"
                break
            out[str(key)] = _jsonable(val, depth + 1)
        return out
    if isinstance(value, (list, tuple, set, frozenset, deque)):
        items = list(value)
        out = [_jsonable(v, depth + 1) for v in items[:256]]
        if len(items) > 256:
            out.append(f"... {len(items) - 256} more")
        return out
    return repr(value)


def _oracle_state(oracles) -> dict[str, Any]:
    """Each oracle's internal state (its ``runtime`` back-ref excluded)."""
    state: dict[str, Any] = {}
    for oracle in oracles:
        raw = getattr(oracle, "__dict__", None)
        if raw is None:
            raw = {
                slot: getattr(oracle, slot)
                for slot in getattr(type(oracle), "__slots__", ())
                if hasattr(oracle, slot)
            }
        state[type(oracle).__name__] = {
            key: _jsonable(val) for key, val in raw.items() if key != "runtime"
        }
    return state


def _snapshots(runtime: HetPipeRuntime) -> dict[str, Any]:
    """Engine, PS, pipeline, and fabric queue state at end of run."""
    sim = runtime.sim
    ps = runtime.ps
    ps_delay, ps_depth = ps.queue_stats()
    snap: dict[str, Any] = {
        "sim": {
            "now": sim.now,
            "events_processed": sim.events_processed,
            "events_fast_forwarded": sim.events_fast_forwarded,
            "queue_depth": sim.queue_depth,
        },
        "ps": {
            "global_version": ps.global_version,
            "pushed_wave": list(ps.pushed_wave),
            "pushes_completed": ps.pushes_completed,
            "pulls_completed": ps.pulls_completed,
            "sync_bytes_total": ps.sync_bytes_total,
            "sync_bytes_cross_node": ps.sync_bytes_cross_node,
            "queue_delay_total": ps_delay,
            "max_queue_depth": ps_depth,
        },
        "pipelines": [
            {
                "name": getattr(pipeline, "name", f"vw{index}"),
                "minibatches_done": stats.minibatches_done,
                "waves": len(stats.wave_times),
            }
            for index, (pipeline, stats) in enumerate(
                zip(runtime.pipelines, runtime.stats)
            )
        ],
    }
    fabric = runtime.fabric
    if fabric is not None:
        snap["fabric"] = {
            "queue_delay_total": fabric.queue_delay_total,
            "links": [
                {
                    "name": link.name,
                    "kind": link.kind,
                    "utilization": link.utilization(),
                    "queue_delay_total": link.queue_delay_total,
                    "max_queue_depth": link.max_queue_depth,
                }
                for link in fabric.links()
            ],
            "recent_flows": [
                {
                    "src": repr(flow.src),
                    "dst": repr(flow.dst),
                    "nbytes": flow.nbytes,
                    "start": flow.start,
                    "done": flow.done,
                    "tag": flow.tag,
                    "wait": flow.wait,
                    "path": list(flow.path),
                }
                for flow in fabric.flows[-_SNAPSHOT_FLOWS:]
            ],
        }
    return snap


def run_scenario(
    spec: ScenarioSpec | RunSpec,
    fidelity: str | None = None,
    verify_equivalence: bool | None = None,
    capture_diagnostics: bool = False,
) -> ScenarioResult:
    """Execute one scenario end to end and return its verdict.

    ``spec`` is canonically a typed :class:`~repro.api.spec.RunSpec`
    (every fuzz seed arrives as one); a legacy :class:`ScenarioSpec` is
    lifted into a RunSpec internally, so both entries run the exact
    same code and produce byte-identical digests.  The explicit
    ``fidelity`` / ``verify_equivalence`` arguments, when given,
    override the spec's fidelity section.

    Shared-network scenarios additionally run their dedicated twin and
    assert the contention oracle: adding contention (and a congested
    fabric) can only slow a run down, so the shared makespan must be at
    least the dedicated one.  Variants whose admission gates are
    timing-dependent (wave flush, version windows) are exempt — their
    gates admit based on *when* completions and pulls land, so the two
    fabrics execute genuinely different admission schedules and the
    monotone-makespan premise does not hold.

    ``fidelity="full"`` (the default) is the historical bit-identical
    contract: digests hash every raw record under ``hetpipe-trace/1``.
    ``fidelity="fast_forward"`` coalesces confirmed steady-state cycles
    and hashes under the semantic ``hetpipe-trace/2`` schema; with
    ``verify_equivalence`` (the default under fast_forward) the full-
    fidelity twin also runs and any deviation of makespan, utilization,
    counts, or staleness statistics beyond 1e-9 relative is reported as
    an ``equivalence:`` violation.
    """
    if isinstance(spec, RunSpec):
        run = spec
        if fidelity is not None and fidelity != run.fidelity.fidelity:
            run = replace(run, fidelity=replace(run.fidelity, fidelity=fidelity))
        if (
            verify_equivalence is not None
            and verify_equivalence != run.fidelity.verify_equivalence
        ):
            run = replace(
                run,
                fidelity=replace(run.fidelity, verify_equivalence=verify_equivalence),
            )
    else:
        run = spec.to_run_spec(
            fidelity=fidelity if fidelity is not None else "full",
            verify_equivalence=verify_equivalence,
        )
    fidelity = run.fidelity.fidelity
    validate_fidelity(fidelity)
    verify_equivalence = run.fidelity.verify_equivalence
    if verify_equivalence is None:
        verify_equivalence = fidelity == "fast_forward"
    violations: list[str] = []
    # The spec's oracle suite, via the registry: "default" is the full
    # always-on suite; misses raise UnknownNameError naming what exists.
    from repro.api.registry import ORACLES

    oracles = ORACLES.get(run.oracles)()
    scenario = build_scenario(run)
    spec = scenario.spec
    shared = spec.network_model == "shared"
    fabric_spec = congested_fabric_spec(spec.seed) if shared else DEFAULT_FABRIC_SPEC
    # Storage stays off: the oracles are live subscribers and the digest
    # is folded in record-by-record, so memory no longer grows with the
    # run's makespan (the digest value is identical to the stored-record
    # hash the harness used to compute).
    trace = Trace(enabled=False, digest=True, schema=1 if fidelity == "full" else 2)
    ring: deque | None = None
    if capture_diagnostics:
        # Last-N trace records for the diagnostics bundle.  A plain
        # subscriber: the digest hashes before subscribers run, so
        # capture never perturbs replay identity.
        capacity = (
            run.observability.ring_buffer
            if run.observability is not None
            else DEFAULT_DIAGNOSTIC_RING
        )
        ring = deque(maxlen=capacity)
        trace.subscribe(
            lambda r: ring.append((r.time, r.category, r.actor, dict(r.detail)))
        )
    total_waves = spec.warmup_waves + spec.measured_waves
    expected_minibatches = (
        len(scenario.plans) * (total_waves + spec.d + 3) * spec.nm
    )
    budget = EVENTS_PER_MINIBATCH * expected_minibatches * max(
        plan.k for plan in scenario.plans
    )
    faulted = run.faults is not None
    if faulted:
        # Retries, re-queued work, and re-earned minibatches all cost
        # extra events; recovery must not be mistaken for a storm.
        budget *= 4

    window = 0.0
    completions: tuple[int, ...] = tuple(0 for _ in scenario.plans)
    throughput = 0.0
    makespan = 0.0
    dedicated_makespan = 0.0
    equivalence_checked = False
    runtime = _build_runtime(scenario, run, fidelity, trace, oracles, fabric_spec)
    try:
        if faulted:
            # The fault-free baseline of the *same* run (same network
            # model): the horizon the schedule's time fractions scale
            # by, and the degradation oracle's yardstick.
            from repro.faults import FaultInjector, FaultTargets, compile_schedule

            horizon = _makespan_only(
                scenario, run, budget, keep_network=True, fabric_spec=fabric_spec
            )
            targets = FaultTargets(
                num_virtual_workers=len(scenario.plans),
                stages_per_worker=tuple(plan.k for plan in scenario.plans),
                node_ids=tuple(node.node_id for node in scenario.cluster.nodes),
                shards=run.pipeline.shards,
            )
            schedule = compile_schedule(run.faults, targets, horizon, spec.seed)
            if schedule:
                FaultInjector(runtime, schedule, run.faults, horizon).arm()
            # An empty schedule arms nothing: the run (checkpoint
            # cadence included) stays bit-identical to faults-off.
        window, completions, makespan = _drive_main(runtime, spec, budget)
        throughput = (
            sum(completions) * scenario.model.batch_size / window if window > 0 else 0.0
        )
        runtime.check_invariants()
        if not faulted:
            # The differential/contention envelopes assume a fault-free
            # run; under injection the graceful-degradation oracles own
            # the timing verdict instead.
            _check_bounds(scenario, runtime, window, completions, violations, fabric_spec)
        from repro.pipeline.variants import get_variant

        variant_def = get_variant(spec.variant)
        # Wave-flush / version-window gates admit on completion and
        # pull *timing*, so the shared run and its dedicated twin are
        # different admission schedules, not the same workload slowed
        # down — the monotone-makespan comparison is only sound for
        # variants that add no timing-dependent gate.
        timing_dependent_gate = (
            variant_def.wave_flush or variant_def.version_window is not None
        )
        if shared and not faulted and not timing_dependent_gate:
            dedicated_makespan = _makespan_only(scenario, run, budget)
            if makespan < dedicated_makespan * (1.0 - 1e-9):
                violations.append(
                    f"contention: shared makespan {makespan:.6f}s beat the "
                    f"dedicated twin's {dedicated_makespan:.6f}s (contention "
                    f"cannot speed a run up)"
                )
        if (
            fidelity == "fast_forward"
            and verify_equivalence
            and not faulted
            and runtime.sim.events_fast_forwarded > 0
        ):
            # The semantic-equivalence oracle: the full-fidelity twin of
            # the same spec must agree on every contract observable.
            # Runs only when the main run actually coalesced something —
            # a run that never skipped (jitter, shared fabric, refused
            # cycles) *is* the full trajectory, and re-simulating it to
            # compare two bit-identical runs proves nothing.
            twin = _build_runtime(
                scenario, run, "full", Trace(enabled=False),
                [StalenessOracle()], fabric_spec,
            )
            twin_window, _, _ = _drive_main(twin, spec, budget)
            violations.extend(
                compare_fingerprints(
                    semantic_fingerprint(twin), semantic_fingerprint(runtime)
                )
            )
            scale = max(abs(twin_window), abs(window), 1e-12)
            if abs(twin_window - window) > 1e-9 * scale:
                violations.append(
                    f"equivalence: measured window full={twin_window!r} "
                    f"fast_forward={window!r}"
                )
            equivalence_checked = True
    except (InvariantViolation, SimulationError) as exc:
        violations.append(f"{type(exc).__name__}: {exc}")

    pipe_digest, pipe_events, pipe_ff = _check_1f1b(scenario, violations, fidelity)
    combined = hashlib.sha256(
        (trace.digest() + pipe_digest).encode()
    ).hexdigest()
    main_events = runtime.sim.events_processed
    main_ff = runtime.sim.events_fast_forwarded
    diagnostics: dict | None = None
    if capture_diagnostics and violations:
        logger.info(
            "seed %d: capturing diagnostics for %d violation(s)",
            spec.seed, len(violations),
        )
        diagnostics = {
            "spec_hash": run.spec_hash,
            "violations": list(violations),
            "trace_ring": [
                (time, category, actor, _jsonable(detail))
                for time, category, actor, detail in ring
            ],
            "oracle_state": _oracle_state(oracles),
            "snapshots": _snapshots(runtime),
        }
        injector = runtime.fault_injector
        if injector is not None:
            # Nested under snapshots so write_bundle persists it (the
            # bundle format has fixed top-level files).
            state = injector.state
            diagnostics["snapshots"]["faults"] = {
                "horizon": injector.horizon,
                "schedule": [e.describe() for e in injector.schedule],
                "fired": [e.describe() for e in injector.fired],
                "recovered": [e.describe() for e in injector.recovered],
                "retries_attempted": state.retries_attempted,
                "sends_blocked": state.sends_blocked,
                "sends_resolved": state.sends_resolved,
                "checkpoints": list(state.checkpoints),
                "down_nodes": sorted(state.down_nodes),
                "structural_change": runtime._structural_change,
            }
    return ScenarioResult(
        spec=spec,
        digest=combined,
        violations=tuple(violations),
        throughput=throughput,
        window=window,
        events=main_events,
        per_vw_completions=completions,
        makespan=makespan,
        dedicated_makespan=dedicated_makespan,
        fidelity=fidelity,
        events_simulated=main_events + pipe_events,
        events_fast_forwarded=main_ff + pipe_ff,
        equivalence_checked=equivalence_checked,
        spec_hash=run.spec_hash,
        diagnostics=diagnostics,
    )


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz batch."""

    results: list[ScenarioResult] = field(default_factory=list)
    #: seed -> diagnostics-bundle directory, for failures re-captured
    #: under ``run_fuzz(..., bundle_dir=...)``
    bundle_paths: dict[int, str] = field(default_factory=dict)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.ok]

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    @property
    def events_simulated(self) -> int:
        return sum(r.events_simulated for r in self.results)

    @property
    def events_fast_forwarded(self) -> int:
        return sum(r.events_fast_forwarded for r in self.results)

    @property
    def equivalence_checks(self) -> int:
        return sum(1 for r in self.results if r.equivalence_checked)

    @property
    def equivalence_failures(self) -> int:
        return sum(
            1
            for r in self.results
            if any(v.startswith("equivalence:") for v in r.violations)
        )

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.results)} scenarios, "
            f"{len(self.failures)} failing, {self.total_violations} violations"
        ]
        if any(r.fidelity != "full" for r in self.results):
            simulated = self.events_simulated
            coalesced = self.events_fast_forwarded
            total = simulated + coalesced
            share = coalesced / total if total else 0.0
            lines.append(
                f"fast-forward: {coalesced} of {total} events coalesced "
                f"({share:.1%}); {self.equivalence_checks} equivalence checks, "
                f"{self.equivalence_failures} failures"
            )
        for result in self.failures:
            lines.append(f"  seed {result.spec.seed}: {result.spec.describe()}")
            for violation in result.violations:
                lines.append(f"    - {violation}")
            bundle = self.bundle_paths.get(result.spec.seed)
            if bundle is not None:
                lines.append(f"    bundle: {bundle}")
        return "\n".join(lines)


def _fuzz_run_spec(
    seed: int,
    network_model: str,
    fidelity: str,
    verify_equivalence: bool | None,
    waves_scale: int,
    shards: int,
    shard_placement: str,
    faults: bool = False,
    variant: str = "vw_hetpipe",
) -> RunSpec:
    """The exact RunSpec one fuzz seed runs under.

    Shared between the worker (:func:`_fuzz_one`) and the parent's
    diagnostics re-capture, so a bundle's ``spec.json`` is guaranteed to
    reproduce the worker's run bit for bit.
    """
    scenario = generate_scenario(seed)
    spec = replace(
        scenario.spec,
        network_model=network_model,
        shards=shards,
        shard_placement=shard_placement,
        variant=variant,
    )
    run = spec.to_run_spec(
        fidelity=fidelity,
        verify_equivalence=verify_equivalence,
        waves_scale=waves_scale,
    )
    if faults:
        # The fault axis rides on top of the unchanged scenario draw (a
        # seed still denotes the same deployment); the schedule comes
        # from its own seeded stream, and the graceful-degradation
        # oracle suite replaces the fault-free timing envelopes.
        from repro.faults import draw_fault_spec

        run = replace(run, faults=draw_fault_spec(seed), oracles="faults")
    return run


def _fuzz_one(
    args: tuple[int, str, str, bool | None, int, int, str, bool, str]
) -> ScenarioResult:
    """Run a single seed end to end (the :func:`sweep_map` work item).

    The generated scenario is lifted into a typed
    :class:`~repro.api.spec.RunSpec` — the canonical construction path
    for every fuzz seed — before execution, so each result carries the
    ``spec_hash`` of its exact configuration.  Module-level and
    argument-pure so worker processes can import it by reference;
    generation failures are reported as findings rather than raised —
    the harness's contract is that *any* seed yields a verdict.
    """
    (
        seed, network_model, fidelity, verify_equivalence,
        waves_scale, shards, shard_placement, faults, variant,
    ) = args
    try:
        run = _fuzz_run_spec(
            seed, network_model, fidelity, verify_equivalence,
            waves_scale, shards, shard_placement, faults, variant,
        )
        return run_scenario(run)
    except ReproError as exc:
        return ScenarioResult(
            spec=ScenarioSpec(
                seed=seed, node_codes="?", gpus_per_node=0, allocation="?",
                batch_size=0, image_size=0, conv_widths=(), fc_dims=(),
                nm=0, d=0, placement="?", jitter=0.0,
                push_every_minibatch=False, warmup_waves=0, measured_waves=0,
            ),
            digest="",
            violations=(f"generation: {type(exc).__name__}: {exc}",),
            throughput=0.0,
            window=0.0,
            events=0,
            per_vw_completions=(),
            fidelity=fidelity,
        )


def run_fuzz(
    seeds: Iterable[int],
    verbose_log=None,
    network_model: str = "dedicated",
    jobs: int | None = 1,
    fidelity: str = "full",
    verify_equivalence: bool | None = None,
    waves_scale: int = 1,
    shards: int = 1,
    shard_placement: str = "size_balanced",
    bundle_dir: str | None = None,
    faults: bool = False,
    variant: str = "vw_hetpipe",
) -> FuzzReport:
    """Generate and run the scenario for every seed.

    ``verbose_log`` (e.g. ``print``) receives one line per scenario, in
    seed order regardless of ``jobs``.
    ``network_model="shared"`` reruns the same seeded scenarios on the
    contention-aware fabric (with a seed-drawn congested topology) under
    the additional flow-conservation / utilization / makespan oracles;
    the scenario draw itself is unaffected, so a seed always denotes the
    same deployment in both modes.
    ``jobs`` fans seeds out across worker processes via
    :func:`repro.exec.sweep_map` (``None`` = one per CPU); every seed is
    an independent deterministic simulation, so the report — digests
    included — is bit-identical to a serial run.
    ``fidelity="fast_forward"`` coalesces steady-state cycles under the
    semantic-equivalence contract; ``verify_equivalence`` (defaulting to
    on under fast_forward) also runs every scenario's full-fidelity twin
    and reports contract deviations as violations.
    ``waves_scale`` multiplies each scenario's measured window — the
    long-horizon workload where coalescing is asymptotically faster.
    Digests at the default scale 1 and fidelity "full" are bit-identical
    to the historical harness.
    ``shards``/``shard_placement`` rerun the same seeded scenarios with
    a K-way sharded PS (the scenario draw itself never shards, so the
    default keeps every digest frozen).
    ``bundle_dir``, when set, re-runs every oracle-violating seed with
    diagnostics capture and writes one bundle directory per failure
    (see :mod:`repro.obs.bundle`); the report's summary references each
    bundle next to its violations.
    ``faults`` draws a seeded fault schedule per scenario (stragglers,
    crash/rejoin, link degradation, PS failures) and swaps the oracle
    suite for the graceful-degradation family; off (the default) keeps
    every digest frozen.
    ``variant`` reruns the same seeded scenarios under a pipeline-variant
    zoo entry (PipeDream / 2BW / GPipe / XPipe semantics and their
    per-variant staleness/ledger oracles); the scenario draw itself
    never varies, so the default keeps every digest frozen.  Unknown
    names raise :class:`~repro.errors.UnknownNameError` listing the zoo.
    """
    from repro.exec import sweep_map
    from repro.pipeline.variants import get_variant

    validate_fidelity(fidelity)
    get_variant(variant)  # fail fast, before any worker fans out
    seeds = list(seeds)
    logger.info(
        "fuzz: %d seeds, network=%s fidelity=%s shards=%d faults=%s "
        "variant=%s jobs=%s",
        len(seeds), network_model, fidelity, shards, faults, variant, jobs,
    )
    on_result = None
    if verbose_log is not None:
        on_result = lambda index, result: verbose_log(result.describe())  # noqa: E731
    results = sweep_map(
        _fuzz_one,
        [
            (
                seed, network_model, fidelity, verify_equivalence,
                waves_scale, shards, shard_placement, faults, variant,
            )
            for seed in seeds
        ],
        jobs=jobs,
        on_result=on_result,
    )
    report = FuzzReport(results=results)
    if bundle_dir is not None:
        from repro.obs.bundle import write_bundle

        for result in report.failures:
            if all(v.startswith("generation:") for v in result.violations):
                continue  # no runnable spec to capture or replay
            seed = result.spec.seed
            run = _fuzz_run_spec(
                seed, network_model, fidelity, verify_equivalence,
                waves_scale, shards, shard_placement, faults, variant,
            )
            logger.info("seed %d failed; re-running with diagnostics capture", seed)
            captured = run_scenario(run, capture_diagnostics=True)
            diagnostics = captured.diagnostics or {
                "violations": list(captured.violations)
            }
            report.bundle_paths[seed] = write_bundle(bundle_dir, run, diagnostics)
    return report
