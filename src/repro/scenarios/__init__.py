"""Scenario fuzzing: seeded deterministic configurations + oracles.

* :mod:`repro.scenarios.generator` — seed -> :class:`ScenarioSpec` ->
  materialized cluster/model/plans.
* :mod:`repro.scenarios.runner` — run a scenario end to end under the
  invariant oracles of :mod:`repro.sim.invariants` and the differential
  envelopes of :mod:`repro.training.theory`.

Entry point: ``repro fuzz --seeds N`` (see :mod:`repro.cli`), or
:func:`run_fuzz` programmatically.
"""

from repro.scenarios.generator import (
    Scenario,
    ScenarioSpec,
    build_fuzz_model,
    congested_fabric_spec,
    generate_run_spec,
    generate_scenario,
    materialize,
)
from repro.scenarios.runner import (
    FuzzReport,
    ScenarioResult,
    run_fuzz,
    run_scenario,
)

__all__ = [
    "FuzzReport",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "build_fuzz_model",
    "congested_fabric_spec",
    "generate_run_spec",
    "generate_scenario",
    "materialize",
    "run_fuzz",
    "run_scenario",
]
