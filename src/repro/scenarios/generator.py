"""Seeded scenario generation for the fuzz harness.

A *scenario* is one complete HetPipe deployment: a heterogeneous cluster
drawn from the GPU catalog, a synthetic model chain, an allocation
policy, partition plans from the real planner, and the WSP knobs the
paper sweeps (``D``, ``Nm``, parameter placement, task jitter, and the
per-minibatch-push ablation).  Generation is driven entirely by one
``random.Random(seed)`` stream, so a seed fully determines the scenario
and — because the simulator itself is deterministic — the entire run,
down to the trace digest.

The split between :class:`ScenarioSpec` (a frozen, replayable value
object) and :func:`materialize` (spec -> built objects) means a failing
seed can be re-run bit-identically from just its spec.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from functools import lru_cache

from repro.allocation import allocate
from repro.cluster.catalog import paper_cluster
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, PartitionError
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.netsim.fabric import FabricSpec
from repro.models.graph import ModelGraph, validate_chain
from repro.models.layers import conv_unit, fc_unit, pool_unit
from repro.models.profiler import Profiler
from repro.partition import PartitionPlan, plan_virtual_worker
from repro.units import BYTES_PER_PARAM
from repro.wsp.placement import validate_local_placement

#: GPU catalog codes scenarios draw node types from (Table 1).
GPU_CODES = "VRGQ"

#: How many deterministic shrink steps may be applied to an infeasible
#: model before generation gives up (never reached in practice — the
#: size caps below fit the smallest catalog GPU at Nm=1).
MAX_SHRINK_STEPS = 4


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully-determined fuzz scenario (replayable value object)."""

    seed: int
    # cluster
    node_codes: str
    gpus_per_node: int
    allocation: str
    # model
    batch_size: int
    image_size: int
    conv_widths: tuple[int, ...]
    fc_dims: tuple[int, ...]
    # WSP knobs
    nm: int
    d: int
    placement: str
    jitter: float
    push_every_minibatch: bool
    # measurement window (global waves)
    warmup_waves: int
    measured_waves: int
    #: "dedicated" (historical private links; the default keeps seed
    #: digests bit-identical) or "shared" (contention-aware fabric with a
    #: congested topology drawn deterministically from the seed)
    network_model: str = "dedicated"
    #: PS shard slots per stage; the generator never draws shards (the
    #: seed -> scenario mapping and digests stay frozen) — overrides come
    #: from ``repro fuzz --shards`` or a spec's pipeline section
    shards: int = 1
    shard_placement: str = "size_balanced"
    #: pipeline-variant semantics (see :mod:`repro.pipeline.variants`);
    #: the generator never draws a variant — overrides come from
    #: ``repro fuzz --variant`` or a spec's pipeline section, so every
    #: seed's default scenario (and digest) stays frozen
    variant: str = "vw_hetpipe"
    #: enforce per-GPU capacity in planning with the variant's
    #: weight-version accounting (never drawn; spec-only)
    memory_limited: bool = False

    def to_run_spec(
        self,
        fidelity: str = "full",
        verify_equivalence: bool | None = None,
        waves_scale: int = 1,
    ):
        """Lift this scenario into the typed API's :class:`RunSpec`.

        The RunSpec is the canonical interchange form: the fuzz runner
        reconstructs an identical ``ScenarioSpec`` from it (see
        :func:`repro.api.build.run_to_scenario_spec`), so a seed's run —
        digest included — is bit-identical through either entry.
        """
        from repro.api.build import scenario_spec_to_run

        return scenario_spec_to_run(
            self,
            fidelity=fidelity,
            verify_equivalence=verify_equivalence,
            waves_scale=waves_scale,
        )

    def describe(self) -> str:
        return (
            f"seed={self.seed} cluster={self.node_codes}x{self.gpus_per_node} "
            f"alloc={self.allocation} layers={len(self.conv_widths)}c+{len(self.fc_dims)}f "
            f"Nm={self.nm} D={self.d} place={self.placement} jitter={self.jitter} "
            f"{'push/mb ' if self.push_every_minibatch else ''}"
            f"waves={self.warmup_waves}+{self.measured_waves}"
            # appended only for shared runs so dedicated output is
            # byte-identical to the pre-netsim harness
            f"{' net=shared' if self.network_model == 'shared' else ''}"
            # likewise only for sharded-PS runs
            f"{f' shards={self.shards}:{self.shard_placement}' if self.shards > 1 else ''}"
            # and only for non-default pipeline variants
            f"{f' variant={self.variant}' if self.variant != 'vw_hetpipe' else ''}"
            f"{' memcap' if self.memory_limited else ''}"
        )


def build_fuzz_model(
    name: str,
    batch_size: int,
    image_size: int,
    conv_widths: tuple[int, ...],
    fc_dims: tuple[int, ...],
) -> ModelGraph:
    """A synthetic conv->pool->fc chain sized by the spec's knobs.

    Shapes follow the VGG builder's idiom (conv stacks with pools every
    other unit, then a small FC head) but every dimension is a fuzz
    variable, so depth, width, activation volume, and parameter volume
    all vary independently across seeds.
    """
    layers = []
    h = image_size
    cin = 3
    for i, cout in enumerate(conv_widths):
        layers.append(
            conv_unit(f"conv{i}", batch_size, cin, cout, 3, h, h, with_bn=(i % 2 == 0))
        )
        cin = cout
        if i % 2 == 1 and h > 4:
            h //= 2
            layers.append(pool_unit(f"pool{i}", batch_size, cout, h, h))
    prev = cin * h * h
    for j, dim in enumerate(fc_dims):
        layers.append(fc_unit(f"fc{j}", batch_size, prev, dim, with_relu=True))
        prev = dim
    layers.append(fc_unit("logits", batch_size, prev, 10))
    validate_chain(layers)
    return ModelGraph(
        name=name,
        batch_size=batch_size,
        input_bytes=float(batch_size) * 3 * image_size * image_size * BYTES_PER_PARAM,
        layers=tuple(layers),
    )


@dataclass(frozen=True)
class Scenario:
    """A spec together with its materialized objects."""

    spec: ScenarioSpec
    cluster: Cluster
    model: ModelGraph
    plans: tuple[PartitionPlan, ...]


def materialize(spec: ScenarioSpec) -> Scenario:
    """Build the cluster, model, and partition plans a spec describes.

    Deterministic: the same spec always yields identical objects.
    Raises :class:`PartitionError` if the spec is infeasible (the
    generator never emits such a spec) and :class:`ConfigurationError`
    for internally-inconsistent specs.

    Materialization is memoized: the fuzz flow builds the same spec
    several times (the generator's Nm descent, the runner, the dedicated
    twin), and planning is the expensive part.  The built objects are
    immutable, so sharing one :class:`Scenario` across runs is safe —
    every run constructs its own simulator, channels, and processors.
    The network model plays no part in planning, so specs differing only
    in ``network_model`` share an entry (re-wrapped with the requested
    spec).
    """
    canonical = (
        spec
        if spec.network_model == "dedicated"
        and spec.shards == 1
        and spec.shard_placement == "size_balanced"
        and (spec.variant == "vw_hetpipe" or spec.memory_limited)
        else replace(
            spec,
            network_model="dedicated",
            shards=1,
            shard_placement="size_balanced",
            # the variant only reaches planning through memory-limited
            # weight-version accounting; otherwise plans are identical
            # and specs differing only in variant share one entry
            variant=spec.variant if spec.memory_limited else "vw_hetpipe",
        )
    )
    scenario = _materialize_cached(canonical)
    if scenario.spec is spec or scenario.spec == spec:
        return scenario
    return Scenario(
        spec=spec, cluster=scenario.cluster, model=scenario.model, plans=scenario.plans
    )


@lru_cache(maxsize=128)
def _materialize_cached(spec: ScenarioSpec) -> Scenario:
    cluster = paper_cluster(node_codes=spec.node_codes, gpus_per_node=spec.gpus_per_node)
    model = build_fuzz_model(
        f"fuzz{spec.seed}", spec.batch_size, spec.image_size,
        spec.conv_widths, spec.fc_dims,
    )
    assignment = allocate(cluster, spec.allocation)
    profiler = Profiler(DEFAULT_CALIBRATION)
    if spec.memory_limited:
        from repro.pipeline.variants import get_variant

        weight_policy = get_variant(spec.variant).weight_policy
    else:
        weight_policy = "stash_per_minibatch"
    plans = tuple(
        plan_virtual_worker(
            model, vw, spec.nm, cluster.interconnect,
            DEFAULT_CALIBRATION, profiler, search_orderings=False,
            weight_policy=weight_policy,
        )
        for vw in assignment.virtual_workers
    )
    if spec.placement == "local":
        validate_local_placement(plans)
    return Scenario(spec=spec, cluster=cluster, model=model, plans=plans)


def congested_fabric_spec(seed: int) -> FabricSpec:
    """A deterministically-drawn congested fabric for shared-mode fuzzing.

    Drawn from an rng stream *independent* of the scenario draw, so
    enabling the shared network never perturbs which scenario a seed
    maps to (dedicated digests stay bit-identical).  Scales at or below
    1.0 model oversubscribed lanes/NICs; every path stays at least as
    slow as the dedicated model, which is what the
    ``shared makespan >= dedicated makespan`` oracle relies on.
    """
    rng = random.Random(f"netsim-{seed}")
    return FabricSpec(
        pcie_lane_scale=rng.choice([0.5, 0.75, 1.0]),
        pcie_switch_scale=rng.choice([1.0, 1.5, 2.0]),
        nic_scale=rng.choice([0.25, 0.5, 1.0]),
        ib_fabric_scale=rng.choice([None, 0.5, 1.0]),
    )


def _draw_candidate(rng: random.Random, seed: int) -> ScenarioSpec:
    """One unconstrained draw; feasibility is resolved by the caller."""
    num_nodes = rng.randint(1, 3)
    node_codes = "".join(rng.choice(GPU_CODES) for _ in range(num_nodes))
    gpus_per_node = rng.randint(1, 4)

    policies = ["NP", "ED"]
    if num_nodes >= 2 and num_nodes % 2 == 0 and gpus_per_node >= 4:
        policies.append("HD")
    allocation = rng.choice(policies)

    depth = rng.randint(4, 10)
    base = rng.choice([8, 16, 24, 32])
    conv_widths = tuple(min(96, base * (1 + i // 2)) for i in range(depth))
    fc_dims = tuple(rng.choice([64, 128, 256]) for _ in range(rng.randint(1, 3)))

    d = rng.randint(0, 4)
    return ScenarioSpec(
        seed=seed,
        node_codes=node_codes,
        gpus_per_node=gpus_per_node,
        allocation=allocation,
        batch_size=rng.choice([8, 16, 32]),
        image_size=rng.choice([16, 24, 32]),
        conv_widths=conv_widths,
        fc_dims=fc_dims,
        nm=rng.randint(1, 4),
        d=d,
        placement="default",  # revisited after planning
        jitter=rng.choice([0.0, 0.0, 0.05, 0.1, 0.2]),
        push_every_minibatch=(rng.random() < 0.15),
        warmup_waves=2,
        measured_waves=d + 3 + rng.randint(0, 2),
    )


def _shrunk(spec: ScenarioSpec) -> ScenarioSpec:
    """Deterministically halve the model so it fits smaller GPU sets."""
    return replace(
        spec,
        batch_size=max(4, spec.batch_size // 2),
        conv_widths=tuple(max(8, w // 2) for w in spec.conv_widths),
        fc_dims=tuple(max(32, f // 2) for f in spec.fc_dims),
    )


def generate_run_spec(seed: int):
    """The typed :class:`~repro.api.spec.RunSpec` for ``seed``.

    Same draw-and-repair procedure as :func:`generate_scenario` (the
    materialized objects are shared through the same memoization), but
    the emitted value is the declarative API form — serializable,
    hashable (``spec_hash``), and runnable via ``repro run``.
    """
    return generate_scenario(seed).spec.to_run_spec()


def generate_scenario(seed: int) -> Scenario:
    """The scenario for ``seed`` — same seed, same scenario, always.

    Drawn parameters that turn out infeasible are repaired
    deterministically: ``Nm`` steps down to the largest depth every
    virtual worker can plan, the model shrinks if even ``Nm = 1`` does
    not fit, and the 'local' placement is only kept when the §8.3
    precondition (stage ``s`` on one node across all workers) holds.
    """
    rng = random.Random(seed)
    spec = _draw_candidate(rng, seed)
    wants_local = rng.random() < 0.5

    for _ in range(MAX_SHRINK_STEPS + 1):
        for nm in range(spec.nm, 0, -1):
            try:
                scenario = materialize(replace(spec, nm=nm))
            except PartitionError:
                continue
            if wants_local:
                try:
                    validate_local_placement(scenario.plans)
                    return materialize(replace(spec, nm=nm, placement="local"))
                except ConfigurationError:
                    pass
            return scenario
        spec = _shrunk(spec)
    raise ConfigurationError(
        f"seed {seed}: no feasible scenario after {MAX_SHRINK_STEPS} shrink steps"
    )
