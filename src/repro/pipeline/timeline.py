"""ASCII Gantt timeline of a pipeline execution — Figure 1, live.

Renders the trace of a :class:`VirtualWorkerPipeline` run the way the
paper draws its Figure 1: one row per GPU, forward work as the
minibatch digit, backward work as a letter, idle as dots.  Useful for
eyeballing bubbles, wave boundaries and the fused last-stage tasks.

>>> # trace must be recorded with enabled=True
>>> # print(render_timeline(trace, plan, width=100))
"""

from __future__ import annotations

from repro.partition.spec import PartitionPlan
from repro.sim.trace import Trace

_FWD_GLYPHS = "0123456789"
_BWD_GLYPHS = "abcdefghij"


def _intervals(trace: Trace, actor: str):
    """Yield (start, end, kind, minibatch) task intervals for one stage."""
    pending: dict[tuple[str, int], float] = {}
    for record in trace:
        if record.actor != actor:
            continue
        minibatch = record.detail.get("minibatch")
        if record.category in ("f_start", "b_start", "fb_start"):
            pending[(record.category[0], minibatch)] = record.time
        elif record.category in ("f_done", "b_done", "fb_done"):
            key = (record.category[0], minibatch)
            start = pending.pop(key, None)
            if start is not None:
                kind = "F" if record.category == "f_done" else "B"
                if record.category == "fb_done":
                    kind = "X"  # fused forward+backward
                yield start, record.time, kind, minibatch


def render_timeline(
    trace: Trace,
    plan: PartitionPlan,
    vw_name: str = "vw0",
    width: int = 100,
    until: float | None = None,
) -> str:
    """Render the run as one character row per pipeline stage.

    Forward slots show the minibatch's last digit; backward slots show
    the corresponding letter (a=1 ... j=10, cycling); the fused
    last-stage task shows uppercase at forward glyphs for its whole
    span; '.' is idle.
    """
    records = trace.records
    if not records:
        return "(empty trace)"
    horizon = until if until is not None else max(r.time for r in records)
    if horizon <= 0:
        return "(nothing executed)"
    scale = width / horizon

    lines = [
        f"timeline of {vw_name} ({plan.model_name}, Nm={plan.nm}) — "
        f"{horizon * 1e3:.0f} ms across {width} cols; digits=fwd, letters=bwd, X=fused"
    ]
    for s in range(plan.k):
        row = ["."] * width
        for start, end, kind, minibatch in _intervals(trace, f"{vw_name}.s{s}"):
            if start >= horizon:
                continue
            lo = min(width - 1, int(start * scale))
            hi = min(width - 1, max(lo, int(end * scale) - 1))
            if kind == "F":
                glyph = _FWD_GLYPHS[minibatch % 10]
            elif kind == "B":
                glyph = _BWD_GLYPHS[minibatch % 10]
            else:
                glyph = "X"
            for col in range(lo, hi + 1):
                row[col] = glyph
        gpu = plan.stages[s].gpu
        lines.append(f"GPU{s} ({gpu.code}) |{''.join(row)}|")
    return "\n".join(lines)
