"""Pipeline scheduling variants — the ablations of Table 2.

* :class:`GPipeFlushGate` reproduces GPipe's behaviour: all minibatches
  of a wave use the same weights, and the pipeline *flushes* between
  waves (no minibatch of wave ``w`` starts until every minibatch of
  earlier waves has drained).  The flush bubbles are the "frequent
  pipeline flushes, possibly resulting in low GPU utilization" the paper
  quotes against GPipe (§2.3).
* :func:`measure_flush_pipeline` measures a plan under that gate so the
  ablation bench can quantify the flush penalty against HetPipe's
  continuous pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.topology import InterconnectSpec
from repro.errors import SimulationError
from repro.partition.spec import PartitionPlan
from repro.pipeline.tasks import wave_of
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim.engine import Simulator


@dataclass
class GPipeFlushGate:
    """Admit wave ``w`` only after all earlier waves fully completed."""

    nm: int
    limit: int  # total minibatches to admit (bounded measurement runs)
    completed: int = 0
    _wake: Callable[[], None] | None = None

    def may_start(self, minibatch: int) -> bool:
        if minibatch > self.limit:
            return False
        wave = wave_of(minibatch, self.nm)
        return self.completed >= wave * self.nm

    def subscribe(self, wake: Callable[[], None]) -> None:
        self._wake = wake

    def on_done(self) -> None:
        self.completed += 1
        if self._wake is not None:
            self._wake()


def measure_flush_pipeline(
    plan: PartitionPlan,
    interconnect: InterconnectSpec,
    batch_size: int,
    warmup_minibatches: int | None = None,
    measured_minibatches: int = 60,
) -> float:
    """GPipe-style throughput (images/s) of ``plan`` — flush every wave."""
    if warmup_minibatches is None:
        warmup_minibatches = 4 * plan.nm + 2 * plan.k
    total = warmup_minibatches + measured_minibatches
    sim = Simulator()
    gate = GPipeFlushGate(nm=plan.nm, limit=total)
    marks: dict[str, float] = {}

    def on_done(p: int, now: float) -> None:
        gate.on_done()
        if gate.completed == warmup_minibatches:
            marks["start"] = now
        elif gate.completed == total:
            marks["end"] = now

    pipeline = VirtualWorkerPipeline(
        sim, plan, interconnect, name=f"gpipe.{plan.model_name}", gate=gate, on_minibatch_done=on_done
    )
    pipeline.start()
    sim.run_until_idle()
    if "start" not in marks or "end" not in marks:
        raise SimulationError("flush pipeline did not finish its measurement window")
    window = marks["end"] - marks["start"]
    return measured_minibatches * batch_size / window
