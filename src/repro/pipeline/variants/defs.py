"""The pipeline-variant zoo: declarative semantics per variant.

A :class:`VariantDef` pins down the three axes on which the pipelined-
training literature differs while sharing HetPipe's execution substrate:

* **weight-version policy** (``weight_policy``) — how many extra weight
  copies a stage holds for ``m`` in-flight minibatches, consumed by
  :func:`repro.models.memory.stage_memory_bytes` and the memory-
  constrained planners:

  - ``"stash_per_minibatch"`` — PipeDream-style weight stashing: every
    in-flight minibatch beyond the current weights pins one version
    (``max(0, m - 1)`` copies).  This is also HetPipe's §4 accounting
    (``w_p`` is kept until ``p``'s backward pass), so ``vw_hetpipe``
    and ``pipedream`` share it.
  - ``"double_buffer"`` — PipeDream-2BW: gradients coalesce into one
    shadow copy, so at most one extra version exists regardless of
    depth (``1`` copy once ``m > 1``).
  - ``"single"`` — GPipe flush: a wave runs on one frozen version and
    drains before the next, so no extra copies (``0``).
  - ``"predicted"`` — XPipe: async weight prediction recomputes the
    effective weights from the live version plus momentum, replacing
    stashed copies (``0``).

* **admission/flush gate** (``wave_flush`` / ``version_window``) —
  extra admission conditions AND-composed with the runtime's WSP gate
  (see :mod:`repro.pipeline.variants.gates`).  The WSP gate itself is
  never tightened: its pull cadence is what completes waves, so a
  variant that lowered the effective ``D`` below the runtime's pull
  policy would deadlock rather than flush.

* **staleness contract** — what the oracles enforce.  Every variant
  keeps §5's missing-updates bound (:meth:`staleness_bound`: the
  substrate still pulls on HetPipe's schedule), and adds a per-variant
  cap on distinct live weight versions (:meth:`max_weight_versions`)
  checked against the runtime's stashed-version ledger: PipeDream's
  version-distance bound (at most ``Nm`` distinct versions in flight),
  2BW's two-version bound (gate-enforced), the flush variant's
  one-pull-per-wave bound, and ``None`` (unchecked) for the default so
  its runs are observationally identical to the pre-zoo tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownNameError

#: Weight-version policies a variant may declare (see module docstring).
WEIGHT_POLICIES = ("stash_per_minibatch", "double_buffer", "single", "predicted")


@dataclass(frozen=True)
class VariantDef:
    """Semantics of one pipeline variant (see module docstring)."""

    name: str
    #: one of :data:`WEIGHT_POLICIES` — drives memory accounting
    weight_policy: str
    #: admit wave ``w`` only after every earlier wave fully drained
    wave_flush: bool = False
    #: admission cap on distinct live weight versions (None = no cap)
    version_window: int | None = None
    #: ledger contract: "unchecked" | "in_flight" (<= Nm) | "fixed:N"
    version_contract: str = "unchecked"
    #: one-line description for docs and ``repro fuzz --variant`` output
    summary: str = ""

    def staleness_bound(self, d: int, nm: int) -> int:
        """§5 missing-updates admission bound for this variant.

        All variants run on the WSP substrate (same pull cadence, same
        admission arithmetic), so the bound is HetPipe's ``s_global``;
        the per-variant differentiation is the weight-version contract.
        """
        # Lazy: repro.wsp's package __init__ pulls the runtime, which
        # imports this package back — a module-level import here would
        # be circular whenever variants loads first.
        from repro.wsp.staleness import global_staleness, local_staleness

        return global_staleness(d, local_staleness(nm))

    def max_weight_versions(self, nm: int) -> int | None:
        """Ledger contract: max distinct weight versions alive in one
        pipeline, or ``None`` when this variant leaves it unchecked."""
        if self.version_contract == "unchecked":
            return None
        if self.version_contract == "in_flight":
            return nm
        return int(self.version_contract.partition(":")[2])

    def weight_version_count(self, in_flight: int) -> int:
        """Extra weight copies a stage holds at ``in_flight`` minibatches."""
        from repro.models.memory import weight_version_count

        return weight_version_count(self.weight_policy, in_flight)


#: Default variant — current behavior, byte-identical to the pre-zoo tree.
DEFAULT_VARIANT = "vw_hetpipe"

VARIANT_DEFS: dict[str, VariantDef] = {
    d.name: d
    for d in (
        VariantDef(
            name="vw_hetpipe",
            weight_policy="stash_per_minibatch",
            summary="HetPipe WSP (§4/§5): continuous pipeline, per-minibatch "
            "weight stashing, s_global admission (the default)",
        ),
        VariantDef(
            name="gpipe_flush",
            weight_policy="single",
            wave_flush=True,
            version_contract="fixed:2",
            summary="GPipe: flush between waves, one frozen version per wave "
            "(<= 2 alive while a pull lands mid-wave)",
        ),
        VariantDef(
            name="pipedream",
            weight_policy="stash_per_minibatch",
            version_contract="in_flight",
            summary="PipeDream: per-minibatch weight stashing, version "
            "distance bounded by the in-flight depth (<= Nm)",
        ),
        VariantDef(
            name="pipedream_2bw",
            weight_policy="double_buffer",
            version_window=2,
            version_contract="fixed:2",
            summary="PipeDream-2BW: double-buffered weights with gradient "
            "coalescing; admission blocks past 2 live versions",
        ),
        VariantDef(
            name="xpipe",
            weight_policy="predicted",
            version_contract="in_flight",
            summary="XPipe: async weight prediction replaces stashed "
            "versions (no version memory; ledger stays observation-bounded)",
        ),
    )
}


def variant_names() -> list[str]:
    return sorted(VARIANT_DEFS)


def get_variant(name: str) -> VariantDef:
    """Resolve a variant by name; unknown names raise the typed
    :class:`~repro.errors.UnknownNameError` listing what exists (the
    CLI maps it to exit code 2, matching planners/placements)."""
    try:
        return VARIANT_DEFS[name]
    except KeyError:
        raise UnknownNameError("pipeline variant", name, variant_names()) from None
