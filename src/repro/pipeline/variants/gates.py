"""Admission gates for the pipeline-variant zoo.

:class:`GPipeFlushGate` is the standalone Table-2 ablation gate (wave
flush with a bounded admission count, used by
:func:`~repro.pipeline.variants.measure.measure_flush_pipeline`).

The remaining gates are *conditions* the WSP runtime AND-composes with
its staleness gate via :class:`ComposedGate`:

* :class:`WaveFlushGate` — GPipe semantics inside a WSP run: a
  minibatch of wave ``w`` is admitted only once every earlier wave has
  drained from its own pipeline.
* :class:`VersionWindowGate` — PipeDream-2BW semantics: admission
  blocks while the pipeline's stashed-version ledger (plus the version
  the new minibatch would be stamped with) exceeds the window.

Neither condition needs its own wake plumbing: both can only *open* on
a minibatch completion (which re-runs admission via the pipeline's
``_minibatch_done`` -> ``_try_inject`` path) or on a version advance
(which wakes through the composed WSP gate), so ``subscribe`` is a
no-op and deadlock-freedom follows — in-flight minibatches drain
independently of admission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.pipeline.tasks import wave_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.virtual_worker import VirtualWorkerPipeline


@dataclass
class GPipeFlushGate:
    """Admit wave ``w`` only after all earlier waves fully completed."""

    nm: int
    limit: int  # total minibatches to admit (bounded measurement runs)
    completed: int = 0
    _wake: Callable[[], None] | None = None

    def may_start(self, minibatch: int) -> bool:
        if minibatch > self.limit:
            return False
        wave = wave_of(minibatch, self.nm)
        return self.completed >= wave * self.nm

    def subscribe(self, wake: Callable[[], None]) -> None:
        self._wake = wake

    def on_done(self) -> None:
        self.completed += 1
        if self._wake is not None:
            self._wake()


class WaveFlushGate:
    """Wave flush against the attached pipeline's completion counter.

    Reads ``pipeline.completed`` (public numbering), which fast-forward
    advances through the pipeline's own ``ff_advance`` — so the flush
    condition stays consistent across steady-state skips for free.
    """

    def __init__(self, nm: int) -> None:
        self.nm = nm
        self._pipeline: "VirtualWorkerPipeline | None" = None

    def attach(self, pipeline: "VirtualWorkerPipeline") -> None:
        self._pipeline = pipeline

    def may_start(self, minibatch: int) -> bool:
        completed = self._pipeline.completed if self._pipeline is not None else 0
        return completed >= wave_of(minibatch, self.nm) * self.nm

    def subscribe(self, wake: Callable[[], None]) -> None:
        pass  # completions re-run admission through the pipeline itself


class VersionWindowGate:
    """Cap the distinct weight versions alive in the attached pipeline.

    2BW keeps exactly two buffers; a minibatch whose admission would
    pin a third distinct version (its stamp is the currently pulled
    version; in-flight minibatches keep theirs) waits until older
    versions drain.
    """

    def __init__(self, max_versions: int) -> None:
        self.max_versions = max_versions
        self._pipeline: "VirtualWorkerPipeline | None" = None

    def attach(self, pipeline: "VirtualWorkerPipeline") -> None:
        self._pipeline = pipeline

    def may_start(self, minibatch: int) -> bool:
        pipeline = self._pipeline
        if pipeline is None:
            return True
        alive = set(pipeline.version_stamps.values())
        alive.add(pipeline.weight_version)
        return len(alive) <= self.max_versions

    def subscribe(self, wake: Callable[[], None]) -> None:
        pass  # opens only on completions (see module docstring)


class ComposedGate:
    """AND-composition of the runtime's WSP gate with variant conditions.

    Forwards the WSP gate's surface — ``pulled_version`` (read *and*
    written: fast-forward bulk-advances it) and ``advance`` — so the
    runtime's pull path and steady-state machinery work unchanged, and
    relays ``attach`` to conditions that read pipeline state.
    """

    def __init__(self, base, extras) -> None:
        self.base = base
        self.extras = tuple(extras)

    def may_start(self, minibatch: int) -> bool:
        if not self.base.may_start(minibatch):
            return False
        return all(extra.may_start(minibatch) for extra in self.extras)

    def subscribe(self, wake: Callable[[], None]) -> None:
        self.base.subscribe(wake)
        for extra in self.extras:
            extra.subscribe(wake)

    def attach(self, pipeline: "VirtualWorkerPipeline") -> None:
        for extra in self.extras:
            attach = getattr(extra, "attach", None)
            if attach is not None:
                attach(pipeline)

    def advance(self, version: int) -> None:
        self.base.advance(version)

    @property
    def pulled_version(self) -> int:
        return self.base.pulled_version

    @pulled_version.setter
    def pulled_version(self, version: int) -> None:
        self.base.pulled_version = version


def build_variant_gate(variant_def, base, nm: int):
    """The runtime's gate for ``variant_def``: the WSP ``base`` gate,
    AND-composed with the variant's extra conditions when it has any
    (the default variant gets ``base`` back untouched — bit-identical
    admission)."""
    extras = []
    if variant_def.wave_flush:
        extras.append(WaveFlushGate(nm))
    if variant_def.version_window is not None:
        extras.append(VersionWindowGate(variant_def.version_window))
    if not extras:
        return base
    return ComposedGate(base, extras)
