"""Pipeline scheduling variants — the zoo across the pipelined-training
literature, plus the original Table-2 GPipe ablation.

:mod:`~repro.pipeline.variants.defs` declares each variant's semantics
(:class:`VariantDef`: weight-version policy, admission/flush gate,
staleness contract) for ``vw_hetpipe`` (the default), ``gpipe_flush``,
``pipedream``, ``pipedream_2bw``, and ``xpipe``;
:mod:`~repro.pipeline.variants.gates` builds the admission gates the
WSP runtime composes per variant; and
:mod:`~repro.pipeline.variants.measure` keeps the standalone GPipe
flush-throughput measurement.  Name resolution goes through the
``VARIANTS`` registry in :mod:`repro.api.registry` (or directly via
:func:`get_variant`), both raising the typed
:class:`~repro.errors.UnknownNameError` on a miss.
"""

from repro.pipeline.variants.defs import (
    DEFAULT_VARIANT,
    VARIANT_DEFS,
    VariantDef,
    get_variant,
    variant_names,
)
from repro.pipeline.variants.gates import (
    ComposedGate,
    GPipeFlushGate,
    VersionWindowGate,
    WaveFlushGate,
    build_variant_gate,
)
from repro.pipeline.variants.measure import measure_flush_pipeline

__all__ = [
    "ComposedGate",
    "DEFAULT_VARIANT",
    "GPipeFlushGate",
    "VARIANT_DEFS",
    "VariantDef",
    "VersionWindowGate",
    "WaveFlushGate",
    "build_variant_gate",
    "get_variant",
    "measure_flush_pipeline",
    "variant_names",
]
