"""GPipe flush-pipeline measurement — the ablation of Table 2."""

from __future__ import annotations

from repro.cluster.topology import InterconnectSpec
from repro.errors import SimulationError
from repro.partition.spec import PartitionPlan
from repro.pipeline.variants.gates import GPipeFlushGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim.engine import Simulator


def measure_flush_pipeline(
    plan: PartitionPlan,
    interconnect: InterconnectSpec,
    batch_size: int,
    warmup_minibatches: int | None = None,
    measured_minibatches: int = 60,
) -> float:
    """GPipe-style throughput (images/s) of ``plan`` — flush every wave."""
    if warmup_minibatches is None:
        warmup_minibatches = 4 * plan.nm + 2 * plan.k
    total = warmup_minibatches + measured_minibatches
    sim = Simulator()
    gate = GPipeFlushGate(nm=plan.nm, limit=total)
    marks: dict[str, float] = {}

    def on_done(p: int, now: float) -> None:
        gate.on_done()
        if gate.completed == warmup_minibatches:
            marks["start"] = now
        elif gate.completed == total:
            marks["end"] = now

    pipeline = VirtualWorkerPipeline(
        sim, plan, interconnect, name=f"gpipe.{plan.model_name}", gate=gate, on_minibatch_done=on_done
    )
    pipeline.start()
    sim.run_until_idle()
    if "start" not in marks or "end" not in marks:
        raise SimulationError("flush pipeline did not finish its measurement window")
    window = marks["end"] - marks["start"]
    return measured_minibatches * batch_size / window
