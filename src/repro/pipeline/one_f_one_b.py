"""PipeDream-style one-forward-one-backward (1F1B) scheduling.

HetPipe schedules each GPU's ready tasks FIFO (§4 condition 3);
PipeDream instead *alternates* forward and backward work in steady
state, which bounds the number of stashed activations per stage without
an explicit admission cap.  The paper cites this scheduler (§2.3, §9:
"PipeDream employs the one-forward-one-backward scheduling algorithm")
— this module implements it as a drop-in scheduling variant so the
ablation bench can compare the two disciplines on identical partitions.

Implementation: instead of submitting tasks to the FIFO processor the
moment they become ready, each stage keeps explicit forward/backward
ready-queues and, whenever its GPU goes idle, dispatches a backward
task if one is ready (draining work out of the pipe first), otherwise a
forward task.  Conditions 1–2 (per-type minibatch order) still hold
because the queues are popped in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.topology import InterconnectSpec
from repro.errors import SimulationError
from repro.netsim.fabric import Fabric, FabricEdge
from repro.partition.spec import PartitionPlan
from repro.pipeline.virtual_worker import build_stage_edge
from repro.sim.engine import Simulator
from repro.sim.resources import Channel, Processor
from repro.sim.trace import Trace


@dataclass
class _Stage1F1B:
    processor: Processor
    to_next: "Channel | FabricEdge | None"
    to_prev: "Channel | FabricEdge | None"
    fwd_queue: list[int] = field(default_factory=list)
    bwd_queue: list[int] = field(default_factory=list)
    next_fwd: int = 1
    next_bwd: int = 1
    dispatching: bool = False


class OneFOneBPipeline:
    """A virtual-worker pipeline under 1F1B dispatch.

    Mirrors :class:`~repro.pipeline.virtual_worker.VirtualWorkerPipeline`
    closely enough for the metrics layer: ``completed``, ``done_times``
    and per-stage processors are exposed.  Admission keeps ``nm``
    minibatches in flight, as HetPipe does, so the comparison isolates
    the *dispatch discipline*.
    """

    def __init__(
        self,
        sim: Simulator,
        plan: PartitionPlan,
        interconnect: InterconnectSpec,
        limit: int,
        name: str = "1f1b",
        trace: Trace | None = None,
        fabric: Fabric | None = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.limit = limit
        self.name = name
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.fabric = fabric
        self.stages: list[_Stage1F1B] = []
        for stage in plan.stages:
            to_next = None
            to_prev = None
            if stage.index < plan.k - 1:
                nxt = plan.stages[stage.index + 1]
                to_next = build_stage_edge(
                    sim, interconnect, fabric, stage.gpu, nxt.gpu, f"{name}.act{stage.index}"
                )
            if stage.index > 0:
                prev = plan.stages[stage.index - 1]
                to_prev = build_stage_edge(
                    sim, interconnect, fabric, stage.gpu, prev.gpu, f"{name}.grad{stage.index}"
                )
            self.stages.append(
                _Stage1F1B(
                    processor=Processor(sim, f"{name}.gpu{stage.index}"),
                    to_next=to_next,
                    to_prev=to_prev,
                )
            )
        #: per-stage trace actor names, formatted once (emit is hot)
        self._actor = tuple(f"{name}.s{s}" for s in range(plan.k))
        self.next_minibatch = 1
        self.active = 0
        self.completed = 0
        self.done_times: dict[int, float] = {}
        #: fast-forward id translation (public id == raw id + mb_offset);
        #: 0 under full fidelity — see VirtualWorkerPipeline.mb_offset
        self.mb_offset = 0
        #: minibatches coalesced by fast-forward skips (diagnostics)
        self.minibatches_fast_forwarded = 0
        self._started = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise SimulationError(f"{self.name}: already started")
        self._started = True
        self._admit()

    def _admit(self) -> None:
        while self.active < self.plan.nm and self.next_minibatch + self.mb_offset <= self.limit:
            p = self.next_minibatch
            self.next_minibatch += 1
            self.active += 1
            self._enqueue_fwd(0, p)

    def _enqueue_fwd(self, s: int, p: int) -> None:
        self.stages[s].fwd_queue.append(p)
        self.trace.emit(self.sim.now, "f_ready", self._actor[s], minibatch=p + self.mb_offset)
        self._dispatch(s)

    def _enqueue_bwd(self, s: int, p: int) -> None:
        self.stages[s].bwd_queue.append(p)
        self.trace.emit(self.sim.now, "b_ready", self._actor[s], minibatch=p + self.mb_offset)
        self._dispatch(s)

    def _dispatch(self, s: int) -> None:
        """1F1B: when the GPU frees up, prefer backward work."""
        state = self.stages[s]
        if state.processor.busy or state.dispatching:
            return
        stage = self.plan.stages[s]
        last = s == self.plan.k - 1
        if state.bwd_queue and state.bwd_queue[0] == state.next_bwd:
            p = state.bwd_queue.pop(0)
            state.next_bwd += 1
            state.processor.submit(
                stage.bwd_compute,
                (lambda s=s, p=p: self._bwd_done(s, p)),
                tag=("B", p),
                on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "b_start", self._actor[s], minibatch=p + self.mb_offset)),
            )
        elif state.fwd_queue and state.fwd_queue[0] == state.next_fwd:
            p = state.fwd_queue.pop(0)
            state.next_fwd += 1
            if last:
                state.processor.submit(
                    stage.fwd_compute + stage.bwd_compute,
                    (lambda s=s, p=p: self._bwd_done(s, p)),
                    tag=("FB", p),
                    on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "fb_start", self._actor[s], minibatch=p + self.mb_offset)),
                )
            else:
                state.processor.submit(
                    stage.fwd_compute,
                    (lambda s=s, p=p: self._fwd_done(s, p)),
                    tag=("F", p),
                    on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "f_start", self._actor[s], minibatch=p + self.mb_offset)),
                )

    def _fwd_done(self, s: int, p: int) -> None:
        self.trace.emit(self.sim.now, "f_done", self._actor[s], minibatch=p + self.mb_offset)
        state = self.stages[s]
        nbytes = self.plan.stages[s + 1].activation_in_bytes
        assert state.to_next is not None
        state.to_next.transfer(nbytes, lambda: self._enqueue_fwd(s + 1, p))
        self._dispatch(s)

    def _bwd_done(self, s: int, p: int) -> None:
        last = s == self.plan.k - 1
        self.trace.emit(
            self.sim.now, "fb_done" if last else "b_done", self._actor[s],
            minibatch=p + self.mb_offset,
        )
        state = self.stages[s]
        if s > 0:
            nbytes = self.plan.stages[s].activation_in_bytes
            assert state.to_prev is not None
            state.to_prev.transfer(nbytes, lambda: self._enqueue_bwd(s - 1, p))
        else:
            pub = p + self.mb_offset
            self.completed += 1
            self.active -= 1
            self.done_times[pub] = self.sim.now
            self.trace.emit(self.sim.now, "minibatch_done", self.name, minibatch=pub)
            self._admit()
        self._dispatch(s)

    # ------------------------------------------------------------------
    # steady-state fast-forward (see repro.sim.fastforward)
    # ------------------------------------------------------------------

    def ff_counters(self) -> tuple:
        """Cumulative counters whose per-cycle deltas define steady state.

        Watermarks report in public numbering (raw + ``mb_offset``) so
        post-skip boundaries match the detector's rebased history — see
        VirtualWorkerPipeline.ff_counters.
        """
        offset = self.mb_offset
        values = [self.completed, self.next_minibatch + offset]
        for state in self.stages:
            values.append(state.next_fwd + offset)
            values.append(state.next_bwd + offset)
        return tuple(values)

    def ff_levels(self, now: float) -> tuple:
        """Structural state that must repeat exactly across cycles."""
        levels: list = [self.active]
        for state in self.stages:
            levels.append(
                (
                    state.dispatching,
                    tuple(p - state.next_fwd for p in state.fwd_queue),
                    tuple(p - state.next_bwd for p in state.bwd_queue),
                )
            )
        return tuple(levels)

    def ff_advance(self, cycles: int, deltas: tuple, dt: float) -> None:
        """Account ``cycles`` coalesced cycles: completions and the public
        id translation advance; raw scheduling state stays untouched."""
        advanced = cycles * deltas[0]
        self.completed += advanced
        self.mb_offset += advanced
        self.minibatches_fast_forwarded += advanced


def measure_1f1b_pipeline(
    plan: PartitionPlan,
    interconnect: InterconnectSpec,
    batch_size: int,
    warmup_minibatches: int | None = None,
    measured_minibatches: int = 60,
    fidelity="full",
) -> float:
    """Throughput (images/s) of ``plan`` under 1F1B dispatch.

    ``fidelity`` is canonically a :class:`repro.api.spec.FidelitySpec`;
    a bare ``"fast_forward"`` string still works as a deprecation shim.
    Fast-forward coalesces confirmed steady-state cycles (the 1F1B
    pipeline is deterministic, so long measurement windows collapse to
    warmup + detection + drain); the measured window is identical to
    the full run within the 1e-9 semantic contract because coalesced
    completion times are filled from the confirmed cycle.
    """
    from repro.api.spec import fidelity_mode
    from repro.sim.fastforward import run_pipeline_fast_forward, validate_fidelity

    fidelity = fidelity_mode(fidelity, "measure_1f1b_pipeline")
    validate_fidelity(fidelity)
    if warmup_minibatches is None:
        warmup_minibatches = 4 * plan.nm + 2 * plan.k
    total = warmup_minibatches + measured_minibatches
    sim = Simulator()
    pipeline = OneFOneBPipeline(sim, plan, interconnect, limit=total)
    pipeline.start()
    if fidelity == "fast_forward":
        run_pipeline_fast_forward(pipeline, total)
    else:
        sim.run_until_idle()
    if pipeline.completed != total:
        raise SimulationError(
            f"1F1B pipeline stalled at {pipeline.completed}/{total} minibatches"
        )
    t0 = pipeline.done_times[warmup_minibatches]
    t1 = pipeline.done_times[total]
    return measured_minibatches * batch_size / (t1 - t0)
