"""The virtual-worker pipeline simulator.

One instance drives one virtual worker: ``k`` stage processors (GPUs),
directional channels between adjacent stages, admission of up to ``Nm``
concurrent minibatches, and the §4 scheduling conditions.  It reports
minibatch completions to a listener (the WSP runtime aggregates them
into waves) and exposes the counters the metrics layer and the test
suite read: per-stage busy time, peak in-flight stash, per-minibatch
injection/completion times, and the local-staleness ledger.

Local staleness accounting: when minibatch ``p`` is injected, the number
of already-completed minibatches is recorded.  §4 requires that for
``p > slocal + 1`` the weights reflect at least all updates from
minibatches ``1 .. p - (slocal + 1)``; with admission bounded by ``Nm``
this holds by construction, and the recorded ledger lets tests assert it
rather than trust it.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.topology import InterconnectSpec
from repro.errors import SimulationError, StalenessViolation
from repro.netsim.fabric import Endpoint, Fabric, FabricEdge
from repro.partition.spec import PartitionPlan
from repro.pipeline.tasks import AdmissionGate, OpenGate
from repro.sim.engine import Simulator
from repro.sim.resources import Channel, Processor
from repro.sim.trace import Trace


def build_stage_edge(
    sim: Simulator,
    interconnect: InterconnectSpec,
    fabric: Fabric | None,
    src,
    dst,
    name: str,
) -> "Channel | FabricEdge":
    """The link carrying stage-boundary traffic from GPU ``src`` to ``dst``.

    Dedicated mode: a private FIFO :class:`Channel` with the point-to-point
    parameters.  Shared mode: a :class:`FabricEdge` routing every transfer
    over the cluster's shared lanes, switches, and NICs.
    """
    if fabric is not None:
        return fabric.edge(Endpoint.gpu(src), Endpoint.gpu(dst), name)
    bandwidth, latency = interconnect.link_between(src, dst)
    return Channel(sim, bandwidth, latency, name)


@dataclass
class _StageState:
    """Mutable runtime state of one pipeline stage."""

    processor: Processor
    to_next: "Channel | FabricEdge | None"  # activations forward
    to_prev: "Channel | FabricEdge | None"  # gradients backward
    next_fwd: int = 1  # next minibatch id whose forward may run (cond. 1)
    next_bwd: int = 1  # next minibatch id whose backward may run (cond. 2)
    fwd_ready: set[int] = field(default_factory=set)
    bwd_ready: set[int] = field(default_factory=set)
    in_flight: int = 0  # activations stashed: F started, B not finished
    peak_in_flight: int = 0


class VirtualWorkerPipeline:
    """Simulates pipelined model parallelism for one virtual worker."""

    def __init__(
        self,
        sim: Simulator,
        plan: PartitionPlan,
        interconnect: InterconnectSpec,
        name: str = "vw0",
        gate: AdmissionGate | None = None,
        on_minibatch_done: Callable[[int, float], None] | None = None,
        on_inject: Callable[[int, float], None] | None = None,
        trace: Trace | None = None,
        slocal: int | None = None,
        jitter: float = 0.0,
        fabric: Fabric | None = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.name = name
        self.fabric = fabric
        self.gate = gate if gate is not None else OpenGate()
        self.gate.subscribe(self._try_inject)
        self.on_minibatch_done = on_minibatch_done
        #: called with (minibatch, now) right after admission — the WSP
        #: runtime forwards this to the staleness oracle, which needs the
        #: gate state *at injection time*, not post-hoc from the trace
        self.on_inject = on_inject
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: local staleness threshold; Nm - 1 unless overridden for tests
        self.slocal = plan.nm - 1 if slocal is None else slocal
        #: multiplicative task-duration noise (real-cluster variance);
        #: deterministic per pipeline name
        self.jitter = jitter
        self._jitter_rng = random.Random(zlib.crc32(name.encode()) & 0x7FFFFFFF)
        #: fault-injection state: per-stage straggler slowdown factors
        #: (empty = healthy; the no-fault duration path is unchanged)
        self.stage_scale: dict[int, float] = {}

        self.stages: list[_StageState] = []
        for stage in plan.stages:
            to_next = None
            to_prev = None
            if stage.index < plan.k - 1:
                nxt = plan.stages[stage.index + 1]
                to_next = build_stage_edge(
                    sim, interconnect, fabric, stage.gpu, nxt.gpu,
                    f"{name}.act{stage.index}->{stage.index + 1}",
                )
            if stage.index > 0:
                prev = plan.stages[stage.index - 1]
                to_prev = build_stage_edge(
                    sim, interconnect, fabric, stage.gpu, prev.gpu,
                    f"{name}.grad{stage.index}->{stage.index - 1}",
                )
            self.stages.append(
                _StageState(
                    processor=Processor(sim, f"{name}.gpu{stage.index}"),
                    to_next=to_next,
                    to_prev=to_prev,
                )
            )

        #: per-stage trace actor names, formatted once (emit is hot)
        self._actor = tuple(f"{name}.s{s}" for s in range(plan.k))
        # Admission / completion bookkeeping (minibatch ids are 1-based).
        self.next_minibatch = 1
        self.active = 0  # admitted but not completed
        self.completed = 0
        self.inject_times: dict[int, float] = {}
        self.done_times: dict[int, float] = {}
        #: completed count observed at each minibatch's injection
        self.staleness_ledger: dict[int, int] = {}
        #: stashed-version ledger (pipeline-variant zoo): the pulled
        #: weight version this worker held at each in-flight minibatch's
        #: injection, keyed by *raw* minibatch id (raw ids stay stable
        #: across fast-forward skips; public ids do not).  The distinct
        #: values are the weight versions a stashing variant must keep
        #: alive; variant gates and the weight-version oracle read it.
        self.version_stamps: dict[int, int] = {}
        #: current pulled weight version (fed by the WSP runtime's pull
        #: path; -1 before the first pull, matching the gate's initial)
        self.weight_version = -1
        #: monotone peak of distinct stamped versions alive at once
        self.versions_peak = 0
        #: fast-forward id translation: a steady-state skip advances the
        #: *public* minibatch numbering (trace records, ledgers, gate and
        #: callback ids) by the coalesced count while in-flight events
        #: keep their raw ids — public id == raw id + mb_offset.  Always
        #: 0 under full fidelity, so the mapping is the identity there.
        self.mb_offset = 0
        #: minibatches coalesced by fast-forward skips (diagnostics)
        self.minibatches_fast_forwarded = 0
        self._running = False

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin injecting minibatches (call once, before ``sim.run``)."""
        if self._running:
            raise SimulationError(f"{self.name}: already started")
        self._running = True
        self._try_inject()

    def stop(self) -> None:
        """Stop admitting new minibatches; in-flight ones drain."""
        self._running = False

    # ------------------------------------------------------------------
    # fault injection (see repro.faults)
    # ------------------------------------------------------------------

    def set_link_scale(self, scale: float) -> None:
        """Degrade (or restore) this worker's *cross-node* stage links.

        Dedicated-interconnect mode only: fabric-backed edges are scaled
        at the fabric itself, and intra-node links are unaffected by a
        shared-fabric fault."""
        for s, state in enumerate(self.stages):
            if state.to_next is not None and isinstance(state.to_next, Channel):
                if not self.plan.stages[s].gpu.same_node(self.plan.stages[s + 1].gpu):
                    state.to_next.rate_scale = scale
            if state.to_prev is not None and isinstance(state.to_prev, Channel):
                if not self.plan.stages[s].gpu.same_node(self.plan.stages[s - 1].gpu):
                    state.to_prev.rate_scale = scale

    def resume_from(self, base: int) -> None:
        """Elastic-recovery restart point: the pipeline's public minibatch
        numbering continues from ``base`` (the checkpointed progress of
        the worker it replaces), exactly like a fast-forward translation.
        Must be called before :meth:`start`."""
        if self._running:
            raise SimulationError(f"{self.name}: cannot resume a running pipeline")
        self.mb_offset = base
        self.completed = base

    def halt(self) -> None:
        """Permanently abandon this pipeline (its node crashed and a
        replacement is taking over): stop admissions, silence callbacks,
        and halt every stage processor so in-flight work dies."""
        self._running = False
        self.on_minibatch_done = None
        self.on_inject = None
        for state in self.stages:
            state.processor.halt()

    def set_weight_version(self, version: int) -> None:
        """Record the worker's freshly pulled weight version; minibatches
        injected from now on are stamped with it (see ``version_stamps``)."""
        self.weight_version = version

    def versions_alive(self) -> int:
        """Distinct weight versions pinned by in-flight minibatches."""
        return len(set(self.version_stamps.values()))

    def _try_inject(self) -> None:
        if not self._running:
            return
        while self.active < self.plan.nm and self.gate.may_start(
            self.next_minibatch + self.mb_offset
        ):
            self._inject(self.next_minibatch)
            self.next_minibatch += 1

    def _inject(self, p: int) -> None:
        pub = p + self.mb_offset
        # Local staleness check (§4): weights for pub must include updates
        # from minibatches 1 .. pub - (slocal + 1).
        if self.completed < pub - 1 - self.slocal:
            raise StalenessViolation(
                f"{self.name}: minibatch {pub} injected with only "
                f"{self.completed} local updates (slocal={self.slocal})"
            )
        self.active += 1
        self.inject_times[pub] = self.sim.now
        self.staleness_ledger[pub] = self.completed
        self.version_stamps[p] = self.weight_version
        alive = len(set(self.version_stamps.values()))
        if alive > self.versions_peak:
            self.versions_peak = alive
        self.trace.emit(self.sim.now, "inject", self.name, minibatch=pub)
        if self.on_inject is not None:
            self.on_inject(pub, self.sim.now)
        self._forward_arrived(0, p)

    # ------------------------------------------------------------------
    # forward path
    # ------------------------------------------------------------------

    def _forward_arrived(self, s: int, p: int) -> None:
        """Input activation of minibatch ``p`` is now on stage ``s``."""
        state = self.stages[s]
        state.fwd_ready.add(p)
        self._schedule_forward(s)

    def _schedule_forward(self, s: int) -> None:
        state = self.stages[s]
        # Condition 1: forwards run in minibatch order on each GPU.
        while state.next_fwd in state.fwd_ready:
            p = state.next_fwd
            state.fwd_ready.remove(p)
            state.next_fwd += 1
            self._start_forward(s, p)

    def _jittered(self, duration: float) -> float:
        if self.jitter <= 0:
            return duration
        return duration * (1.0 + self.jitter * self._jitter_rng.uniform(-1.0, 1.0))

    def _task_time(self, s: int, duration: float) -> float:
        """Effective task duration on stage ``s``: straggler slowdown
        (if any fault is active) composed with the jitter draw."""
        if self.stage_scale:
            duration *= self.stage_scale.get(s, 1.0)
        return self._jittered(duration)

    def _start_forward(self, s: int, p: int) -> None:
        state = self.stages[s]
        stage = self.plan.stages[s]
        state.in_flight += 1
        if state.in_flight > state.peak_in_flight:
            state.peak_in_flight = state.in_flight
        last = s == self.plan.k - 1
        # Trace ids translate raw -> public at *emit* time (a fast-forward
        # skip between enqueue and start advances mb_offset).
        if last:
            # Condition 4: last partition runs fwd+bwd as one task.
            duration = self._task_time(s, stage.fwd_compute + stage.bwd_compute)
            self.trace.emit(self.sim.now, "fb_enqueue", self._actor[s], minibatch=p + self.mb_offset)
            state.processor.submit(
                duration,
                lambda: self._forward_backward_done(s, p),
                tag=("FB", p),
                on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "fb_start", self._actor[s], minibatch=p + self.mb_offset)),
            )
        else:
            self.trace.emit(self.sim.now, "f_enqueue", self._actor[s], minibatch=p + self.mb_offset)
            state.processor.submit(
                self._task_time(s, stage.fwd_compute),
                lambda: self._forward_done(s, p),
                tag=("F", p),
                on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "f_start", self._actor[s], minibatch=p + self.mb_offset)),
            )

    def _forward_done(self, s: int, p: int) -> None:
        self.trace.emit(self.sim.now, "f_done", self._actor[s], minibatch=p + self.mb_offset)
        state = self.stages[s]
        nbytes = self.plan.stages[s + 1].activation_in_bytes
        assert state.to_next is not None
        state.to_next.transfer(nbytes, lambda: self._forward_arrived(s + 1, p))

    # ------------------------------------------------------------------
    # backward path
    # ------------------------------------------------------------------

    def _forward_backward_done(self, s: int, p: int) -> None:
        """Fused task on the last stage finished; emit gradient."""
        self.trace.emit(self.sim.now, "fb_done", self._actor[s], minibatch=p + self.mb_offset)
        self._backward_finished(s, p)

    def _gradient_arrived(self, s: int, p: int) -> None:
        state = self.stages[s]
        state.bwd_ready.add(p)
        self._schedule_backward(s)

    def _schedule_backward(self, s: int) -> None:
        state = self.stages[s]
        # Condition 2: backwards run in minibatch order on each GPU.
        while state.next_bwd in state.bwd_ready:
            p = state.next_bwd
            state.bwd_ready.remove(p)
            state.next_bwd += 1
            stage = self.plan.stages[s]
            self.trace.emit(self.sim.now, "b_enqueue", self._actor[s], minibatch=p + self.mb_offset)
            state.processor.submit(
                self._task_time(s, stage.bwd_compute),
                (lambda s=s, p=p: self._backward_done(s, p)),
                tag=("B", p),
                on_start=(lambda s=s, p=p: self.trace.emit(self.sim.now, "b_start", self._actor[s], minibatch=p + self.mb_offset)),
            )

    def _backward_done(self, s: int, p: int) -> None:
        self.trace.emit(self.sim.now, "b_done", self._actor[s], minibatch=p + self.mb_offset)
        self._backward_finished(s, p)

    def _backward_finished(self, s: int, p: int) -> None:
        """Common tail of backward completion on any stage."""
        state = self.stages[s]
        state.in_flight -= 1
        if s > 0:
            nbytes = self.plan.stages[s].activation_in_bytes
            assert state.to_prev is not None
            state.to_prev.transfer(nbytes, lambda: self._gradient_arrived(s - 1, p))
        else:
            self._minibatch_done(p)

    def _minibatch_done(self, p: int) -> None:
        # The last-stage bookkeeping treats the fused FB as both passes;
        # here stage 0's backward completed, so p has fully drained and
        # its local update is applied to w_local (§4).
        pub = p + self.mb_offset
        self.completed += 1
        self.active -= 1
        self.version_stamps.pop(p, None)
        self.done_times[pub] = self.sim.now
        self.trace.emit(self.sim.now, "minibatch_done", self.name, minibatch=pub)
        if self.on_minibatch_done is not None:
            self.on_minibatch_done(pub, self.sim.now)
        self._try_inject()

    # ------------------------------------------------------------------
    # steady-state fast-forward (see repro.sim.fastforward)
    # ------------------------------------------------------------------

    def ff_counters(self) -> tuple:
        """Cumulative counters whose per-cycle deltas define steady state.

        Watermarks are reported in *public* numbering (raw value +
        ``mb_offset``): a skip leaves the raw scheduling state untouched
        but jumps the offset, and public values are what advance by
        exactly one cycle delta per boundary across a skip — which is
        what lets :meth:`SteadyStateDetector.rebase` keep chained skips
        confirming instantly.
        """
        offset = self.mb_offset
        values = [self.completed, self.next_minibatch + offset]
        for state in self.stages:
            values.append(state.next_fwd + offset)
            values.append(state.next_bwd + offset)
        # Stashed-version ledger state: the pulled version advances by a
        # fixed count per steady-state cycle (one pull per wave) and the
        # distinct-versions peak plateaus (delta 0), so both are valid
        # cycle counters; slot 0 must stay `completed` (the runtime's
        # per-pipeline delta reads depend on it).
        values.append(self.weight_version)
        values.append(self.versions_peak)
        return tuple(values)

    def ff_levels(self, now: float) -> tuple:
        """Structural state that must repeat exactly across cycles."""
        levels: list = [self.active]
        for state in self.stages:
            levels.append(
                (
                    state.in_flight,
                    state.peak_in_flight,
                    tuple(sorted(p - state.next_fwd for p in state.fwd_ready)),
                    tuple(sorted(p - state.next_bwd for p in state.bwd_ready)),
                )
            )
        # Relative shape of the stashed-version ledger: (how far behind
        # the injection head, how far behind the pulled version) per
        # in-flight stamp — absolute ids advance every cycle, offsets
        # must repeat exactly.
        levels.append(
            tuple(
                sorted(
                    (self.next_minibatch - p, self.weight_version - v)
                    for p, v in self.version_stamps.items()
                )
            )
        )
        return tuple(levels)

    def ff_advance(self, cycles: int, deltas: tuple, dt: float) -> None:
        """Account ``cycles`` coalesced cycles: completions and the public
        id translation advance; raw scheduling state stays untouched."""
        advanced = cycles * deltas[0]
        self.completed += advanced
        self.mb_offset += advanced
        self.minibatches_fast_forwarded += advanced
        # Ledger counters ride the same deltas (their ff_counters slots
        # sit right after the per-stage watermarks); surviving raw
        # stamps shift by the skipped versions so relative staleness —
        # the part of the ledger that repeats — is preserved.
        versions = cycles * deltas[2 + 2 * len(self.stages)]
        if versions:
            self.weight_version += versions
            for raw in self.version_stamps:
                self.version_stamps[raw] += versions
        self.versions_peak += cycles * deltas[3 + 2 * len(self.stages)]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def utilizations(self, window: float | None = None) -> list[float]:
        """Per-stage GPU utilization over ``window`` (defaults to now)."""
        return [s.processor.utilization(window) for s in self.stages]

    def peak_in_flight(self) -> list[int]:
        return [s.peak_in_flight for s in self.stages]

    def cross_node_bytes(self) -> float:
        """Activation/gradient bytes moved between nodes so far."""
        total = 0.0
        for s, state in enumerate(self.stages):
            if state.to_next is not None:
                a, b = self.plan.stages[s].gpu, self.plan.stages[s + 1].gpu
                if not a.same_node(b):
                    total += state.to_next.bytes_moved
            if state.to_prev is not None:
                a, b = self.plan.stages[s].gpu, self.plan.stages[s - 1].gpu
                if not a.same_node(b):
                    total += state.to_prev.bytes_moved
        return total

    def channel_queue_stats(self) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)`` over this worker's
        stage-boundary links.  In fabric mode the per-edge view is the
        fabric-wide total (shared resources cannot attribute waits to one
        edge), so the caller should read the fabric directly instead."""
        if self.fabric is not None:
            return self.fabric.queue_stats()
        total = 0.0
        depth = 0
        for state in self.stages:
            for edge in (state.to_next, state.to_prev):
                if edge is not None:
                    total += edge.queue_delay_total
                    depth = max(depth, edge.max_queue_depth)
        return total, depth
