"""Pipelined model parallelism engine (§4 of the paper).

A :class:`~repro.pipeline.virtual_worker.VirtualWorkerPipeline` executes
minibatches through the stages of a
:class:`~repro.partition.spec.PartitionPlan` on the discrete-event
simulator, honoring the paper's scheduling conditions:

1. forward of minibatch ``p`` only after forwards of all ``p' < p``;
2. backward of ``p`` only after backwards of all ``p' < p``;
3. FIFO among ready tasks on each GPU;
4. the last partition fuses forward+backward into a single task.

Admission keeps at most ``Nm`` minibatches in flight; an optional
:class:`~repro.pipeline.tasks.AdmissionGate` lets the WSP runtime add
the global-staleness condition without the pipeline knowing about
parameter servers.
"""

from repro.pipeline.tasks import AdmissionGate, OpenGate, wave_minibatches, wave_of
from repro.pipeline.one_f_one_b import OneFOneBPipeline, measure_1f1b_pipeline
from repro.pipeline.timeline import render_timeline
from repro.pipeline.variants import GPipeFlushGate, measure_flush_pipeline
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.pipeline.metrics import PipelineMetrics, measure_pipeline

__all__ = [
    "AdmissionGate",
    "GPipeFlushGate",
    "OneFOneBPipeline",
    "OpenGate",
    "PipelineMetrics",
    "VirtualWorkerPipeline",
    "measure_1f1b_pipeline",
    "measure_flush_pipeline",
    "measure_pipeline",
    "render_timeline",
    "wave_minibatches",
    "wave_of",
]
