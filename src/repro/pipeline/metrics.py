"""Steady-state pipeline measurement.

Runs a :class:`VirtualWorkerPipeline` alone (open gate, no parameter
server) for a warmup phase plus a measured window and reports the
numbers Figure 3 plots: throughput (images/s) and per-stage GPU
utilization, of which the paper reports the maximum across partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import InterconnectSpec
from repro.errors import SimulationError
from repro.partition.spec import PartitionPlan
from repro.pipeline.tasks import CountingGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PipelineMetrics:
    """Steady-state measurements of one virtual worker's pipeline."""

    model_name: str
    nm: int
    batch_size: int
    throughput: float  # images / second
    minibatch_rate: float  # minibatches / second
    utilizations: tuple[float, ...]  # per stage, measured window
    peak_in_flight: tuple[int, ...]
    cross_node_bytes_per_minibatch: float
    serial_latency: float
    measured_minibatches: int
    #: total seconds transfers waited behind earlier ones on the stage
    #: channels, and the deepest any channel's wait queue ever got —
    #: nonzero whenever activation/gradient traffic outpaces a link
    queue_delay_total: float = 0.0
    max_queue_depth: int = 0

    @property
    def max_utilization(self) -> float:
        """The paper's Fig-3 metric: max average GPU util across stages."""
        return max(self.utilizations)


def measure_pipeline(
    plan: PartitionPlan,
    interconnect: InterconnectSpec,
    batch_size: int,
    warmup_minibatches: int | None = None,
    measured_minibatches: int = 60,
    fidelity="full",
) -> PipelineMetrics:
    """Measure one virtual worker in isolation.

    ``warmup_minibatches`` defaults to ``4 * Nm + 2 * k`` which is ample
    for the pipe to reach steady state.

    ``fidelity`` is canonically a :class:`repro.api.spec.FidelitySpec`;
    a bare ``"fast_forward"`` string still works as a deprecation shim
    (bit-identical behavior, plus a :class:`DeprecationWarning`).
    Fast-forward coalesces confirmed steady-state cycles between the
    window boundaries (which are always simulated, so the busy-time
    samples taken there are real); results match the full run within
    the 1e-9 semantic-equivalence contract.
    """
    from repro.api.spec import fidelity_mode
    from repro.sim.fastforward import run_pipeline_fast_forward, validate_fidelity

    fidelity = fidelity_mode(fidelity, "measure_pipeline")
    validate_fidelity(fidelity)
    if warmup_minibatches is None:
        warmup_minibatches = 4 * plan.nm + 2 * plan.k
    total = warmup_minibatches + measured_minibatches

    sim = Simulator()
    gate = CountingGate(limit=total)
    marks: dict[str, tuple[float, list[float]]] = {}

    def on_done(p: int, now: float) -> None:
        if pipeline.completed == warmup_minibatches:
            marks["start"] = (now, [s.processor.busy_time for s in pipeline.stages])
        elif pipeline.completed == total:
            marks["end"] = (now, [s.processor.busy_time for s in pipeline.stages])

    pipeline = VirtualWorkerPipeline(
        sim, plan, interconnect, name=plan.model_name, gate=gate, on_minibatch_done=on_done
    )
    pipeline.start()
    if fidelity == "fast_forward":
        run_pipeline_fast_forward(
            pipeline, total, preserve=(warmup_minibatches, total)
        )
    else:
        sim.run_until_idle()

    if "start" not in marks or "end" not in marks:
        raise SimulationError("pipeline did not complete the measurement window")
    (t0, busy0), (t1, busy1) = marks["start"], marks["end"]
    window = t1 - t0
    if window <= 0:
        raise SimulationError("empty measurement window")

    utilizations = tuple(
        min(1.0, (b1 - b0) / window) for b0, b1 in zip(busy0, busy1)
    )
    queue_delay, queue_depth = pipeline.channel_queue_stats()
    return PipelineMetrics(
        model_name=plan.model_name,
        nm=plan.nm,
        batch_size=batch_size,
        throughput=measured_minibatches * batch_size / window,
        minibatch_rate=measured_minibatches / window,
        utilizations=utilizations,
        peak_in_flight=tuple(pipeline.peak_in_flight()),
        cross_node_bytes_per_minibatch=pipeline.cross_node_bytes() / total,
        serial_latency=plan.serial_latency,
        measured_minibatches=measured_minibatches,
        queue_delay_total=queue_delay,
        max_queue_depth=queue_depth,
    )
