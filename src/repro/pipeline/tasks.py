"""Pipeline task bookkeeping and the admission-gate protocol.

Minibatches are numbered from 1 as in the paper (``M1,1`` is minibatch 1
on partition 1).  A *wave* is ``slocal + 1 = Nm`` consecutive
minibatches (§5): wave ``c`` contains minibatches
``c*Nm + 1 .. (c+1)*Nm``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol


def wave_of(minibatch: int, nm: int) -> int:
    """Wave index (0-based) of a 1-based minibatch id."""
    return (minibatch - 1) // nm


def wave_minibatches(wave: int, nm: int) -> range:
    """The 1-based minibatch ids composing ``wave``."""
    return range(wave * nm + 1, (wave + 1) * nm + 1)


class AdmissionGate(Protocol):
    """Decides whether the pipeline may *start* a new minibatch.

    The WSP runtime implements this to enforce the global staleness
    bound: a minibatch whose wave is more than ``D`` clocks ahead of the
    global weights must wait.  Already-admitted minibatches keep flowing
    — that is the paper's 'local processing is allowed to proceed while
    waiting' behaviour.
    """

    def may_start(self, minibatch: int) -> bool:
        """True if ``minibatch`` (1-based) may enter the pipeline now."""
        ...

    def subscribe(self, wake: Callable[[], None]) -> None:
        """Register a callback invoked whenever the gate may have opened."""
        ...


@dataclass
class OpenGate:
    """A gate that always admits — plain pipelined MP (Fig. 3 runs)."""

    _wake: Callable[[], None] | None = field(default=None, repr=False)

    def may_start(self, minibatch: int) -> bool:
        return True

    def subscribe(self, wake: Callable[[], None]) -> None:
        self._wake = wake


@dataclass
class CountingGate:
    """Admits the first ``limit`` minibatches — bounded test runs."""

    limit: int
    _wake: Callable[[], None] | None = field(default=None, repr=False)

    def may_start(self, minibatch: int) -> bool:
        return minibatch <= self.limit

    def subscribe(self, wake: Callable[[], None]) -> None:
        self._wake = wake
