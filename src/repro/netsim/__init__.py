"""Contention-aware network fabric (shared NICs, PCIe switches, IB).

Replaces the private infinite-parallel :class:`~repro.sim.resources.Channel`
per traffic source with shared, FIFO-reserved resources built from the
cluster topology.  Selected via ``network_model="shared"`` on the WSP
runtime / measurement entry points; the default ``"dedicated"`` keeps
the original per-stream links (and bit-identical seed outputs).
"""

from repro.netsim.fabric import (
    DEFAULT_FABRIC_SPEC,
    Endpoint,
    Fabric,
    FabricEdge,
    FabricSpec,
    Flow,
    SharedLink,
    utilization_report,
)

#: Valid values of the ``network_model`` configuration switch.
NETWORK_MODELS = ("dedicated", "shared")

__all__ = [
    "DEFAULT_FABRIC_SPEC",
    "Endpoint",
    "Fabric",
    "FabricEdge",
    "FabricSpec",
    "Flow",
    "NETWORK_MODELS",
    "SharedLink",
    "utilization_report",
]
