"""Contention-aware network fabric.

The pipeline and WSP layers historically gave every transfer a *private*
:class:`~repro.sim.resources.Channel` — one link per virtual worker per
stage per direction — so a node's NIC was infinitely parallel and PS
push/pull storms, activation transfers, and allreduce traffic never
contended.  This module replaces those private links with one shared
:class:`Fabric` built from the :class:`~repro.cluster.topology.Cluster`:

* one **PCIe lane** per GPU (the x16 slot the device hangs off),
* one **host lane** per node (the DMA/memory path of host-resident
  endpoints — PS shards are staged through host memory),
* one **PCIe switch** per node (the root-complex/switch fabric all the
  node's lanes and its NIC funnel through),
* one **NIC** per node (the 56 Gb/s InfiniBand port — the resource the
  paper's §7 communication model says is scarce), and
* one **IB fabric** for the whole cluster (the InfiniBand switch).

A transfer is a :class:`Flow` routed across the multi-hop path between
its endpoints.  Capacity is FIFO-reserved: the flow starts when *every*
resource on its path is free, runs at the path's bottleneck rate, and
occupies each traversed resource for the whole service interval.  The
unloaded service time therefore equals the dedicated
:class:`~repro.sim.resources.Channel` model exactly (same bottleneck
bandwidth, same end-to-end latency), so ``shared`` mode differs from
``dedicated`` mode *only* by contention — queueing behind other flows on
shared resources — which is precisely what the fuzz oracle
``shared makespan >= dedicated makespan`` checks.

Every resource keeps the accounting the invariant oracles and the
``repro netsim`` report read: occupancy (utilization <= 1 by
construction, re-verified by :meth:`Fabric.verify`), bytes charged by
flows (flow conservation: bytes in == bytes out per resource), queueing
delay, and peak queue depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cluster.gpu import GPUDevice
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError, InvariantViolation, SimulationError
from repro.sim.engine import Simulator

Callback = Callable[[], None]


@dataclass(frozen=True)
class Endpoint:
    """One end of a flow: a GPU, or a node's host memory (PS shard).

    PS traffic terminates in host memory (TF 1.12 stages tensors through
    the gRPC process), so it enters the fabric at the node's PCIe switch
    without traversing any GPU's lane; GPU-to-GPU transfers traverse the
    lanes on both ends.
    """

    node_id: int
    gpu_id: int | None = None

    @staticmethod
    def gpu(device: GPUDevice) -> "Endpoint":
        return Endpoint(node_id=device.node_id, gpu_id=device.gpu_id)

    @staticmethod
    def host(node_id: int) -> "Endpoint":
        return Endpoint(node_id=node_id, gpu_id=None)

    def __str__(self) -> str:
        if self.gpu_id is None:
            return f"host(n{self.node_id})"
        return f"gpu{self.gpu_id}(n{self.node_id})"


@dataclass(frozen=True)
class FabricSpec:
    """Capacity model of the shared resources, as multiples of the
    cluster's effective point-to-point bandwidths.

    Defaults are chosen so the *bottleneck* of every unloaded path equals
    the dedicated model's link (PCIe lane intra-node, NIC rate
    cross-node): the switch fabrics are faster than any single lane/port,
    so they only matter under fan-in.  Scales below 1.0 model congested
    or oversubscribed hardware — the shared-network fuzz mode draws them
    to exercise contention paths.
    """

    #: per-GPU PCIe lane, x `pcie_effective`
    pcie_lane_scale: float = 1.0
    #: per-node PCIe switch aggregate, x `pcie_effective`
    pcie_switch_scale: float = 2.0
    #: per-node NIC, x `ib_effective`
    nic_scale: float = 1.0
    #: whole-cluster IB switch aggregate, x `ib_effective` (None: one
    #: port per node half-duplex-ish, i.e. half-bisection `nodes / 2`)
    ib_fabric_scale: float | None = None

    def __post_init__(self) -> None:
        for name in ("pcie_lane_scale", "pcie_switch_scale", "nic_scale"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.ib_fabric_scale is not None and self.ib_fabric_scale <= 0:
            raise ConfigurationError("ib_fabric_scale must be positive")

    def min_scale(self) -> float:
        """Slowest resource class relative to the dedicated model.

        The differential window bound multiplies dedicated per-transfer
        times by ``1 / min_scale()`` to stay a true worst case when the
        fuzz generator draws a congested (scale < 1) fabric.
        """
        scales = [self.pcie_lane_scale, self.pcie_switch_scale, self.nic_scale]
        if self.ib_fabric_scale is not None:
            scales.append(self.ib_fabric_scale)
        return min(1.0, min(scales))


DEFAULT_FABRIC_SPEC = FabricSpec()


class SharedLink:
    """A shared fabric resource with FIFO-reserved capacity.

    Flows reserve non-overlapping service intervals in submission order;
    ``busy_time`` accumulates exact occupancy, so ``utilization`` can
    never exceed 1 — the oracle re-checks both properties.
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str, kind: str) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.name = name
        self.kind = kind  # "pcie_lane" | "pcie_switch" | "nic" | "ib_fabric"
        self.bandwidth = bandwidth
        self.busy_time = 0.0
        self.bytes_moved = 0.0
        self.flows_carried = 0
        self.queue_delay_total = 0.0
        self.max_queue_depth = 0
        self._free_at = 0.0
        self._pending_starts: list[float] = []
        if sim.obs is not None:
            sim.obs.register_resource(self)

    @property
    def free_at(self) -> float:
        return self._free_at

    def occupy(self, start: float, duration: float, nbytes: float) -> None:
        """Reserve ``[start, start + duration)`` for one flow.

        ``start`` must not overlap the previous reservation — the fabric
        guarantees it by starting flows at the max ``free_at`` over their
        path; violating it means double-booked capacity, which the
        oracle treats as an invariant violation, not a plain sim error.
        """
        now = self.sim.now
        if start < self._free_at - 1e-12:
            raise InvariantViolation(
                f"{self.name}: overlapping reservation at t={start} "
                f"(free at {self._free_at})"
            )
        self.queue_delay_total += max(0.0, min(self._free_at, start) - now)
        self._pending_starts = [t for t in self._pending_starts if t > now]
        if start > now:
            self._pending_starts.append(start)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending_starts))
        self._free_at = start + duration
        self.busy_time += duration
        self.bytes_moved += nbytes
        self.flows_carried += 1
        obs = self.sim.obs
        if obs is not None:
            obs.channel_span(self.name, start, start + duration, nbytes)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time occupied by flow service (reservations that
        extend past ``elapsed`` are clipped to it)."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        busy = self.busy_time - max(0.0, self._free_at - window)
        return max(0.0, busy / window)


@dataclass(frozen=True)
class Flow:
    """One completed (or in-flight) transfer's routing record."""

    src: Endpoint
    dst: Endpoint
    nbytes: float
    start: float
    done: float
    path: tuple[str, ...]  # resource names traversed
    tag: str = ""
    #: seconds the flow waited for its path (start - submission time),
    #: so per-subsystem queueing can be re-aggregated by tag
    wait: float = 0.0


class Fabric:
    """Shared network resources of one cluster, plus flow routing.

    >>> from repro.cluster.catalog import paper_cluster
    >>> from repro.sim.engine import Simulator
    >>> sim = Simulator()
    >>> fabric = Fabric(sim, paper_cluster("VR"))
    >>> done = []
    >>> _ = fabric.transfer_gpus(0, 4, 1e6, lambda: done.append(sim.now))
    >>> sim.run()
    >>> len(done)
    1
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        spec: FabricSpec = DEFAULT_FABRIC_SPEC,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.spec = spec
        ic = cluster.interconnect
        self.pcie_lane: dict[int, SharedLink] = {
            gpu.gpu_id: SharedLink(
                sim, ic.pcie_effective * spec.pcie_lane_scale,
                f"pcie.gpu{gpu.gpu_id}", "pcie_lane",
            )
            for gpu in cluster.gpus
        }
        self.host_lane: dict[int, SharedLink] = {
            node.node_id: SharedLink(
                sim, ic.pcie_effective * spec.pcie_lane_scale,
                f"host.n{node.node_id}", "host_lane",
            )
            for node in cluster.nodes
        }
        self.pcie_switch: dict[int, SharedLink] = {
            node.node_id: SharedLink(
                sim, ic.pcie_effective * spec.pcie_switch_scale,
                f"pcie.switch.n{node.node_id}", "pcie_switch",
            )
            for node in cluster.nodes
        }
        self.nic: dict[int, SharedLink] = {
            node.node_id: SharedLink(
                sim, ic.ib_effective * spec.nic_scale,
                f"nic.n{node.node_id}", "nic",
            )
            for node in cluster.nodes
        }
        ib_scale = (
            spec.ib_fabric_scale
            if spec.ib_fabric_scale is not None
            else max(1.0, len(cluster.nodes) / 2.0)
        )
        self.ib_fabric = SharedLink(
            sim, ic.ib_effective * ib_scale, "ib.fabric", "ib_fabric"
        )
        #: fault-injection state: link degradation scales the bottleneck
        #: rate of subsequent flows (1.0 = healthy fabric; the memoized
        #: routes stay valid because the scale applies after lookup)
        self.rate_scale = 1.0
        self.flows: list[Flow] = []
        #: total time flows spent waiting for their path, counted once
        #: per flow (the per-link ``queue_delay_total`` counters instead
        #: *attribute* waits to resources, for congestion ranking, and
        #: sum to more than this when paths share several hops)
        self.queue_delay_total = 0.0
        #: (src, dst) -> (path, latency, path names, bottleneck rate):
        #: the topology is static, so a flow stream's multi-hop path is
        #: computed once and replayed for every subsequent transfer
        #: instead of being rebuilt per flow
        self._routes: dict[
            tuple[Endpoint, Endpoint],
            tuple[list[SharedLink], float, tuple[str, ...], float],
        ] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def links(self) -> list[SharedLink]:
        """Every shared resource, in a stable report order."""
        out = list(self.pcie_lane.values())
        out.extend(self.host_lane.values())
        out.extend(self.pcie_switch.values())
        out.extend(self.nic.values())
        out.append(self.ib_fabric)
        return out

    def _endpoint_lane(self, ep: Endpoint) -> SharedLink:
        if ep.gpu_id is not None:
            return self.pcie_lane[ep.gpu_id]
        return self.host_lane[ep.node_id]

    def route(self, src: Endpoint, dst: Endpoint) -> tuple[list[SharedLink], float]:
        """``(resources traversed, end-to-end latency)`` for src -> dst.

        Routes are memoized per endpoint pair (the fabric is static);
        callers must treat the returned path as read-only.
        """
        path, latency, _names, _bottleneck = self._route_entry(src, dst)
        return path, latency

    def _route_entry(
        self, src: Endpoint, dst: Endpoint
    ) -> tuple[list[SharedLink], float, tuple[str, ...], float]:
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        path, latency = self._compute_route(src, dst)
        entry = (
            path,
            latency,
            tuple(link.name for link in path),
            min(link.bandwidth for link in path),
        )
        self._routes[(src, dst)] = entry
        return entry

    def _compute_route(self, src: Endpoint, dst: Endpoint) -> tuple[list[SharedLink], float]:
        ic = self.cluster.interconnect
        path: list[SharedLink] = [self._endpoint_lane(src), self.pcie_switch[src.node_id]]
        if src.node_id == dst.node_id:
            latency = ic.pcie_latency
        else:
            path.append(self.nic[src.node_id])
            path.append(self.ib_fabric)
            path.append(self.nic[dst.node_id])
            path.append(self.pcie_switch[dst.node_id])
            latency = ic.ib_latency
        path.append(self._endpoint_lane(dst))
        # A resource appears once per flow even when both endpoints share
        # it (same-node host->host shares one host lane; the flow still
        # serializes with the node's other traffic through lane+switch).
        seen: set[str] = set()
        unique = []
        for link in path:
            if link.name not in seen:
                seen.add(link.name)
                unique.append(link)
        return unique, latency

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------

    def transfer(
        self,
        src: Endpoint,
        dst: Endpoint,
        nbytes: float,
        on_complete: Callback | None = None,
        tag: str = "",
        rate_cap: float | None = None,
    ) -> float:
        """Route one flow; returns its (absolute) completion time.

        The flow starts when every resource on its path is free, runs at
        the path bottleneck rate, and charges its full occupancy and
        byte count to each traversed resource.  ``rate_cap`` bounds the
        flow's rate below the path bottleneck — used when the *sender*
        is the slow party (e.g. the calibrated achieved rate of a
        software allreduce stack), so shared-mode service is never
        faster than the calibrated dedicated model it replaces.
        """
        if nbytes < 0:
            raise SimulationError(f"fabric: negative transfer size {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise SimulationError(f"fabric: rate_cap must be positive, got {rate_cap}")
        now = self.sim.now
        if src == dst and src.gpu_id is not None:
            # same-device "transfer" is a no-op, as in the dedicated
            # model (InterconnectSpec.transfer_time returns 0.0)
            if on_complete is not None:
                self.sim.schedule_at(now, on_complete)
            return now
        path, latency, path_names, bottleneck = self._route_entry(src, dst)
        if self.rate_scale != 1.0:
            bottleneck *= self.rate_scale
        if rate_cap is not None:
            bottleneck = min(bottleneck, rate_cap)
        occupy = nbytes / bottleneck
        start = now
        for link in path:
            free_at = link.free_at
            if free_at > start:
                start = free_at
        self.queue_delay_total += start - now
        for link in path:
            link.occupy(start, occupy, nbytes)
        done = start + occupy + latency
        self.flows.append(
            Flow(
                src=src, dst=dst, nbytes=nbytes, start=start, done=done,
                path=path_names, tag=tag, wait=start - now,
            )
        )
        if on_complete is not None:
            self.sim.schedule_at(done, on_complete)
        return done

    def transfer_gpus(
        self, src_gpu: int, dst_gpu: int, nbytes: float,
        on_complete: Callback | None = None, tag: str = "",
    ) -> float:
        """GPU-to-GPU convenience wrapper over :meth:`transfer`."""
        src = self.cluster.gpu(src_gpu)
        dst = self.cluster.gpu(dst_gpu)
        return self.transfer(Endpoint.gpu(src), Endpoint.gpu(dst), nbytes, on_complete, tag)

    def edge(self, src: Endpoint, dst: Endpoint, name: str) -> "FabricEdge":
        """A Channel-compatible view of one (src, dst) flow stream."""
        return FabricEdge(self, src, dst, name)

    # ------------------------------------------------------------------
    # accounting / verification
    # ------------------------------------------------------------------

    def queue_stats(self) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)``.

        Delay counts each flow's wait exactly once (comparable with the
        dedicated model's per-channel accounting); depth is the deepest
        any single resource's wait queue ever got.
        """
        depth = max((link.max_queue_depth for link in self.links()), default=0)
        return self.queue_delay_total, depth

    def tagged_queue_stats(self, prefix: str) -> tuple[float, int]:
        """``(total queueing delay, peak queue depth)`` attributed to the
        flows whose ``tag`` starts with ``prefix``.

        Delay counts each matching flow's own wait once; depth is the
        peak number of matching flows waiting *simultaneously* (interval
        sweep over their [submission, start) windows).  This is how PS
        queueing stays observable in fabric mode, where the per-link
        counters mix every subsystem's traffic.
        """
        total = 0.0
        events: list[tuple[float, int]] = []
        for flow in self.flows:
            if not flow.tag.startswith(prefix):
                continue
            total += flow.wait
            if flow.wait > 0.0:
                events.append((flow.start - flow.wait, 1))
                events.append((flow.start, -1))
        events.sort()
        depth = peak = 0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        return total, peak

    def congested_links(self, top: int = 5, elapsed: float | None = None) -> list[SharedLink]:
        """The ``top`` resources by queueing delay (ties by utilization)."""
        return sorted(
            self.links(),
            key=lambda l: (l.queue_delay_total, l.utilization(elapsed)),
            reverse=True,
        )[:top]

    def verify(self, elapsed: float | None = None) -> None:
        """Check flow conservation and per-resource occupancy laws.

        * bytes in == bytes out: the sum of ``nbytes`` over the flows
          traversing a resource equals the resource's own byte counter;
        * every byte that entered the fabric is attributed to a path
          (no orphaned resource traffic);
        * occupancy never exceeds wall time (utilization <= 1).

        Raises :class:`~repro.errors.InvariantViolation` on the first
        inconsistency.
        """
        window = self.sim.now if elapsed is None else elapsed
        recomputed: dict[str, float] = {}
        for flow in self.flows:
            for name in flow.path:
                recomputed[name] = recomputed.get(name, 0.0) + flow.nbytes
        for link in self.links():
            expected = recomputed.get(link.name, 0.0)
            if abs(expected - link.bytes_moved) > 1e-6 * max(1.0, expected):
                raise InvariantViolation(
                    f"fabric: {link.name} carried {link.bytes_moved:.0f} bytes but "
                    f"flows account for {expected:.0f} (conservation)"
                )
            if window > 0 and link.utilization(window) > 1.0 + 1e-9:
                raise InvariantViolation(
                    f"fabric: {link.name} utilization "
                    f"{link.utilization(window):.6f} > 1 over {window:.6f}s"
                )


class FabricEdge:
    """Channel-compatible adapter: one (src, dst) stream over the fabric.

    Lets the pipeline engines keep their per-edge bookkeeping
    (``bytes_moved`` feeds cross-node traffic accounting; queue stats
    feed the metrics layer) while the actual capacity is shared.
    """

    def __init__(self, fabric: Fabric, src: Endpoint, dst: Endpoint, name: str) -> None:
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.name = name
        self.bytes_moved = 0.0
        self.transfers_completed = 0

    def transfer(self, nbytes: float, on_complete: Callback | None = None) -> float:
        self.bytes_moved += nbytes
        self.transfers_completed += 1
        return self.fabric.transfer(self.src, self.dst, nbytes, on_complete, tag=self.name)


def utilization_report(
    fabric: Fabric, elapsed: float | None = None, top: int | None = None
) -> list[tuple[str, str, float, float, float, int]]:
    """Rows of ``(name, kind, util, GiB moved, queue delay s, peak depth)``
    most-utilized first (all resources, or the ``top`` busiest) — the
    ``repro netsim`` subcommand renders this table."""
    rows = []
    for link in fabric.links():
        rows.append(
            (
                link.name,
                link.kind,
                link.utilization(elapsed),
                link.bytes_moved / 2**30,
                link.queue_delay_total,
                link.max_queue_depth,
            )
        )
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows if top is None else rows[:top]
