"""Structured event tracing.

The pipeline engine and the WSP runtime emit trace records (task start /
end, push, pull, wait) through a :class:`Trace`.  Tests use the trace to
assert ordering invariants (FIFO scheduling conditions, staleness bounds)
and the metrics layer uses it to compute waiting and idle time breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence at simulated time ``time``."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, log-friendly
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.category:<14} {self.actor:<12} {extra}"


class Trace:
    """Append-only record store with simple filtered views.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where only aggregate counters matter; the emit path then costs a
    single attribute check.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(time=time, category=category, actor=actor, detail=detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: str | None = None, actor: str | None = None) -> list[TraceRecord]:
        """Records matching the given category and/or actor."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        return out

    def categories(self) -> set[str]:
        return {r.category for r in self.records}

    def last(self, category: str) -> TraceRecord | None:
        """Most recent record of ``category``, or None."""
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None
