"""Structured event tracing.

The pipeline engine and the WSP runtime emit trace records (task start /
end, push, pull, wait) through a :class:`Trace`.  Tests use the trace to
assert ordering invariants (FIFO scheduling conditions, staleness bounds)
and the metrics layer uses it to compute waiting and idle time breakdowns.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence at simulated time ``time``."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, log-friendly
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.category:<14} {self.actor:<12} {extra}"


class Trace:
    """Append-only record store with simple filtered views.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where only aggregate counters matter; the emit path then costs a
    single attribute check.

    Live observers registered through :meth:`subscribe` see every record
    as it is emitted, even with storage disabled — the invariant oracles
    use this to check runs too long to keep in memory.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def subscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Call ``observer`` with each record at emit time."""
        self._subscribers.append(observer)

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        if not self.enabled and not self._subscribers:
            return
        record = TraceRecord(time=time, category=category, actor=actor, detail=detail)
        if self.enabled:
            self.records.append(record)
        for observer in self._subscribers:
            observer(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: str | None = None, actor: str | None = None) -> list[TraceRecord]:
        """Records matching the given category and/or actor."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        return out

    def categories(self) -> set[str]:
        return {r.category for r in self.records}

    def last(self, category: str) -> TraceRecord | None:
        """Most recent record of ``category``, or None."""
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    def count(self, category: str, actor: str | None = None) -> int:
        """Number of stored records matching ``category`` (and ``actor``)."""
        return len(self.filter(category=category, actor=actor))

    def digest(self) -> str:
        """Content hash of the stored records.

        Two runs of the same scenario must produce the same digest — this
        is the bit-identical-replay check the fuzz harness relies on.
        ``repr`` of floats is exact, and detail dicts are canonicalized by
        key, so the digest is stable across processes (unlike ``hash()``).
        """
        h = hashlib.sha256()
        for r in self.records:
            line = f"{r.time!r}|{r.category}|{r.actor}|{sorted(r.detail.items())!r}\n"
            h.update(line.encode())
        return h.hexdigest()
