"""Structured event tracing.

The pipeline engine and the WSP runtime emit trace records (task start /
end, push, pull, wait) through a :class:`Trace`.  Tests use the trace to
assert ordering invariants (FIFO scheduling conditions, staleness bounds)
and the metrics layer uses it to compute waiting and idle time breakdowns.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterator


class TraceRecord:
    """One traced occurrence at simulated time ``time``.

    A plain ``__slots__`` class rather than a dataclass: records are
    allocated on every traced event of every simulated run, so their
    construction cost is a measurable slice of fuzz throughput.  Treat
    instances as immutable.
    """

    __slots__ = ("time", "category", "actor", "detail")

    def __init__(
        self,
        time: float,
        category: str,
        actor: str,
        detail: dict[str, Any] | None = None,
    ) -> None:
        self.time = time
        self.category = category
        self.actor = actor
        self.detail = {} if detail is None else detail

    def __repr__(self) -> str:  # compact, log-friendly
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.category:<14} {self.actor:<12} {extra}"


def _digest_line(time: float, category: str, actor: str, detail: dict[str, Any]) -> bytes:
    """The canonical per-record hash input.

    ``repr`` of floats is exact, and detail dicts are canonicalized by
    key, so digests are stable across processes (unlike ``hash()``).
    """
    return f"{time!r}|{category}|{actor}|{sorted(detail.items())!r}\n".encode()


#: Digest schema versions.  Schema 1 is the historical contract: every
#: record hashes and two runs of the same scenario must agree bit for
#: bit.  Schema 2 (``hetpipe-trace/2``) is the fast-forward contract:
#: only *semantic* records — minibatch/wave lifecycle plus the
#: ``fast_forward`` macro summaries that stand in for coalesced raw
#: records — fold into the hash, so a coalesced run stays replayable
#: (same scenario, same fidelity => same digest) without pretending to
#: be event-for-event identical to a full run.
TRACE_SCHEMAS = (1, 2)

#: The schema-2 tag seeding the hash, so v1 and v2 digests of the same
#: stream can never collide silently.
SCHEMA_2_TAG = b"hetpipe-trace/2\n"

#: Record categories hashed under schema 2: per-minibatch lifecycle,
#: WSP synchronization, and fast-forward cycle summaries.
SEMANTIC_CATEGORIES = frozenset(
    ("inject", "minibatch_done", "wave_push", "pull_done", "fast_forward")
)

#: Cap on the per-(category, actor, key) digest-line memo.  High-
#: cardinality actor names (one per stage per uniquely-named pipeline)
#: could otherwise grow the memo without bound across a long sweep;
#: sites past the cap hash through the direct, unmemoized path.
DIGEST_MIDS_MAX = 4096


class Trace:
    """Append-only record store with simple filtered views.

    Recording can be disabled (``enabled=False``) for large benchmark runs
    where only aggregate counters matter; the emit path then costs a
    single attribute check.

    Live observers registered through :meth:`subscribe` see every record
    as it is emitted, even with storage disabled — the invariant oracles
    use this to check runs too long to keep in memory.

    ``digest=True`` additionally folds every record into a running
    content hash *at emit time*.  Combined with ``enabled=False`` this is
    the fuzz harness's streaming mode: bit-identical replay digests with
    O(1) memory, instead of retaining every :class:`TraceRecord` for the
    whole run.  The streaming hash is computed record-by-record with the
    exact scheme :meth:`digest` uses over stored records, so the two
    modes produce identical digests for identical runs.
    """

    def __init__(self, enabled: bool = True, digest: bool = False, schema: int = 1) -> None:
        if schema not in TRACE_SCHEMAS:
            raise ValueError(f"unknown trace schema {schema!r}; expected one of {TRACE_SCHEMAS}")
        self.enabled = enabled
        self.schema = schema
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._hasher = hashlib.sha256() if digest else None
        if self._hasher is not None and schema == 2:
            self._hasher.update(SCHEMA_2_TAG)
        #: schema 1 hashes every record; schema 2 only the semantic ones
        self._digest_all = schema == 1
        #: (category, actor, key) -> precomputed middle of the digest
        #: line; the tuple repeats for every task a stage ever runs, so
        #: the string is assembled once per distinct site (bounded by
        #: DIGEST_MIDS_MAX; overflow sites hash without the memo)
        self._digest_mids: dict[tuple[str, str, str], str] = {}

    def subscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Call ``observer`` with each record at emit time."""
        self._subscribers.append(observer)

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        hasher = self._hasher
        if hasher is not None and (self._digest_all or category in SEMANTIC_CATEGORIES):
            # Almost every record carries exactly one detail pair; its
            # line is assembled from a per-(category, actor, key) cached
            # middle instead of sorting and repr-ing a list.  The output
            # string is identical to the generic path, just cheaper.
            if len(detail) == 1:
                [(key, value)] = detail.items()
                site = (category, actor, key)
                mids = self._digest_mids
                mid = mids.get(site)
                if mid is None:
                    mid = f"|{category}|{actor}|[({key!r}, "
                    if len(mids) < DIGEST_MIDS_MAX:
                        mids[site] = mid
                hasher.update(f"{time!r}{mid}{value!r})]\n".encode())
            else:
                hasher.update(
                    f"{time!r}|{category}|{actor}|{sorted(detail.items())!r}\n".encode()
                )
        if not self.enabled and not self._subscribers:
            return
        record = TraceRecord(time, category, actor, detail)
        if self.enabled:
            self.records.append(record)
        for observer in self._subscribers:
            observer(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: str | None = None, actor: str | None = None) -> list[TraceRecord]:
        """Records matching the given category and/or actor."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        return out

    def categories(self) -> set[str]:
        return {r.category for r in self.records}

    def last(self, category: str) -> TraceRecord | None:
        """Most recent record of ``category``, or None."""
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    def count(self, category: str, actor: str | None = None) -> int:
        """Number of stored records matching ``category`` (and ``actor``)."""
        return len(self.filter(category=category, actor=actor))

    def digest(self) -> str:
        """Content hash of the emitted records.

        Two runs of the same scenario must produce the same digest — this
        is the bit-identical-replay check the fuzz harness relies on.
        With ``digest=True`` the hash was folded in at emit time (O(1)
        memory); otherwise it is computed here from the stored records.
        Both paths hash the same canonical per-record line, so a
        streaming trace and a storing trace of the same run agree.
        """
        if self._hasher is not None:
            return self._hasher.hexdigest()
        h = hashlib.sha256()
        if self.schema == 2:
            h.update(SCHEMA_2_TAG)
        for r in self.records:
            if self._digest_all or r.category in SEMANTIC_CATEGORIES:
                h.update(_digest_line(r.time, r.category, r.actor, r.detail))
        return h.hexdigest()
