"""Simulated resources: serially-executing processors and FIFO links.

Both resources follow the same discipline: work items are served one at a
time in submission order, and the resource keeps aggregate accounting
(busy seconds, bytes moved) that the metrics layer turns into the
utilization and traffic numbers the paper reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulator

Callback = Callable[[], None]


@dataclass(slots=True)
class _Job:
    duration: float
    on_complete: Callback | None
    tag: Any
    on_start: Callback | None = None


class Processor:
    """A resource that executes jobs one at a time, FIFO.

    Models a GPU compute engine: the pipeline scheduler submits forward /
    backward tasks with precomputed durations and the processor serializes
    them.  ``busy_time`` accumulates exact service time, which is what GPU
    utilization is measured from.
    """

    def __init__(self, sim: Simulator, name: str = "proc") -> None:
        self.sim = sim
        self.name = name
        self.busy_time = 0.0
        self.jobs_completed = 0
        self._queue: deque[_Job] = deque()
        self._busy = False
        self._busy_since: float | None = None
        #: fault-injection state: a down processor queues submissions
        #: without starting them until :meth:`restore` (crash/rejoin)
        self._down = False
        self._current: _Job | None = None
        self._current_event = None
        #: optional observer called with True/False on busy transitions;
        #: the WSP runtime uses it to account virtual-worker idle time
        self.on_state_change: Callable[[bool], None] | None = None
        self._notified_busy = False
        if sim.obs is not None:
            sim.obs.register_resource(self)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(
        self,
        duration: float,
        on_complete: Callback | None = None,
        tag: Any = None,
        on_start: Callback | None = None,
    ) -> None:
        """Enqueue a job of ``duration`` seconds; run it when the engine is free."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative job duration {duration}")
        self._queue.append(_Job(duration, on_complete, tag, on_start))
        if not self._busy and not self._down:
            self._start_next()

    def _notify(self) -> None:
        """Report busy/idle only on *net* transitions (back-to-back jobs
        do not toggle the observer)."""
        if self.on_state_change is not None and self._busy != self._notified_busy:
            self._notified_busy = self._busy
            self.on_state_change(self._busy)

    def _start_next(self) -> None:
        if not self._queue:
            return
        job = self._queue.popleft()
        self._busy = True
        self._busy_since = self.sim.now
        self._notify()
        if job.on_start is not None:
            job.on_start()
        self._current = job
        self._current_event = self.sim.schedule(job.duration, self._finish, job)

    def _finish(self, job: _Job) -> None:
        now = self.sim.now
        self.busy_time += now - self._busy_since
        self.jobs_completed += 1
        obs = self.sim.obs
        if obs is not None:
            obs.processor_span(self.name, job.tag, self._busy_since, now)
        # Start the next job before the completion callback so that work
        # submitted from the callback queues behind already-waiting jobs,
        # matching FIFO semantics.  The common back-to-back case (queue
        # non-empty) keeps the processor busy with no net state
        # transition, so the observer is not consulted — this inlines
        # _start_next + _notify minus the no-op branches.
        queue = self._queue
        if queue:
            nxt = queue.popleft()
            self._busy_since = now
            if nxt.on_start is not None:
                nxt.on_start()
            self._current = nxt
            self._current_event = self.sim.schedule(nxt.duration, self._finish, nxt)
        else:
            self._busy = False
            self._busy_since = None
            self._current = None
            self._current_event = None
            if self._notified_busy and self.on_state_change is not None:
                self._notified_busy = False
                self.on_state_change(False)
        if job.on_complete is not None:
            job.on_complete()

    # ------------------------------------------------------------------
    # fault injection (see repro.faults)
    # ------------------------------------------------------------------

    @property
    def down(self) -> bool:
        return self._down

    def fail(self) -> None:
        """Crash the processor: the in-flight job is aborted (it re-runs
        in full after :meth:`restore` — its partial service is lost, as
        on a real crash) and queued work waits for the rejoin."""
        if self._down:
            return
        self._down = True
        if self._busy:
            if self._current_event is not None:
                self._current_event.cancel()
            if self._current is not None:
                self._queue.appendleft(self._current)
            self._current = None
            self._current_event = None
            self._busy = False
            self._busy_since = None
            self._notify()

    def restore(self) -> None:
        """Rejoin after a crash: resume the queued work in order."""
        if not self._down:
            return
        self._down = False
        if not self._busy and self._queue:
            self._start_next()

    def halt(self) -> None:
        """Permanently stop: cancel in-flight work, drop the queue, and
        detach observers — used when a pipeline is abandoned by elastic
        re-partitioning (its replacement re-runs the lost work)."""
        self._down = True
        if self._busy:
            if self._current_event is not None:
                self._current_event.cancel()
            self._current = None
            self._current_event = None
            self._busy = False
            self._busy_since = None
            self._notify()
        self._queue.clear()
        self.on_state_change = None

    def drain_to(self, other: "Processor") -> None:
        """Move queued (and crash-aborted) jobs to ``other``, preserving
        order — PS-shard failover migrates pending applies this way."""
        jobs = list(self._queue)
        self._queue.clear()
        for job in jobs:
            other.submit(job.duration, job.on_complete, tag=job.tag, on_start=job.on_start)

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time busy.  ``elapsed`` defaults to ``sim.now``."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy and self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / window)

    # ------------------------------------------------------------------
    # steady-state fast-forward (see repro.sim.fastforward)
    # ------------------------------------------------------------------

    def ff_counters(self) -> tuple:
        """Cumulative counters whose per-cycle deltas define steady state."""
        return (self.busy_time, self.jobs_completed)

    def ff_levels(self, now: float) -> tuple:
        """Structural state that must repeat exactly across cycles."""
        return (
            len(self._queue),
            self._busy,
            now - self._busy_since if self._busy_since is not None else -1.0,
            tuple(job.duration for job in self._queue),
        )

    def ff_advance(self, cycles: int, deltas: tuple, dt: float) -> None:
        """Apply ``cycles`` confirmed cycles' accounting and shift anchors."""
        self.busy_time += cycles * deltas[0]
        self.jobs_completed += cycles * deltas[1]
        if self._busy_since is not None:
            self._busy_since += dt


class Channel:
    """A FIFO link with latency and bandwidth.

    A transfer of ``nbytes`` occupies the link for ``nbytes / bandwidth``
    seconds after waiting for earlier transfers, then completes ``latency``
    seconds later (latency models propagation + software stack and does
    not occupy the link, so back-to-back messages pipeline as on real
    NICs).  ``bytes_moved`` feeds the cross-node traffic accounting used
    to check the paper's 103 MB vs 515 MB claim.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise SimulationError(f"{name}: latency must be non-negative, got {latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        #: fault-injection state: link degradation scales the effective
        #: bandwidth of *subsequent* transfers (1.0 = healthy; the
        #: no-fault arithmetic is untouched, keeping digests identical)
        self.rate_scale = 1.0
        self.bytes_moved = 0.0
        self.transfers_completed = 0
        self.busy_time = 0.0
        #: total time transfers spent waiting behind earlier ones before
        #: first occupying the link (``start - submit``)
        self.queue_delay_total = 0.0
        #: most transfers ever simultaneously waiting (not yet started)
        self.max_queue_depth = 0
        self._free_at = 0.0
        self._pending_starts: deque[float] = deque()
        if sim.obs is not None:
            sim.obs.register_resource(self)

    def transfer_time(self, nbytes: float) -> float:
        """Unloaded service time for ``nbytes`` (no queueing)."""
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: float, on_complete: Callback | None = None) -> float:
        """Start a transfer; returns its (absolute) completion time."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        now = self.sim.now
        pending = self._pending_starts
        while pending and pending[0] <= now:
            pending.popleft()
        free_at = self._free_at
        if free_at > now:
            start = free_at
            self.queue_delay_total += start - now
            pending.append(start)
            if len(pending) > self.max_queue_depth:
                self.max_queue_depth = len(pending)
        else:
            start = now
        bandwidth = self.bandwidth
        if self.rate_scale != 1.0:
            bandwidth *= self.rate_scale
        occupy = nbytes / bandwidth
        self._free_at = start + occupy
        done = self._free_at + self.latency
        self.busy_time += occupy
        self.bytes_moved += nbytes
        self.transfers_completed += 1
        obs = self.sim.obs
        if obs is not None:
            obs.channel_span(self.name, start, start + occupy, nbytes)
        if on_complete is not None:
            self.sim.schedule_at(done, on_complete)
        return done

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time the link was occupied by payload bytes."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_time / window)

    # ------------------------------------------------------------------
    # steady-state fast-forward (see repro.sim.fastforward)
    # ------------------------------------------------------------------

    def ff_counters(self) -> tuple:
        """Cumulative counters whose per-cycle deltas define steady state."""
        return (
            self.bytes_moved,
            self.transfers_completed,
            self.busy_time,
            self.queue_delay_total,
        )

    def ff_levels(self, now: float) -> tuple:
        """Structural state that must repeat exactly across cycles."""
        return (
            max(self._free_at - now, 0.0),
            self.max_queue_depth,
            tuple(start - now for start in self._pending_starts),
        )

    def ff_advance(self, cycles: int, deltas: tuple, dt: float) -> None:
        """Apply ``cycles`` confirmed cycles' accounting and shift anchors."""
        self.bytes_moved += cycles * deltas[0]
        self.transfers_completed += cycles * deltas[1]
        self.busy_time += cycles * deltas[2]
        self.queue_delay_total += cycles * deltas[3]
        self._free_at += dt
        if self._pending_starts:
            self._pending_starts = deque(start + dt for start in self._pending_starts)
