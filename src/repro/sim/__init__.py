"""Discrete-event simulation engine.

This package is the substrate every performance experiment runs on.  It is
a deliberately small, deterministic event-driven simulator:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.resources.Processor` — a serially-executing resource
  (a GPU's compute engine) with busy-time accounting.
* :class:`~repro.sim.resources.Channel` — a FIFO bandwidth/latency link
  (PCIe lane, InfiniBand NIC) with traffic accounting.
* :class:`~repro.sim.trace.Trace` — structured event recording used by the
  metrics layer and by tests asserting ordering invariants.
* :mod:`~repro.sim.fastforward` — steady-state macro-event coalescing
  (the ``fidelity="fast_forward"`` mode) and its cycle detector.
* :mod:`~repro.sim.equivalence` — the semantic-equivalence contract that
  replaces bit-identical digests for coalesced runs.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.equivalence import compare_fingerprints, semantic_fingerprint
from repro.sim.fastforward import (
    FIDELITY_MODES,
    FastForwardSummary,
    SteadyStateDetector,
    run_pipeline_fast_forward,
)
from repro.sim.resources import Channel, Processor
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Channel",
    "Event",
    "FIDELITY_MODES",
    "FastForwardSummary",
    "Processor",
    "Simulator",
    "SteadyStateDetector",
    "Trace",
    "TraceRecord",
    "compare_fingerprints",
    "run_pipeline_fast_forward",
    "semantic_fingerprint",
]
