"""Discrete-event simulation engine.

This package is the substrate every performance experiment runs on.  It is
a deliberately small, deterministic event-driven simulator:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.resources.Processor` — a serially-executing resource
  (a GPU's compute engine) with busy-time accounting.
* :class:`~repro.sim.resources.Channel` — a FIFO bandwidth/latency link
  (PCIe lane, InfiniBand NIC) with traffic accounting.
* :class:`~repro.sim.trace.Trace` — structured event recording used by the
  metrics layer and by tests asserting ordering invariants.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Channel, Processor
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Channel",
    "Event",
    "Processor",
    "Simulator",
    "Trace",
    "TraceRecord",
]
