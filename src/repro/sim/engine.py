"""Deterministic discrete-event simulation core.

The engine is callback-based: client code schedules ``(delay, fn)`` pairs
and the simulator invokes them in timestamp order, breaking ties by
insertion order so runs are fully reproducible.  There are no threads and
no wall-clock dependence; simulated time is a plain ``float`` in seconds.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` which is exactly the execution
    order.  ``seq`` is a monotonically increasing insertion counter so two
    events at the same timestamp run in the order they were scheduled.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    canceled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.canceled = True


class Simulator:
    """Event loop with a simulated clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if not math.isfinite(delay):
            raise SimulationError(f"non-finite delay {delay!r} scheduled at t={self._now}")
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} scheduled at t={self._now}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time {time!r} (now={self._now})")
        if time < self._now:
            raise SimulationError(
                f"event scheduled in the past: t={time} < now={self._now}"
            )
        event = Event(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def peek(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].canceled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.canceled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, the clock passes ``until``,
        or ``max_events`` callbacks have executed.

        ``until`` is a horizon: the event *at* ``until`` still runs, and
        the clock is advanced to ``until`` when the horizon cuts the run
        short (so utilization denominators are well defined).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.peek()
            if next_time is None:
                if until is not None:
                    self._now = max(self._now, until)
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely; guard against runaway event storms."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events"
                )
