"""Deterministic discrete-event simulation core.

The engine is callback-based: client code schedules ``(delay, fn)`` pairs
and the simulator invokes them in timestamp order, breaking ties by
insertion order so runs are fully reproducible.  There are no threads and
no wall-clock dependence; simulated time is a plain ``float`` in seconds.

The event queue is a heap of ``(time, seq, event)`` tuples: ``seq`` is a
monotonically increasing insertion counter, so tuple comparison resolves
entirely in C on the ``(time, seq)`` prefix and the :class:`Event`
objects themselves never need to be compared.  Canceled events stay in
the heap (removing an arbitrary heap entry is O(n)) and are skipped when
popped; when more than half the queue is dead weight the simulator
compacts it in one pass, so long runs that cancel heavily (WSP timeout
storms) do not keep paying to pop corpses.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError

#: Queues smaller than this are never compacted — the rebuild would cost
#: more than skipping the few dead entries ever could.
_COMPACT_MIN_QUEUE = 64


class Event:
    """A scheduled callback (handle returned by :meth:`Simulator.schedule`).

    The execution order is ``(time, seq)``: two events at the same
    timestamp run in the order they were scheduled.
    """

    __slots__ = ("time", "seq", "callback", "args", "canceled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.canceled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if not self.canceled:
            self.canceled = True
            self._sim._note_canceled()


class Simulator:
    """Event loop with a simulated clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        #: current simulated time in seconds (read-only by convention;
        #: a plain attribute because the property trampoline is
        #: measurable at hot-path call rates)
        self.now = 0.0
        #: number of callbacks executed so far (for diagnostics)
        self.events_processed = 0
        #: events analytically coalesced by fast-forward skips instead of
        #: being dispatched (see :mod:`repro.sim.fastforward`)
        self.events_fast_forwarded = 0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._canceled_in_queue = 0
        #: optional telemetry collector (:class:`repro.obs.ObsCollector`);
        #: resources created against this simulator report spans to it.
        #: None (the default) keeps the hot path free of any obs work.
        self.obs: Any = None

    @property
    def queue_depth(self) -> int:
        """Heap entries currently held, live or canceled (diagnostics)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if not math.isfinite(delay):
            raise SimulationError(f"non-finite delay {delay!r} scheduled at t={self.now}")
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} scheduled at t={self.now}")
        time = self.now + delay
        # finite now + finite delay can still overflow to inf; the
        # never-in-the-past check is the only one safe to skip here
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time {time!r} (now={self.now})")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if not math.isfinite(time):
            raise SimulationError(f"non-finite event time {time!r} (now={self.now})")
        if time < self.now:
            raise SimulationError(
                f"event scheduled in the past: t={time} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, event))
        return event

    def _note_canceled(self) -> None:
        """An event handle was canceled; compact once corpses dominate.

        The counter can overestimate (an event canceled *after* it ran is
        no longer in the queue) — compaction then simply finds less to
        remove and resets the count to the truth.
        """
        self._canceled_in_queue += 1
        queue = self._queue
        if (
            len(queue) >= _COMPACT_MIN_QUEUE
            and self._canceled_in_queue * 2 > len(queue)
        ):
            self._queue = [entry for entry in queue if not entry[2].canceled]
            heapify(self._queue)
            self._canceled_in_queue = 0

    def fast_forward(self, dt: float, events_coalesced: int = 0) -> None:
        """Translate the clock and every pending event by ``dt`` seconds.

        This is the engine half of a steady-state skip: periodic dynamics
        are invariant under time translation, so shifting ``now`` and all
        queued timestamps by the same amount reproduces the state the
        simulation would reach after the coalesced cycles — provided the
        *caller* has verified periodicity and bulk-updated all client
        state (see :mod:`repro.sim.fastforward`).  The uniform shift
        preserves both heap order and same-timestamp sequence order, so
        no re-heapify is needed.
        """
        if not math.isfinite(dt):
            raise SimulationError(f"non-finite fast-forward {dt!r} at t={self.now}")
        if dt < 0:
            raise SimulationError(f"negative fast-forward {dt!r} at t={self.now}")
        if events_coalesced < 0:
            raise SimulationError(
                f"negative events_coalesced {events_coalesced} at t={self.now} "
                f"(corrupted cycle detection?)"
            )
        self.now += dt
        queue = self._queue
        for i, (time, seq, event) in enumerate(queue):
            event.time = time + dt
            queue[i] = (time + dt, seq, event)
        self.events_fast_forwarded += events_coalesced

    def peek(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and queue[0][2].canceled:
            heappop(queue)
            self._canceled_in_queue -= 1
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False when none remain."""
        queue = self._queue
        while queue:
            time, _seq, event = heappop(queue)
            if event.canceled:
                self._canceled_in_queue -= 1
                continue
            self.now = time
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, the clock passes ``until``,
        or ``max_events`` callbacks have executed.

        ``until`` is a horizon: the event *at* ``until`` still runs, and
        the clock is advanced to ``until`` when the horizon cuts the run
        short (so utilization denominators are well defined).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.peek()
            if next_time is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            executed += 1

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely; guard against runaway event storms."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events"
                )
