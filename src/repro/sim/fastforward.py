"""Steady-state fast-forward: macro-event coalescing for periodic regimes.

Both PipeDream and BaPipe analyze 1F1B pipelines through their periodic
steady state, and HetPipe's §4 WSP analysis reasons about steady-state
minibatch rates per virtual worker: after warmup, each worker repeats a
fixed per-cycle work pattern, so most simulated events are redundant
copies of one observed cycle.  This module detects that regime and lets
a client advance ``N`` cycles analytically — one clock translation plus
bulk counter updates — instead of dispatching ``O(minibatches × stages)``
heap events.

The contract is *semantic equivalence*, not bit-identical event streams:
a fast-forwarded run must reproduce makespan, per-stage / per-resource
utilization, minibatch counts, and staleness statistics of the full run
within 1e-9 relative error (see :mod:`repro.sim.equivalence` for the
oracle).  The pieces:

* :class:`SteadyStateDetector` — watches per-cycle deltas at
  client-defined boundaries (minibatch completions for a standalone
  pipeline, global-version advances for the WSP runtime).  A cycle is
  declared only when the *entire* per-cycle signature — counter deltas,
  structural levels, and the relative fingerprint of the pending event
  queue — repeats for ``confirm`` consecutive cycles.  Near-periodic
  streams (task jitter, drifting phases) never repeat exactly and are
  refused; periods up to ``max_period`` boundaries are recognized so
  multi-worker interleavings with longer super-cycles still coalesce.
* :func:`queue_fingerprint` — the pending event queue reduced to
  ``(callback site, argument count, time - now)`` triples.  Periodic
  dynamics are *time-translation invariant*: if the queue's relative
  structure and all state deltas repeat, the future evolves as a shifted
  copy of the observed cycle, which is exactly what the skip applies.
* :func:`run_pipeline_fast_forward` — the driver for standalone
  pipelines (:class:`~repro.pipeline.virtual_worker.VirtualWorkerPipeline`
  and :class:`~repro.pipeline.one_f_one_b.OneFOneBPipeline`): boundary
  per minibatch completion, with optional *preserved* completion indices
  that are always simulated (measurement windows sample state there).
* :class:`FastForwardSummary` — the macro event handed to invariant
  oracles and folded into ``hetpipe-trace/2`` digests in place of the
  coalesced raw records.

Float tolerance: cycle deltas are compared at ``rel_tol = 1e-12``.  True
periodic streams differ only by accumulated rounding (~1e-14 relative),
while genuinely aperiodic ones (jitter is >= 1e-2) differ by orders of
magnitude more, so the band between detection tolerance and the 1e-9
equivalence contract is wide on both sides: a skip of ``N`` cycles can
introduce at most ``~N * rel_tol`` relative drift, far inside 1e-9 for
any horizon the harness runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

#: Fidelity switch values accepted across the simulation stack.
FIDELITY_MODES = ("full", "fast_forward")

#: Relative tolerance for matching per-cycle float deltas (see module
#: docstring for why this sits far from both rounding noise and 1e-9).
REL_TOL = 1e-12

#: Longest super-cycle (in boundaries) the detector recognizes.
MAX_PERIOD = 4

#: Consecutive identical cycles required before a skip (the issue's K).
CONFIRM = 2


def validate_fidelity(fidelity: str) -> str:
    if fidelity not in FIDELITY_MODES:
        raise SimulationError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITY_MODES}"
        )
    return fidelity


def _values_match(a: Any, b: Any, rel_tol: float) -> bool:
    """Structural equality with float tolerance.

    Ints, strings, and bools compare exactly; floats compare relatively
    (mixed int/float pairs compare as floats).  Tuples recurse.
    """
    if a is b:
        return True
    if isinstance(a, tuple):
        if not isinstance(b, tuple) or len(a) != len(b):
            return False
        return all(_values_match(x, y, rel_tol) for x, y in zip(a, b))
    if isinstance(a, float) or isinstance(b, float):
        if a == b:
            return True
        try:
            return abs(a - b) <= rel_tol * max(abs(a), abs(b))
        except TypeError:
            return False
    return a == b


def _site_of(callback: Any) -> str:
    """A stable, process-independent identity for an event callback.

    Lambdas created at the same source site share one code object, so
    ``module:qualname`` names the *site*, not the closure instance —
    exactly the granularity at which periodic cycles repeat.
    """
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", "?")
    qualname = getattr(func, "__qualname__", repr(type(func).__name__))
    return f"{module}:{qualname}"


def queue_fingerprint(sim: "Simulator") -> tuple:
    """Relative structural fingerprint of the pending event queue.

    Each live event contributes ``(site, nargs, time - now)``; the
    multiset is canonicalized by sorting.  Two boundaries with matching
    fingerprints (times within tolerance) hold time-translated copies of
    the same pending work.
    """
    now = sim.now
    entries = [
        (_site_of(event.callback), len(event.args), time - now)
        for time, _seq, event in sim._queue
        if not event.canceled
    ]
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return tuple(entries)


@dataclass(frozen=True)
class DetectedCycle:
    """One confirmed steady-state cycle, ready to be replayed in bulk."""

    period: int  #: boundaries per cycle
    dt: float  #: simulated seconds per cycle
    deltas: tuple  #: per-cycle counter deltas (client-defined layout)
    boundary_dts: tuple  #: per-boundary dt within the cycle (len == period)


@dataclass(frozen=True)
class FastForwardSummary:
    """The macro event describing one applied skip.

    Handed to :meth:`~repro.sim.invariants.RuntimeOracle.on_fast_forward`
    so live oracles can bulk-advance their expectations, and folded into
    ``hetpipe-trace/2`` digests in place of the coalesced raw records.
    """

    time: float  #: simulated time after the jump
    dt: float  #: simulated seconds coalesced
    cycles: int  #: macro cycles applied
    period: int  #: boundaries per macro cycle
    events_coalesced: int  #: heap events that were never dispatched
    minibatches: tuple  #: per-virtual-worker minibatch advance
    waves: tuple  #: per-virtual-worker wave advance
    versions: int  #: global-version advance (0 for standalone pipelines)


class SteadyStateDetector:
    """Confirms periodic steady state from boundary snapshots.

    The client calls :meth:`observe` at every cycle boundary with the
    current simulated time, a flat tuple of cumulative *counters*, and a
    structural *shape* (levels + queue fingerprint).  Once the same
    per-cycle delta has repeated ``confirm`` times — at any period up to
    ``max_period`` — the stable :class:`DetectedCycle` is returned and
    the client may apply a skip, after which it must call :meth:`rebase`
    with the totals it applied so subsequent boundaries keep matching
    without re-confirming from scratch.
    """

    def __init__(
        self,
        max_period: int = MAX_PERIOD,
        confirm: int = CONFIRM,
        rel_tol: float = REL_TOL,
    ) -> None:
        if confirm < 2:
            raise SimulationError("confirm must be >= 2 (one repeat is no pattern)")
        self.max_period = max_period
        self.confirm = confirm
        self.rel_tol = rel_tol
        self.cycles_detected = 0
        self._times: list[float] = []
        self._counters: list[tuple] = []
        self._shapes: list[tuple] = []
        #: boundaries needed to confirm the longest period
        self._keep = max_period * confirm + 1

    def _delta(self, i: int, j: int) -> tuple:
        """Counter deltas between history entries ``j`` (earlier) and ``i``."""
        return tuple(a - b for a, b in zip(self._counters[i], self._counters[j]))

    def observe(self, now: float, counters: tuple, shape: tuple) -> DetectedCycle | None:
        """Record a boundary snapshot; return the cycle once confirmed."""
        times, counts, shapes = self._times, self._counters, self._shapes
        if counts and len(counts[-1]) != len(counters):
            # The component inventory changed (e.g. a lazily-created PS
            # stream): earlier snapshots are incomparable — start over.
            del times[:], counts[:], shapes[:]
        times.append(now)
        counts.append(counters)
        shapes.append(shape)
        if len(times) > self._keep:
            del times[0], counts[0], shapes[0]
        n = len(times)
        tol = self.rel_tol
        for m in range(1, self.max_period + 1):
            span = self.confirm * m  # boundary intervals needed
            if n < span + 1:
                break
            last = n - 1
            # Anchor state must repeat exactly one period back...
            if not _values_match(shapes[last], shapes[last - m], tol):
                continue
            # ...and every boundary delta must match its lag-m twin over
            # confirm-1 full periods.
            ok = True
            for j in range(1, span - m + 1):
                a = (times[last - j + 1] - times[last - j],) + self._delta(last - j + 1, last - j)
                b = (times[last - j + 1 - m] - times[last - j - m],) + self._delta(
                    last - j + 1 - m, last - j - m
                )
                if not _values_match(a, b, tol):
                    ok = False
                    break
            if not ok:
                continue
            self.cycles_detected += 1
            return DetectedCycle(
                period=m,
                dt=times[last] - times[last - m],
                deltas=self._delta(last, last - m),
                boundary_dts=tuple(
                    times[last - m + j + 1] - times[last - m + j] for j in range(m)
                ),
            )
        return None

    def rebase(self, dt: float, deltas: Sequence) -> None:
        """Shift the recorded history past an applied skip.

        Adding the skip's totals to every stored snapshot keeps all
        historical per-cycle deltas intact, so the boundary right after
        a skip still matches and chained skips confirm instantly.
        """
        self._times = [t + dt for t in self._times]
        self._counters = [
            tuple(c + d for c, d in zip(entry, deltas)) for entry in self._counters
        ]


def pipeline_components(pipeline) -> list:
    """Fixed component order shared by every pipeline-shaped client."""
    comps: list = [pipeline]
    for state in pipeline.stages:
        comps.append(state.processor)
        if state.to_next is not None:
            comps.append(state.to_next)
        if state.to_prev is not None:
            comps.append(state.to_prev)
    return comps


def collect_counters(sim: "Simulator", comps: Iterable) -> tuple:
    """Flat cumulative-counter vector: slot 0 is the *virtual* event
    count (dispatched + coalesced) followed by per-component counters.

    The virtual count — unlike ``events_processed`` alone — advances by
    exactly one cycle's worth per boundary even across a skip, so
    :meth:`SteadyStateDetector.rebase` keeps history consistent and
    chained skips confirm instantly instead of corrupting slot 0.
    """
    values: list = [sim.events_processed + sim.events_fast_forwarded]
    for comp in comps:
        values.extend(comp.ff_counters())
    return tuple(values)


def collect_shape(sim: "Simulator", comps: Iterable) -> tuple:
    """Structural signature: per-component levels + queue fingerprint."""
    now = sim.now
    levels = tuple(comp.ff_levels(now) for comp in comps)
    return (levels, queue_fingerprint(sim))


def advance_components(
    comps: Sequence, sizes: Sequence[int], cycles: int, deltas: Sequence, dt: float
) -> None:
    """Distribute the flat delta vector back onto the components.

    ``deltas`` excludes the leading events-processed slot (the caller
    owns the simulator); ``sizes`` is each component's counter width.
    """
    offset = 0
    for comp, size in zip(comps, sizes):
        comp.ff_advance(cycles, deltas[offset : offset + size], dt)
        offset += size


def run_pipeline_fast_forward(
    pipeline,
    limit: int,
    preserve: Iterable[int] = (),
    max_events: int | None = None,
    detector: SteadyStateDetector | None = None,
) -> int:
    """Drive a standalone pipeline to quiescence, coalescing steady cycles.

    ``limit`` is the pipeline's admission cap (public minibatch ids);
    skips never admit past it, so the drain tail is always simulated.
    Completion indices in ``preserve`` are guaranteed to execute as real
    events (measurement code samples state in completion callbacks
    there).  Returns the number of minibatches fast-forwarded.

    ``done_times`` is kept contiguous: coalesced completions are filled
    in arithmetically from the confirmed cycle, so readers that index it
    (warmup/total window bounds) see every minibatch.  ``inject_times``
    and ``staleness_ledger`` only cover simulated minibatches — the
    semantic contract covers aggregates, not per-minibatch ledgers.
    """
    sim = pipeline.sim
    if getattr(pipeline, "jitter", 0.0) > 0.0:
        # Near-periodic by construction: the detector would refuse every
        # cycle anyway, so skip the bookkeeping entirely.
        sim.run_until_idle(**({"max_events": max_events} if max_events else {}))
        return 0
    det = detector if detector is not None else SteadyStateDetector()
    comps = pipeline_components(pipeline)
    sizes = [len(comp.ff_counters()) for comp in comps]
    boundaries = sorted(b for b in set(preserve) if b > 0)
    skipped = 0
    executed = 0
    last_completed = pipeline.completed
    while sim.step():
        executed += 1
        if max_events is not None and executed > max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        if pipeline.completed == last_completed:
            continue
        last_completed = pipeline.completed
        counters = collect_counters(sim, comps)
        cycle = det.observe(sim.now, counters, collect_shape(sim, comps))
        if cycle is None:
            continue
        m = cycle.period
        # Admissions during skipped cycles must stay within the limit
        # (steady state implies one inject per completion)...
        injected_public = pipeline.next_minibatch - 1 + pipeline.mb_offset
        budget = limit - injected_public
        # ...and no skipped cycle may swallow a preserved completion.
        for boundary in boundaries:
            if boundary > pipeline.completed:
                budget = min(budget, boundary - 1 - pipeline.completed)
                break
        cycles = budget // m
        if cycles <= 0:
            continue
        dt = cycles * cycle.dt
        events_delta = cycle.deltas[0]
        # Fill the coalesced completion times before counters move: each
        # boundary is one completion, at the confirmed per-boundary dts.
        done = pipeline.done_times
        anchor = sim.now
        index = pipeline.completed
        for i in range(cycles):
            base = anchor + i * cycle.dt
            offset = 0.0
            for boundary_dt in cycle.boundary_dts:
                offset += boundary_dt
                index += 1
                done[index] = base + offset
        sim.fast_forward(dt, events_coalesced=cycles * events_delta)
        advance_components(comps, sizes, cycles, cycle.deltas[1:], dt)
        minibatches = cycles * m
        skipped += minibatches
        pipeline.trace.emit(
            sim.now,
            "fast_forward",
            pipeline.name,
            cycles=cycles,
            period=m,
            dt=dt,
            minibatches=minibatches,
            events=cycles * events_delta,
        )
        det.rebase(dt, tuple(cycles * d for d in cycle.deltas))
        last_completed = pipeline.completed
    return skipped
