"""The semantic-equivalence fidelity contract.

Fast-forward runs no longer replay the full run event for event, so the
bit-identical-digest check cannot gate them.  What replaces it is this
contract: a coalesced run must reproduce the *semantics* of the full run
— makespan, per-stage and per-resource utilization and traffic,
minibatch/wave/pull counts, and staleness statistics — within
``REL_TOL_EQUIVALENCE`` relative error.  Integer-valued quantities must
match exactly.

:func:`semantic_fingerprint` flattens a finished
:class:`~repro.wsp.runtime.HetPipeRuntime` into a named scalar map and
:func:`compare_fingerprints` diffs two of them; the fuzz harness runs
the full-fidelity twin of every fast-forwarded scenario and reports any
difference as a violation (``repro fuzz --fidelity fast_forward`` must
report zero), and the hypothesis suite drives the same comparison over
generated configurations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - layering: sim must not import wsp
    from repro.wsp.runtime import HetPipeRuntime

#: The contract's tolerance for float quantities (relative).
REL_TOL_EQUIVALENCE = 1e-9

#: Absolute floor so quantities that are exactly zero in one mode and
#: ~1e-300 in the other (dead channels) do not trip the relative test.
ABS_TOL_EQUIVALENCE = 1e-12


def semantic_fingerprint(runtime: "HetPipeRuntime") -> dict[str, Any]:
    """Flatten a finished runtime into the contract's observable scalars.

    Keys are stable, human-readable paths so a violation names exactly
    which observable diverged.  Per-minibatch ledgers are deliberately
    absent: a coalesced run re-labels in-flight ids across a skip, and
    the contract covers aggregates, not event-level artifacts.
    """
    fp: dict[str, Any] = {
        "makespan": runtime.sim.now,
        "ps.pushes": runtime.ps.pushes_completed,
        "ps.pulls": runtime.ps.pulls_completed,
        "ps.sync_bytes": runtime.ps.sync_bytes_total,
        "ps.sync_bytes_cross_node": runtime.ps.sync_bytes_cross_node,
        "ps.global_version": runtime.ps.global_version,
    }
    for vw, wave in enumerate(runtime.ps.pushed_wave):
        fp[f"ps.pushed_wave.vw{vw}"] = wave
    # Sharded PS only (empty at shards=1, keeping legacy fingerprints
    # key-identical): per-shard-slot cumulative bytes.
    for slot, nbytes in enumerate(runtime.ps.shard_bytes):
        fp[f"ps.shard_bytes.k{slot}"] = nbytes
    for vw, (pipeline, stats, gate) in enumerate(
        zip(runtime.pipelines, runtime.stats, runtime.gates)
    ):
        prefix = f"vw{vw}"
        fp[f"{prefix}.minibatches"] = stats.minibatches_done
        fp[f"{prefix}.waves"] = stats.waves_pushed
        fp[f"{prefix}.pulls"] = stats.pulls
        fp[f"{prefix}.waiting_time"] = stats.waiting_time
        fp[f"{prefix}.idle_in_wait"] = stats.idle_in_wait
        fp[f"{prefix}.completed"] = pipeline.completed
        fp[f"{prefix}.pulled_version"] = gate.pulled_version
        for s, state in enumerate(pipeline.stages):
            fp[f"{prefix}.s{s}.busy_time"] = state.processor.busy_time
            fp[f"{prefix}.s{s}.jobs"] = state.processor.jobs_completed
            fp[f"{prefix}.s{s}.utilization"] = state.processor.utilization()
            fp[f"{prefix}.s{s}.peak_in_flight"] = state.peak_in_flight
            for label, edge in (("act", state.to_next), ("grad", state.to_prev)):
                if edge is None:
                    continue
                fp[f"{prefix}.s{s}.{label}.bytes"] = edge.bytes_moved
                fp[f"{prefix}.s{s}.{label}.transfers"] = edge.transfers_completed
                # Dedicated channels track occupancy/queueing per edge;
                # FabricEdge adapters share those at the fabric level.
                busy_time = getattr(edge, "busy_time", None)
                if busy_time is not None:
                    fp[f"{prefix}.s{s}.{label}.busy_time"] = busy_time
                    fp[f"{prefix}.s{s}.{label}.queue_delay"] = edge.queue_delay_total
    # Staleness statistics come from the live oracle when one is attached
    # (the fuzz harness always attaches the default suite).
    for oracle in runtime.oracles:
        max_missing = getattr(oracle, "max_missing", None)
        if max_missing is not None:
            fp["staleness.max_missing"] = max_missing
            fp["staleness.bound"] = oracle.bound
            break
    return fp


def compare_fingerprints(
    reference: dict[str, Any],
    candidate: dict[str, Any],
    rel_tol: float = REL_TOL_EQUIVALENCE,
    abs_tol: float = ABS_TOL_EQUIVALENCE,
) -> list[str]:
    """Differences between two fingerprints, empty when equivalent.

    ``reference`` is the full-fidelity run.  Integer observables must
    match exactly; floats within ``rel_tol`` (or ``abs_tol`` near zero).
    """
    problems: list[str] = []
    for key in sorted(set(reference) | set(candidate)):
        if key not in reference or key not in candidate:
            problems.append(f"equivalence: {key} present in only one run")
            continue
        a, b = reference[key], candidate[key]
        if isinstance(a, int) and isinstance(b, int):
            if a != b:
                problems.append(f"equivalence: {key} full={a} fast_forward={b}")
            continue
        if a == b:
            continue
        scale = max(abs(float(a)), abs(float(b)))
        if abs(float(a) - float(b)) > max(abs_tol, rel_tol * scale):
            problems.append(
                f"equivalence: {key} full={a!r} fast_forward={b!r} "
                f"(rel err {abs(float(a) - float(b)) / scale:.3e})"
            )
    return problems
