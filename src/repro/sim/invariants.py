"""Runtime invariant oracles for the WSP/pipeline simulator.

The test suite spot-checks the paper's correctness properties on a
handful of hand-written configurations; this module turns those
properties into *always-on oracles* that watch any run live and raise
:class:`~repro.errors.InvariantViolation` the moment an execution
becomes impossible under the paper's rules:

* :class:`StalenessOracle` — §5 admission: no minibatch ever starts
  missing more than the variant's staleness bound (for every zoo entry
  that is HetPipe's ``s_global = (D+1)(s_local+1) + s_local - 1``, read
  from the run's :class:`~repro.pipeline.variants.VariantDef` so a
  future variant with a different contract brings its own bound).
* :class:`WeightVersionOracle` — the variant's weight-version ledger
  contract: the number of distinct weight versions pinned by in-flight
  minibatches never exceeds ``VariantDef.max_weight_versions(Nm)``
  (PipeDream's ``<= Nm`` version distance, 2BW's two-buffer cap, the
  flush variant's frozen-version rule).  A no-op for the default
  variant, whose contract is unchecked.
* :class:`FlushOracle` — wave-flush discipline for ``wave_flush``
  variants: a minibatch of wave ``w`` never injects before every
  earlier wave fully drained.  A no-op for continuous variants.
* :class:`SchedulingOracle` — the §4 scheduling conditions, checked per
  stage from the live trace: forwards in minibatch order (cond. 1),
  backwards in minibatch order (cond. 2), fused forward+backward only on
  the last partition (cond. 4), and dataflow causality (a stage cannot
  run work whose inputs have not arrived).
* :class:`VersionOracle` — parameter-server clocks: each worker's waves
  record strictly in order, and the global version is exactly the
  minimum over workers and never regresses.
* :class:`ConservationOracle` — counts must reconcile: trace-observed
  injections/completions vs. the runtime's stats vs. the pipelines'
  counters vs. the PS push/pull totals.
* :class:`FabricOracle` — shared-network laws when a contention-aware
  :class:`~repro.netsim.fabric.Fabric` is attached: flow conservation
  (bytes in == bytes out per traversed resource), per-resource
  utilization <= 1, and PS traffic totals matching the fabric's PS flow
  ledger.  A no-op under the dedicated network model.
* :class:`OneFOneBOracle` — PipeDream-style dispatch discipline for
  :class:`~repro.pipeline.one_f_one_b.OneFOneBPipeline`: a stage never
  starts a forward while its next in-order backward is ready.

Fault-injected runs swap in the *graceful-degradation* family
(:func:`fault_oracles`): :class:`RecoveryOracle` (every transient fault
recovers in bounded time, no send is left stranded, the checkpoint
ledger keeps pace), :class:`FailoverConservationOracle` (no minibatch
is lost across crash/rejoin or PS failover — every recorded wave is
backed by completed minibatches), and :class:`DegradationOracle`
(makespan degrades no worse than proportionally to the injected
slowdowns, link degradation, downtime, and capacity lost).  The
scheduling/conservation oracles assume a replay-free single topology,
which elastic recovery deliberately breaks, so they stay out of the
fault suite; staleness and version clocks must hold under faults and
stay in.

Quiescence (no deadlock within an event budget) is enforced by the fuzz
runner through ``run_until_global_version``'s budget rather than an
oracle class, since it is a property of the run loop, not of any single
event.

The oracles attach through the runtime's existing plumbing — the
:class:`~repro.sim.trace.Trace` subscriber hook, the pipeline's
``on_inject`` callback, and the parameter server's push observer — so a
checked run executes the exact same event sequence as an unchecked one
(same trace digest, modulo the cost of the checks themselves).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.pipeline.tasks import wave_of
from repro.sim.fastforward import FastForwardSummary
from repro.sim.trace import TraceRecord
from repro.wsp.staleness import global_staleness, local_staleness, missing_updates

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (wsp -> sim)
    from repro.pipeline.one_f_one_b import OneFOneBPipeline
    from repro.wsp.runtime import HetPipeRuntime


class RuntimeOracle:
    """Base class: a passive observer of one :class:`HetPipeRuntime` run.

    Subclasses override the callbacks they care about and raise
    :class:`InvariantViolation` on the first impossible observation —
    failing fast pins the violation to the exact simulated moment it
    happened, which is what makes fuzz findings debuggable.
    """

    runtime: "HetPipeRuntime | None" = None

    def bind(self, runtime: "HetPipeRuntime") -> None:
        """Called once by the runtime before the run starts."""
        self.runtime = runtime

    def on_inject(self, vw: int, minibatch: int, pulled_version: int, time: float) -> None:
        """Minibatch admitted into ``vw``'s pipeline."""

    def on_minibatch_done(self, vw: int, minibatch: int, time: float) -> None:
        """Minibatch fully drained from ``vw``'s pipeline."""

    def on_push_recorded(self, vw: int, wave: int, global_version: int) -> None:
        """The PS recorded ``vw``'s push of ``wave``."""

    def on_pull_done(self, vw: int, version: int, time: float) -> None:
        """``vw`` finished pulling global weights at ``version``."""

    def on_trace(self, record: TraceRecord) -> None:
        """Raw trace record (scheduling-level events)."""

    def on_fast_forward(self, summary: FastForwardSummary) -> None:
        """A steady-state skip coalesced ``summary.cycles`` cycles.

        The skipped region is a confirmed repetition of cycles the oracle
        already observed and accepted, so subclasses bulk-advance their
        expectations rather than re-checking what cannot have changed.
        """

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        """End-of-run reconciliation (called by ``check_invariants``)."""


class StalenessOracle(RuntimeOracle):
    """Variant staleness contract: admission never exceeds the bound.

    The bound comes from the run's variant definition (every current
    zoo entry shares HetPipe's §5 ``s_global`` because they all run on
    the WSP pull substrate); a runtime without a variant — e.g. a
    hand-rolled harness predating the zoo — falls back to the §5
    formula directly.
    """

    def __init__(self) -> None:
        self.max_missing = 0
        self.bound: int | None = None
        self.checked = 0

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        variant_def = getattr(runtime, "variant_def", None)
        if variant_def is not None:
            self.bound = variant_def.staleness_bound(runtime.d, runtime.nm)
        else:
            self.bound = global_staleness(runtime.d, local_staleness(runtime.nm))

    def on_inject(self, vw: int, minibatch: int, pulled_version: int, time: float) -> None:
        assert self.runtime is not None and self.bound is not None
        missing = missing_updates(minibatch, pulled_version, self.runtime.nm)
        self.checked += 1
        self.max_missing = max(self.max_missing, missing)
        if missing > self.bound:
            raise InvariantViolation(
                f"staleness: vw{vw} started minibatch {minibatch} at t={time:.6f} "
                f"with pulled version {pulled_version}, missing {missing} updates "
                f"> s_global={self.bound} (D={self.runtime.d}, Nm={self.runtime.nm})"
            )


class WeightVersionOracle(RuntimeOracle):
    """Variant weight-version ledger contract (see the zoo's defs).

    Each pipeline stamps every in-flight minibatch with the weight
    version it was admitted under; this oracle checks, at every
    admission, that the number of *distinct* stamped versions stays
    within the variant's contract — ``<= Nm`` for PipeDream's version
    distance, ``<= 2`` for 2BW's double buffer and the flush variant's
    frozen wave.  The default variant leaves the ledger unchecked
    (``max_weight_versions`` is None) and this oracle is inert.
    """

    def __init__(self) -> None:
        self.bound: int | None = None
        self.checked = 0

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        variant_def = getattr(runtime, "variant_def", None)
        self.bound = (
            variant_def.max_weight_versions(runtime.nm)
            if variant_def is not None
            else None
        )

    def on_inject(self, vw: int, minibatch: int, pulled_version: int, time: float) -> None:
        if self.bound is None:
            return
        assert self.runtime is not None
        alive = self.runtime.pipelines[vw].versions_alive()
        self.checked += 1
        if alive > self.bound:
            raise InvariantViolation(
                f"weight versions: vw{vw} admitted minibatch {minibatch} at "
                f"t={time:.6f} with {alive} distinct weight versions alive "
                f"> {self.bound} ({self.runtime.variant} contract, "
                f"Nm={self.runtime.nm})"
            )

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        if self.bound is None:
            return
        for vw, pipeline in enumerate(runtime.pipelines):
            if pipeline.versions_peak > self.bound:
                raise InvariantViolation(
                    f"weight versions: vw{vw} peaked at "
                    f"{pipeline.versions_peak} distinct weight versions "
                    f"> {self.bound} ({runtime.variant} contract)"
                )


class FlushOracle(RuntimeOracle):
    """Wave-flush discipline for ``wave_flush`` variants.

    A minibatch belonging to wave ``w`` may only inject once every
    minibatch of waves ``0..w-1`` has fully drained — the property that
    makes the single-weight-version accounting of the flush variants
    sound.  Inert for continuous variants.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.checked = 0

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        variant_def = getattr(runtime, "variant_def", None)
        self.enabled = variant_def is not None and variant_def.wave_flush

    def on_inject(self, vw: int, minibatch: int, pulled_version: int, time: float) -> None:
        if not self.enabled:
            return
        assert self.runtime is not None
        nm = self.runtime.nm
        pipeline = self.runtime.pipelines[vw]
        needed = wave_of(minibatch, nm) * nm
        self.checked += 1
        if pipeline.completed < needed:
            raise InvariantViolation(
                f"flush: vw{vw} injected minibatch {minibatch} (wave "
                f"{wave_of(minibatch, nm)}) at t={time:.6f} with only "
                f"{pipeline.completed} minibatches drained (needs {needed})"
            )


class _StageOrder:
    """Per-stage incremental state for the scheduling oracle.

    Completion watermarks are ints, not sets: because each task type
    starts in minibatch order (conditions 1–2, themselves checked here)
    and the FIFO processor completes in start order, done-events are
    monotone per stage — so the oracle's memory stays O(stages) no
    matter how long the run is.
    """

    __slots__ = ("next_fwd", "next_bwd", "fwd_done_max", "bwd_done_max")

    def __init__(self) -> None:
        self.next_fwd = 1
        self.next_bwd = 1
        self.fwd_done_max = 0
        self.bwd_done_max = 0


#: The record categories the scheduling oracle inspects (set membership
#: is the per-record fast path — most records are filtered out here).
_SCHED_CATEGORIES = frozenset(
    ("f_start", "b_start", "fb_start", "f_done", "b_done", "fb_done")
)


class SchedulingOracle(RuntimeOracle):
    """§4 scheduling conditions, checked live from the trace stream."""

    def __init__(self) -> None:
        self._stages: dict[str, _StageOrder] = {}
        self._k: dict[str, int] = {}  # vw actor -> stage count
        self._injected: dict[str, int] = {}  # vw actor -> highest injected id
        #: actor string -> parsed ("vwN", stage) or None; actors repeat
        #: for every task of a run, so parse each exactly once
        self._where: dict[str, tuple[str, int] | None] = {}

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        for index, plan in enumerate(runtime.plans):
            self._k[f"vw{index}"] = plan.k

    def _split(self, actor: str) -> tuple[str, int] | None:
        """``vw3.s2`` -> ("vw3", 2); None for non-stage actors."""
        vw, dot, stage = actor.partition(".s")
        if not dot or vw not in self._k:
            return None
        return vw, int(stage)

    def _state(self, actor: str) -> _StageOrder:
        state = self._stages.get(actor)
        if state is None:
            state = self._stages[actor] = _StageOrder()
        return state

    def on_trace(self, record: TraceRecord) -> None:
        category = record.category
        if category == "inject":
            prev = self._injected.get(record.actor, 0)
            p = record.detail["minibatch"]
            if p != prev + 1:
                raise InvariantViolation(
                    f"scheduling: {record.actor} injected minibatch {p} after {prev} "
                    f"(admission must be sequential)"
                )
            self._injected[record.actor] = p
            return
        if category not in _SCHED_CATEGORIES:
            return
        actor = record.actor
        where = self._where.get(actor)
        if where is None:
            if actor in self._where:
                return
            where = self._split(actor)
            self._where[actor] = where
            if where is None:
                return
        vw, s = where
        k = self._k[vw]
        last = s == k - 1
        state = self._state(record.actor)
        p = record.detail["minibatch"]

        if category in ("fb_start", "fb_done") and not last:
            raise InvariantViolation(
                f"scheduling: fused {category} on non-last stage {record.actor} (cond. 4)"
            )
        if category in ("f_start", "f_done", "b_start", "b_done") and last and k > 1:
            raise InvariantViolation(
                f"scheduling: unfused {category} on last stage {record.actor} (cond. 4)"
            )

        if category in ("f_start", "fb_start"):
            if p != state.next_fwd:
                raise InvariantViolation(
                    f"scheduling: {record.actor} ran forward of minibatch {p}, "
                    f"expected {state.next_fwd} (cond. 1 order)"
                )
            state.next_fwd += 1
            if s == 0:
                if p > self._injected.get(vw, 0):
                    raise InvariantViolation(
                        f"scheduling: {record.actor} ran forward of minibatch {p} "
                        f"before it was injected"
                    )
            elif p > self._stages.get(f"{vw}.s{s - 1}", _StageOrder()).fwd_done_max:
                raise InvariantViolation(
                    f"scheduling: {record.actor} ran forward of minibatch {p} before "
                    f"stage {s - 1} finished its forward (causality)"
                )
        elif category == "b_start":
            if p != state.next_bwd:
                raise InvariantViolation(
                    f"scheduling: {record.actor} ran backward of minibatch {p}, "
                    f"expected {state.next_bwd} (cond. 2 order)"
                )
            state.next_bwd += 1
            if p > self._stages.get(f"{vw}.s{s + 1}", _StageOrder()).bwd_done_max:
                raise InvariantViolation(
                    f"scheduling: {record.actor} ran backward of minibatch {p} before "
                    f"stage {s + 1} emitted its gradient (causality)"
                )
        elif category == "f_done":
            state.fwd_done_max = max(state.fwd_done_max, p)
        elif category in ("b_done", "fb_done"):
            if category == "fb_done":
                state.fwd_done_max = max(state.fwd_done_max, p)  # fused task contains the forward
            state.bwd_done_max = max(state.bwd_done_max, p)

    def on_fast_forward(self, summary: FastForwardSummary) -> None:
        """Advance every stage's order/causality watermarks by the
        coalesced minibatches — public ids jump across a skip while the
        per-stage discipline inside the skipped cycles is a confirmed
        repeat of what was already checked."""
        for vw_index, advanced in enumerate(summary.minibatches):
            if advanced == 0:
                continue
            vw = f"vw{vw_index}"
            self._injected[vw] = self._injected.get(vw, 0) + advanced
            for s in range(self._k[vw]):
                state = self._state(f"{vw}.s{s}")
                state.next_fwd += advanced
                state.next_bwd += advanced
                state.fwd_done_max += advanced
                state.bwd_done_max += advanced


class VersionOracle(RuntimeOracle):
    """PS clock laws: in-order waves, monotone minimum global version."""

    def __init__(self) -> None:
        self._pushed: list[int] = []
        self._global = -1

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        self._pushed = [-1] * len(runtime.plans)

    def on_push_recorded(self, vw: int, wave: int, global_version: int) -> None:
        if wave != self._pushed[vw] + 1:
            raise InvariantViolation(
                f"versions: vw{vw} recorded wave {wave} after wave {self._pushed[vw]} "
                f"(waves must record in order)"
            )
        self._pushed[vw] = wave
        expected = min(self._pushed)
        if global_version != expected:
            raise InvariantViolation(
                f"versions: global version {global_version} != min(pushed)={expected} "
                f"(pushed waves {self._pushed})"
            )
        if global_version < self._global:
            raise InvariantViolation(
                f"versions: global version regressed {self._global} -> {global_version}"
            )
        self._global = global_version

    def on_pull_done(self, vw: int, version: int, time: float) -> None:
        if version > self._global:
            raise InvariantViolation(
                f"versions: vw{vw} pulled version {version} beyond global {self._global}"
            )

    def on_fast_forward(self, summary: FastForwardSummary) -> None:
        for vw, waves in enumerate(summary.waves):
            self._pushed[vw] += waves
        self._global += summary.versions
        if self._global != min(self._pushed):
            raise InvariantViolation(
                f"versions: fast-forward left global version {self._global} != "
                f"min(pushed)={min(self._pushed)} (pushed waves {self._pushed})"
            )

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        if runtime.ps.global_version != min(runtime.ps.pushed_wave):
            raise InvariantViolation(
                f"versions: final global version {runtime.ps.global_version} != "
                f"min(pushed_wave)={min(runtime.ps.pushed_wave)}"
            )


class ConservationOracle(RuntimeOracle):
    """Counts reconcile across stats, trace, pipelines, and the PS.

    Completions must arrive in minibatch order (the stage-0 backward
    order guarantees it), so a single expected-next counter per worker
    both detects duplicates/reordering and keeps memory constant.
    """

    def __init__(self) -> None:
        self._injected: list[int] = []
        self._done: list[int] = []

    def bind(self, runtime: "HetPipeRuntime") -> None:
        super().bind(runtime)
        n = len(runtime.plans)
        self._injected = [0] * n
        self._done = [0] * n

    def on_inject(self, vw: int, minibatch: int, pulled_version: int, time: float) -> None:
        self._injected[vw] += 1

    def on_minibatch_done(self, vw: int, minibatch: int, time: float) -> None:
        if minibatch != self._done[vw] + 1:
            raise InvariantViolation(
                f"conservation: vw{vw} completed minibatch {minibatch}, expected "
                f"{self._done[vw] + 1} (duplicate or out-of-order completion)"
            )
        self._done[vw] += 1
        if self._done[vw] > self._injected[vw]:
            raise InvariantViolation(
                f"conservation: vw{vw} completed {self._done[vw]} minibatches "
                f"but only {self._injected[vw]} were injected"
            )

    def on_fast_forward(self, summary: FastForwardSummary) -> None:
        # A skipped cycle injects exactly as many minibatches as it
        # completes (the in-flight level repeating is part of the
        # confirmed signature), so both ledgers advance together.
        for vw, advanced in enumerate(summary.minibatches):
            self._injected[vw] += advanced
            self._done[vw] += advanced

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        for vw, (pipeline, stats) in enumerate(zip(runtime.pipelines, runtime.stats)):
            if stats.minibatches_done != self._done[vw]:
                raise InvariantViolation(
                    f"conservation: vw{vw} stats report {stats.minibatches_done} "
                    f"minibatches but {self._done[vw]} completions were observed"
                )
            if pipeline.completed != self._done[vw]:
                raise InvariantViolation(
                    f"conservation: vw{vw} pipeline counter {pipeline.completed} != "
                    f"observed completions {self._done[vw]}"
                )
            in_flight = self._injected[vw] - self._done[vw]
            if in_flight != pipeline.active or not 0 <= in_flight <= runtime.nm:
                raise InvariantViolation(
                    f"conservation: vw{vw} in-flight {in_flight} inconsistent with "
                    f"pipeline.active={pipeline.active} (Nm={runtime.nm})"
                )
            # A recorded wave c requires minibatches 1..(c+1)*Nm complete.
            recorded = runtime.ps.pushed_wave[vw]
            if recorded >= 0 and self._done[vw] < (recorded + 1) * runtime.nm:
                raise InvariantViolation(
                    f"conservation: vw{vw} recorded wave {recorded} with only "
                    f"{self._done[vw]} minibatches complete (Nm={runtime.nm})"
                )
        if runtime.ps.pushes_completed != sum(s.waves_pushed for s in runtime.stats):
            raise InvariantViolation(
                f"conservation: PS recorded {runtime.ps.pushes_completed} pushes, "
                f"stats report {sum(s.waves_pushed for s in runtime.stats)}"
            )
        if runtime.ps.pulls_completed != sum(s.pulls for s in runtime.stats):
            raise InvariantViolation(
                f"conservation: PS recorded {runtime.ps.pulls_completed} pulls, "
                f"stats report {sum(s.pulls for s in runtime.stats)}"
            )
        for vw, gate in enumerate(runtime.gates):
            if gate.pulled_version > runtime.ps.global_version:
                raise InvariantViolation(
                    f"conservation: vw{vw} gate at version {gate.pulled_version} "
                    f"beyond global {runtime.ps.global_version}"
                )


class FabricOracle(RuntimeOracle):
    """Shared-fabric laws: flow conservation and bounded utilization.

    Delegates the per-resource checks to
    :meth:`~repro.netsim.fabric.Fabric.verify` (bytes charged by flows
    reconcile with every resource's counters; occupancy never exceeds
    wall time) and additionally reconciles the parameter server's byte
    accounting against the fabric's PS-tagged flows — the cross-layer
    check that no PS traffic bypasses the shared network.
    """

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        fabric = runtime.fabric
        if fabric is None:
            return
        fabric.verify(elapsed=runtime.sim.now)
        # Cross-layer reconciliations: the flow ledger against byte
        # counters maintained by *other* layers (the PS's traffic
        # accounting and the pipeline edges' adapter counters), so a
        # routing bug that charges the wrong resources — invisible to
        # Fabric.verify's internal ledger — still trips an oracle.
        ps_flow_bytes = sum(
            flow.nbytes for flow in fabric.flows if flow.tag.startswith("ps.")
        )
        accounted = runtime.ps.sync_bytes_total
        if abs(ps_flow_bytes - accounted) > 1e-6 * max(1.0, accounted):
            raise InvariantViolation(
                f"fabric: PS flows moved {ps_flow_bytes:.0f} bytes but the PS "
                f"accounted {accounted:.0f}"
            )
        by_tag: dict[str, float] = {}
        for flow in fabric.flows:
            by_tag[flow.tag] = by_tag.get(flow.tag, 0.0) + flow.nbytes
        for pipeline in runtime.pipelines:
            for state in pipeline.stages:
                for edge in (state.to_next, state.to_prev):
                    if edge is None:
                        continue
                    routed = by_tag.get(edge.name, 0.0)
                    if abs(routed - edge.bytes_moved) > 1e-6 * max(1.0, edge.bytes_moved):
                        raise InvariantViolation(
                            f"fabric: edge {edge.name} accounted "
                            f"{edge.bytes_moved:.0f} bytes but flows tagged with "
                            f"it carried {routed:.0f}"
                        )


def default_oracles() -> list[RuntimeOracle]:
    """The standard always-on suite the fuzz harness attaches to a run."""
    return [
        StalenessOracle(),
        WeightVersionOracle(),
        FlushOracle(),
        SchedulingOracle(),
        VersionOracle(),
        ConservationOracle(),
        FabricOracle(),
    ]


# ----------------------------------------------------------------------
# graceful degradation under fault injection (see repro.faults)
# ----------------------------------------------------------------------

#: Multiplicative headroom the degradation bound grants over the ideal
#: composed slowdown — recovery is never perfectly pipelined with
#: useful work (pipeline refill after a rejoin, retry backoff tails).
_DEGRADATION_SLACK = 0.75

#: Seconds of allowed end-to-end slowdown per second of crash/PS fault
#: window: a down node stalls the *global* clock (every worker waits at
#: its staleness bound), and the exponential-backoff retry tail can
#: overshoot the recovery instant by up to the last backoff interval.
_DOWNTIME_FACTOR = 4.0


class RecoveryOracle(RuntimeOracle):
    """Bounded recovery: transient faults heal, nothing stays stranded.

    Reads the :class:`~repro.faults.injector.FaultInjector` attached to
    the runtime (a no-op on fault-free runs): every fired transient
    fault whose recovery time fell inside the run must have recovered,
    no send may still be blocked once every fault window has closed,
    and the parameter-version checkpoint ledger must have kept pace
    with the global clock (elastic recovery resumes from it).
    """

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        injector = runtime.fault_injector
        if injector is None:
            return
        from collections import Counter

        state = injector.state
        now = runtime.sim.now
        fired = Counter(e for e in injector.fired if not e.permanent)
        healed = Counter(injector.recovered)
        for event, count in fired.items():
            if count > healed.get(event, 0) and event.time + event.duration < now:
                raise InvariantViolation(
                    f"recovery: [{event.describe()}] was due to recover at "
                    f"t={event.time + event.duration:.6f} but had not by "
                    f"t={now:.6f}"
                )
        windows_open = (
            state.down_nodes or state.down_ps or state.down_ps_nodes
            or injector.pending()
        )
        if state.sends_blocked > 0 and not windows_open:
            raise InvariantViolation(
                f"recovery: {state.sends_blocked} PS send(s) still blocked "
                f"after every fault window closed"
            )
        if state.sends_blocked < 0:
            raise InvariantViolation(
                "recovery: more blocked sends resolved than were ever blocked"
            )
        version = runtime.ps.global_version
        if version >= 0:
            last = state.checkpoints[-1][0] if state.checkpoints else -1
            if version - last >= 2 * state.checkpoint_every:
                raise InvariantViolation(
                    f"recovery: checkpoint ledger stopped at version {last} "
                    f"while the global clock reached {version} "
                    f"(cadence {state.checkpoint_every})"
                )


class FailoverConservationOracle(RuntimeOracle):
    """No minibatch lost: recorded progress is always backed by work.

    The elastic-recovery contract: whatever crash/failover sequence
    occurred, every wave the PS recorded for a worker is backed by that
    worker's completed minibatches (a replacement pipeline re-earns any
    progress that died with its predecessor, never skips it), and the
    global version is exactly the minimum of the per-worker clocks.
    """

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        injector = runtime.fault_injector
        if injector is None:
            return
        nm = runtime.nm
        for vw, stats in enumerate(runtime.stats):
            recorded = runtime.ps.pushed_wave[vw]
            if recorded >= 0 and stats.minibatches_done < (recorded + 1) * nm:
                raise InvariantViolation(
                    f"failover conservation: vw{vw} recorded wave {recorded} "
                    f"backed by only {stats.minibatches_done} completed "
                    f"minibatches (needs {(recorded + 1) * nm})"
                )
            pipeline = runtime.pipelines[vw]
            if pipeline.completed != stats.minibatches_done:
                raise InvariantViolation(
                    f"failover conservation: vw{vw} pipeline counter "
                    f"{pipeline.completed} != stats {stats.minibatches_done} "
                    f"(lost or double-counted minibatches across failover)"
                )
        if runtime.ps.global_version != min(runtime.ps.pushed_wave):
            raise InvariantViolation(
                f"failover conservation: global version "
                f"{runtime.ps.global_version} != min(pushed_wave)="
                f"{min(runtime.ps.pushed_wave)} after recovery"
            )


class DegradationOracle(RuntimeOracle):
    """Throughput degrades no worse than proportionally to what was lost.

    The makespan under faults must stay within the composed bound of
    the fault-free baseline (the injector's horizon) inflated by: the
    worst straggler factor, the worst link degradation, the capacity
    ratio after permanent losses, a slack factor for imperfectly
    pipelined recovery, a downtime charge per second of crash/PS fault
    window, and one extra horizon when elastic re-partitioning rebuilt
    the deployment (pipeline refill plus re-earned work).
    """

    def verify_final(self, runtime: "HetPipeRuntime") -> None:
        injector = runtime.fault_injector
        if injector is None:
            return
        now = runtime.sim.now
        horizon = injector.horizon
        straggler = 1.0
        link = 1.0
        downtime = 0.0
        for event in injector.fired:
            if event.kind == "straggler":
                straggler = max(straggler, event.factor)
            elif event.kind == "link":
                link = max(link, 1.0 / event.scale)
            elif event.kind in ("crash", "ps"):
                window = horizon if event.permanent else event.duration
                downtime += min(window, max(0.0, now - event.time))
        capacity = 1.0
        if runtime._lost_nodes:
            total = len(runtime.cluster.gpus)
            lost = sum(
                1 for g in runtime.cluster.gpus if g.node_id in runtime._lost_nodes
            )
            if total > lost:
                capacity = total / (total - lost)
        bound = (
            horizon * straggler * link * capacity * (1.0 + _DEGRADATION_SLACK)
            + _DOWNTIME_FACTOR * downtime
            + (horizon if runtime._structural_change else 0.0)
        )
        if now > bound:
            raise InvariantViolation(
                f"degradation: makespan {now:.6f} exceeds the graceful bound "
                f"{bound:.6f} (baseline {horizon:.6f}, straggler x{straggler:.2f}, "
                f"link x{link:.2f}, capacity x{capacity:.2f}, "
                f"downtime {downtime:.6f})"
            )


def fault_oracles() -> list[RuntimeOracle]:
    """The graceful-degradation suite for fault-injected runs.

    Staleness and version clocks must hold *through* recovery; the
    scheduling/conservation oracles assume a single replay-free
    topology and are deliberately absent (elastic recovery re-runs
    minibatches on a rebuilt deployment).
    """
    return [
        StalenessOracle(),
        VersionOracle(),
        RecoveryOracle(),
        FailoverConservationOracle(),
        DegradationOracle(),
    ]


class OneFOneBOracle:
    """1F1B dispatch discipline, reconstructed from a pipeline's trace.

    Subscribes to the trace of one
    :class:`~repro.pipeline.one_f_one_b.OneFOneBPipeline` and mirrors its
    ready-queues from ``f_ready``/``b_ready`` records.  The invariant: a
    stage must never *start a forward* while its next in-order backward
    is sitting ready (backwards drain first — the property that bounds
    stashed activations), and both task types must start in minibatch
    order.
    """

    def __init__(self, pipeline: "OneFOneBPipeline") -> None:
        self.name = pipeline.name
        self.k = pipeline.plan.k
        self._bwd_ready: dict[int, list[int]] = {s: [] for s in range(self.k)}
        self._next_fwd = {s: 1 for s in range(self.k)}
        self._next_bwd = {s: 1 for s in range(self.k)}
        self.forwards_checked = 0
        #: actor string -> stage index (or None); parsed once per actor
        self._stage_cache: dict[str, int | None] = {}
        pipeline.trace.subscribe(self.on_trace)

    def _stage_of(self, actor: str) -> int | None:
        stage = self._stage_cache.get(actor)
        if stage is None and actor not in self._stage_cache:
            prefix = f"{self.name}.s"
            stage = int(actor[len(prefix):]) if actor.startswith(prefix) else None
            self._stage_cache[actor] = stage
        return stage

    def on_trace(self, record: TraceRecord) -> None:
        if record.category == "fast_forward" and record.actor == self.name:
            # A steady-state skip advanced the public numbering; shift
            # every expectation by the coalesced minibatches (pending
            # ready-queue entries are part of the repeating pattern).
            advanced = record.detail["minibatches"]
            for s in range(self.k):
                self._next_fwd[s] += advanced
                self._next_bwd[s] += advanced
                self._bwd_ready[s] = [p + advanced for p in self._bwd_ready[s]]
            return
        s = self._stage_of(record.actor)
        if s is None:
            return
        p = record.detail["minibatch"]
        if record.category == "b_ready":
            self._bwd_ready[s].append(p)
        elif record.category == "b_start":
            if p != self._next_bwd[s]:
                raise InvariantViolation(
                    f"1f1b: {record.actor} started backward {p}, expected {self._next_bwd[s]}"
                )
            self._next_bwd[s] += 1
            if not self._bwd_ready[s] or self._bwd_ready[s][0] != p:
                raise InvariantViolation(
                    f"1f1b: {record.actor} started backward {p} that was not at the "
                    f"head of its ready queue {self._bwd_ready[s]}"
                )
            self._bwd_ready[s].pop(0)
        elif record.category in ("f_start", "fb_start"):
            if p != self._next_fwd[s]:
                raise InvariantViolation(
                    f"1f1b: {record.actor} started forward {p}, expected {self._next_fwd[s]}"
                )
            self._next_fwd[s] += 1
            self.forwards_checked += 1
            queue = self._bwd_ready[s]
            if queue and queue[0] == self._next_bwd[s]:
                raise InvariantViolation(
                    f"1f1b: {record.actor} started forward {p} while backward "
                    f"{queue[0]} was ready (backward must be preferred)"
                )
