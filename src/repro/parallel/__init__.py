"""Data-parallel baselines: Horovod-style AllReduce BSP and PS models."""

from repro.parallel.allreduce import (
    cross_node_allreduce_bytes,
    measure_ring_allreduce,
    ring_allreduce_time,
    ring_bandwidth,
    simulate_ring_allreduce,
)
from repro.parallel.horovod import HorovodMetrics, feasible_gpus, measure_horovod
from repro.parallel.sync_models import (
    asp_iteration_times,
    bsp_iteration_time,
    ssp_iteration_times,
)

__all__ = [
    "HorovodMetrics",
    "asp_iteration_times",
    "bsp_iteration_time",
    "cross_node_allreduce_bytes",
    "feasible_gpus",
    "measure_horovod",
    "measure_ring_allreduce",
    "ring_allreduce_time",
    "ring_bandwidth",
    "simulate_ring_allreduce",
    "ssp_iteration_times",
]
