"""Horovod-style BSP data parallelism — the paper's baseline.

Each worker is one GPU holding the *whole* model; every iteration all
workers process one minibatch and then allreduce the gradients (BSP).
Two paper-critical behaviours are reproduced:

* **Memory feasibility**: a GPU that cannot hold the full model is
  excluded — on the paper's cluster ResNet-152 does not fit the 6 GB
  RTX 2060s, so "Horovod uses only 12 GPUs" (§8.1) while HetPipe uses
  all 16.
* **Straggler effect**: BSP's iteration time is the *slowest* worker's
  compute plus the allreduce — heterogeneous clusters pay for their
  whimpiest member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.gpu import GPUDevice
from repro.cluster.topology import Cluster
from repro.errors import MemoryCapacityError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.memory import model_fits_single_gpu
from repro.models.profiler import Profiler
from repro.parallel.allreduce import cross_node_allreduce_bytes, ring_allreduce_time


@dataclass(frozen=True)
class HorovodMetrics:
    """Steady-state behaviour of a Horovod BSP deployment."""

    model_name: str
    num_gpus: int
    excluded_gpus: int
    throughput: float  # images / second
    iteration_time: float
    compute_time: float  # slowest worker
    allreduce_time: float
    cross_node_bytes_per_minibatch: float

    @property
    def per_gpu_throughput(self) -> float:
        return self.throughput / self.num_gpus


def feasible_gpus(
    model: ModelGraph,
    gpus: Sequence[GPUDevice],
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> list[GPUDevice]:
    """GPUs able to hold the whole model (one in-flight minibatch)."""
    return [g for g in gpus if model_fits_single_gpu(model.layers, g.spec, calibration)]


def measure_horovod(
    cluster: Cluster,
    model: ModelGraph,
    calibration: Calibration = DEFAULT_CALIBRATION,
    gpus: Sequence[GPUDevice] | None = None,
    profiler: Profiler | None = None,
) -> HorovodMetrics:
    """Throughput of Horovod BSP over ``gpus`` (default: whole cluster).

    Raises :class:`MemoryCapacityError` when no GPU can hold the model —
    the case DP fundamentally cannot handle and HetPipe exists for.
    """
    candidates = list(gpus) if gpus is not None else list(cluster.gpus)
    usable = feasible_gpus(model, candidates, calibration)
    if not usable:
        raise MemoryCapacityError(
            f"{model.name} does not fit in any single GPU of "
            f"[{''.join(g.code for g in candidates)}]; data parallelism is impossible"
        )
    profiler = profiler or Profiler(calibration)
    compute = max(profiler.serial_minibatch_time(model, g.spec) for g in usable)
    n = len(usable)
    allreduce = ring_allreduce_time(model.param_bytes, usable, calibration) if n > 1 else 0.0
    iteration = compute + allreduce
    multi_node = len({g.node_id for g in usable}) > 1
    return HorovodMetrics(
        model_name=model.name,
        num_gpus=n,
        excluded_gpus=len(candidates) - n,
        throughput=n * model.batch_size / iteration,
        iteration_time=iteration,
        compute_time=compute,
        allreduce_time=allreduce,
        cross_node_bytes_per_minibatch=(
            cross_node_allreduce_bytes(model.param_bytes, n) if multi_node else 0.0
        ),
    )
