"""Parameter-server synchronization models: BSP / ASP / SSP (§2.2).

Iteration-time models for plain (non-pipelined) data parallelism through
a parameter server, used by the numeric trainers and by comparison
benches.  Each worker ``i`` has a compute time ``c_i`` per minibatch and
pays ``sync`` seconds to push+pull:

* **BSP** — lockstep: every iteration lasts ``max(c_i) + sync``.
* **ASP** — free-running: worker ``i`` iterates every ``c_i + sync``
  seconds, no convergence guarantee.
* **SSP** — free-running until the staleness threshold ``s`` forces the
  fastest worker to wait for the slowest: the fastest worker's *average*
  period is bounded below by ``max(c_i) * (t - s) / t`` over a window of
  ``t`` iterations; we return effective per-worker periods under that
  bound.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def bsp_iteration_time(compute_times: Sequence[float], sync_time: float = 0.0) -> float:
    """Lockstep BSP: everyone waits for the slowest worker."""
    if not compute_times:
        raise ConfigurationError("no workers")
    return max(compute_times) + sync_time


def asp_iteration_times(compute_times: Sequence[float], sync_time: float = 0.0) -> list[float]:
    """ASP: every worker free-runs at its own pace."""
    if not compute_times:
        raise ConfigurationError("no workers")
    return [c + sync_time for c in compute_times]


def ssp_iteration_times(
    compute_times: Sequence[float],
    staleness: int,
    sync_time: float = 0.0,
    window: int = 1000,
) -> list[float]:
    """SSP: fast workers are throttled to stay within ``staleness`` clocks.

    Over ``window`` iterations the slowest worker completes
    ``window * max_c / c_i``... more precisely a worker may be at most
    ``staleness`` iterations ahead, so over a long horizon every worker's
    average period converges to the slowest worker's period; during any
    window the fast worker completes at most ``slow_iterations +
    staleness`` iterations.  The returned effective periods reflect that
    long-run bound.
    """
    if staleness < 0:
        raise ConfigurationError("staleness must be >= 0")
    if not compute_times:
        raise ConfigurationError("no workers")
    slowest = max(compute_times) + sync_time
    out = []
    for c in compute_times:
        own = c + sync_time
        # over `window` slow iterations the fast worker may run
        # window + staleness iterations: average period bounded below.
        bound = slowest * window / (window + staleness)
        out.append(max(own, bound))
    return out
