"""Ring AllReduce cost model (Patarasuk & Yuan; what Horovod implements).

A ring allreduce of ``S`` bytes over ``N`` workers sends
``2 * S * (N - 1) / N`` bytes over every ring link in ``2(N - 1)``
steps; the completion time is governed by the slowest link.  On the
paper's testbed rings either stay inside one node (PCIe) or cross nodes
(InfiniBand); the *achieved* ring bandwidths are calibration constants
fitted to the paper's own Horovod rows in Table 4 (the fit reproduces
all eight entries within ~12%; see EXPERIMENTS.md):

* PCIe ring (one node, 4 GPUs through one switch): ~1.7 GB/s
* InfiniBand ring (multi-node, gRPC-staged): ~1.15 GB/s

The *cross-node traffic* metric matches the paper's arithmetic in §8.3:
``S * (N - 1) / N`` (548 MiB * 15/16 = the quoted 515 MB for VGG-19,
230 MiB * 11/12 = the quoted 211 MB for ResNet-152 on 12 GPUs).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cluster.gpu import GPUDevice
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION
from repro.netsim.fabric import DEFAULT_FABRIC_SPEC, Endpoint, Fabric, FabricSpec
from repro.sim.engine import Simulator
from repro.sim.resources import Channel


def ring_bandwidth(gpus: Sequence[GPUDevice], calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Achieved bandwidth of the slowest link in the ring over ``gpus``."""
    if len(gpus) < 2:
        raise ConfigurationError("a ring needs at least two GPUs")
    nodes = {gpu.node_id for gpu in gpus}
    if len(nodes) == 1:
        return calibration.horovod_pcie_ring_bandwidth
    return calibration.horovod_ib_ring_bandwidth


def ring_allreduce_time(
    nbytes: float,
    gpus: Sequence[GPUDevice],
    calibration: Calibration = DEFAULT_CALIBRATION,
    step_latency: float = 25e-6,
) -> float:
    """Time for one ring allreduce of ``nbytes`` over ``gpus``."""
    n = len(gpus)
    if n == 1:
        return 0.0
    per_link = 2.0 * nbytes * (n - 1) / n
    return per_link / ring_bandwidth(gpus, calibration) + 2 * (n - 1) * step_latency


def cross_node_allreduce_bytes(nbytes: float, n_workers: int) -> float:
    """The paper's §8.3 cross-node traffic metric: ``S * (N-1) / N``."""
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    if n_workers == 1:
        return 0.0
    return nbytes * (n_workers - 1) / n_workers


def simulate_ring_allreduce(
    sim: Simulator,
    gpus: Sequence[GPUDevice],
    nbytes: float,
    calibration: Calibration = DEFAULT_CALIBRATION,
    fabric: Fabric | None = None,
    step_latency: float = 25e-6,
    on_complete: Callable[[float], None] | None = None,
) -> None:
    """Run one ring allreduce as simulated transfers, step by step.

    Each of the ``2 (N - 1)`` steps sends an ``S / N`` chunk from every
    worker to its ring successor, with a barrier between steps (NCCL's
    synchronous ring).  With ``fabric=None`` every ring edge is a private
    link at the calibrated ring bandwidth, which reproduces
    :func:`ring_allreduce_time` exactly; with a :class:`Fabric` the
    chunks are real flows contending for the shared NICs and PCIe
    switches, so co-located rings and PS traffic slow each other down.

    ``on_complete`` receives the absolute completion time.
    """
    n = len(gpus)
    if n == 1:
        if on_complete is not None:
            sim.schedule(0.0, on_complete, sim.now)
        return
    if n < 2:
        raise ConfigurationError("a ring needs at least two GPUs")
    chunk = nbytes / n
    total_steps = 2 * (n - 1)
    edges: list[Callable[[Callable[[], None]], None]] = []
    if fabric is None:
        bandwidth = ring_bandwidth(gpus, calibration)
        for i, gpu in enumerate(gpus):
            link = Channel(
                sim, bandwidth, step_latency,
                f"ring.{gpu.gpu_id}->{gpus[(i + 1) % n].gpu_id}",
            )
            edges.append(lambda done, link=link: link.transfer(chunk, done))
    else:
        # The calibrated ring bandwidth is a *software* bound (what the
        # allreduce stack achieves per edge); cap fabric flows at it so
        # an uncongested shared run is never faster than the dedicated
        # model — wider links only help if the stack could use them.
        cap = ring_bandwidth(gpus, calibration)
        for i, gpu in enumerate(gpus):
            edges.append(
                lambda done, src=gpu, dst=gpus[(i + 1) % n]: fabric.transfer(
                    Endpoint.gpu(src), Endpoint.gpu(dst), chunk, done,
                    tag="allreduce", rate_cap=cap,
                )
            )

    state = {"step": 0, "left": 0}

    def start_step() -> None:
        state["step"] += 1
        state["left"] = n
        for edge in edges:
            edge(edge_done)

    def edge_done() -> None:
        state["left"] -= 1
        if state["left"] == 0:
            if state["step"] < total_steps:
                start_step()
            elif on_complete is not None:
                on_complete(sim.now)

    start_step()


def measure_ring_allreduce(
    cluster: Cluster,
    gpus: Sequence[GPUDevice],
    nbytes: float,
    calibration: Calibration = DEFAULT_CALIBRATION,
    network_model: str = "dedicated",
    fabric_spec: FabricSpec = DEFAULT_FABRIC_SPEC,
    rings: int = 1,
) -> float:
    """Wall time of ``rings`` concurrent ring allreduces over ``gpus``.

    With the dedicated model concurrent rings do not interact (each edge
    is private), so the time is independent of ``rings``; on the shared
    fabric they contend for NICs and switches — the gap is the modeled
    contention cost.
    """
    if rings < 1:
        raise ConfigurationError("rings must be >= 1")
    sim = Simulator()
    fabric = (
        Fabric(sim, cluster, fabric_spec) if network_model == "shared" else None
    )
    finished: list[float] = []
    for _ in range(rings):
        simulate_ring_allreduce(
            sim, gpus, nbytes, calibration, fabric=fabric,
            on_complete=finished.append,
        )
    sim.run_until_idle()
    if len(finished) != rings:
        raise ConfigurationError("allreduce simulation did not complete")
    if fabric is not None:
        fabric.verify()
    return max(finished)
