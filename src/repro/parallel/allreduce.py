"""Ring AllReduce cost model (Patarasuk & Yuan; what Horovod implements).

A ring allreduce of ``S`` bytes over ``N`` workers sends
``2 * S * (N - 1) / N`` bytes over every ring link in ``2(N - 1)``
steps; the completion time is governed by the slowest link.  On the
paper's testbed rings either stay inside one node (PCIe) or cross nodes
(InfiniBand); the *achieved* ring bandwidths are calibration constants
fitted to the paper's own Horovod rows in Table 4 (the fit reproduces
all eight entries within ~12%; see EXPERIMENTS.md):

* PCIe ring (one node, 4 GPUs through one switch): ~1.7 GB/s
* InfiniBand ring (multi-node, gRPC-staged): ~1.15 GB/s

The *cross-node traffic* metric matches the paper's arithmetic in §8.3:
``S * (N - 1) / N`` (548 MiB * 15/16 = the quoted 515 MB for VGG-19,
230 MiB * 11/12 = the quoted 211 MB for ResNet-152 on 12 GPUs).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.gpu import GPUDevice
from repro.errors import ConfigurationError
from repro.models.calibration import Calibration, DEFAULT_CALIBRATION


def ring_bandwidth(gpus: Sequence[GPUDevice], calibration: Calibration = DEFAULT_CALIBRATION) -> float:
    """Achieved bandwidth of the slowest link in the ring over ``gpus``."""
    if len(gpus) < 2:
        raise ConfigurationError("a ring needs at least two GPUs")
    nodes = {gpu.node_id for gpu in gpus}
    if len(nodes) == 1:
        return calibration.horovod_pcie_ring_bandwidth
    return calibration.horovod_ib_ring_bandwidth


def ring_allreduce_time(
    nbytes: float,
    gpus: Sequence[GPUDevice],
    calibration: Calibration = DEFAULT_CALIBRATION,
    step_latency: float = 25e-6,
) -> float:
    """Time for one ring allreduce of ``nbytes`` over ``gpus``."""
    n = len(gpus)
    if n == 1:
        return 0.0
    per_link = 2.0 * nbytes * (n - 1) / n
    return per_link / ring_bandwidth(gpus, calibration) + 2 * (n - 1) * step_latency


def cross_node_allreduce_bytes(nbytes: float, n_workers: int) -> float:
    """The paper's §8.3 cross-node traffic metric: ``S * (N-1) / N``."""
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    if n_workers == 1:
        return 0.0
    return nbytes * (n_workers - 1) / n_workers
