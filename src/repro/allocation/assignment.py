"""Virtual-worker assignment data model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPUDevice
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VirtualWorkerAssignment:
    """The result of an allocation policy: GPUs grouped into VWs."""

    policy: str
    virtual_workers: tuple[tuple[GPUDevice, ...], ...]

    def __post_init__(self) -> None:
        if not self.virtual_workers:
            raise ConfigurationError(f"{self.policy}: no virtual workers")
        seen: set[int] = set()
        for vw in self.virtual_workers:
            if not vw:
                raise ConfigurationError(f"{self.policy}: empty virtual worker")
            for gpu in vw:
                if gpu.gpu_id in seen:
                    raise ConfigurationError(
                        f"{self.policy}: gpu{gpu.gpu_id} assigned twice"
                    )
                seen.add(gpu.gpu_id)

    @property
    def num_virtual_workers(self) -> int:
        return len(self.virtual_workers)

    @property
    def total_gpus(self) -> int:
        return sum(len(vw) for vw in self.virtual_workers)

    def codes(self) -> list[str]:
        """Per-VW GPU-type fingerprints, e.g. ['VVQQ', 'VVQQ', 'RRGG', 'RRGG']."""
        return ["".join(gpu.code for gpu in vw) for vw in self.virtual_workers]

    def describe(self) -> str:
        return f"{self.policy}: " + " | ".join(self.codes())
