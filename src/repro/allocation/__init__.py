"""Resource allocation: carving a cluster into virtual workers (§8.1)."""

from repro.allocation.assignment import VirtualWorkerAssignment
from repro.allocation.policies import (
    ALLOCATION_POLICIES,
    allocate,
    equal_distribution,
    hybrid_distribution,
    node_partition,
)

__all__ = [
    "ALLOCATION_POLICIES",
    "VirtualWorkerAssignment",
    "allocate",
    "equal_distribution",
    "hybrid_distribution",
    "node_partition",
]
