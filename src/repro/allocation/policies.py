"""The three allocation policies of §8.1 (Table 3), generalized.

* **NP (Node Partition)** — one virtual worker per node: homogeneous
  GPUs, minimal intra-VW communication (all PCIe), but heterogeneous
  performance across VWs — the straggler case.
* **ED (Equal Distribution)** — each virtual worker takes one GPU from
  every node: identical VWs (no stragglers), but every pipeline boundary
  crosses the network.
* **HD (Hybrid Distribution)** — nodes are paired fast-with-slow and
  each pair yields two VWs of 2+2 GPUs, balancing aggregate compute and
  memory across VWs while keeping half the boundaries on PCIe.  For the
  paper's cluster this produces exactly Table 3: VVQQ, VVQQ, RRGG, RRGG.
"""

from __future__ import annotations

from typing import Callable

from repro.allocation.assignment import VirtualWorkerAssignment
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError


def node_partition(cluster: Cluster) -> VirtualWorkerAssignment:
    """One virtual worker per node."""
    vws = tuple(tuple(node.gpus) for node in cluster.nodes)
    return VirtualWorkerAssignment(policy="NP", virtual_workers=vws)


def equal_distribution(cluster: Cluster) -> VirtualWorkerAssignment:
    """Virtual worker ``i`` takes slot-``i`` GPU of every node.

    Yields ``gpus_per_node`` identical virtual workers with one GPU per
    node each (the paper's VRGQ x4 for the full cluster; for the Table-4
    subsets it yields 4 VWs of 1, 2, or 3 GPUs).
    """
    counts = {node.gpu_count for node in cluster.nodes}
    if len(counts) != 1:
        raise ConfigurationError("ED requires equal GPU counts per node")
    per_node = counts.pop()
    vws = tuple(
        tuple(node.gpus[slot] for node in cluster.nodes) for slot in range(per_node)
    )
    return VirtualWorkerAssignment(policy="ED", virtual_workers=vws)


def hybrid_distribution(cluster: Cluster) -> VirtualWorkerAssignment:
    """Pair fastest-with-slowest nodes; each pair yields two 2+2 VWs.

    Requires an even number of nodes with (at least) 4 GPUs each.  Nodes
    are ranked by per-GPU effective compute; the strongest node is paired
    with the weakest, second strongest with second weakest, and so on —
    equalizing aggregate capability across virtual workers (§8.1's goal
    of 'similar performance ... to mitigate the straggler problem').
    """
    nodes = sorted(
        cluster.nodes, key=lambda n: n.gpu_spec.effective_flops, reverse=True
    )
    if len(nodes) % 2 != 0:
        raise ConfigurationError("HD requires an even number of nodes")
    if any(node.gpu_count < 4 for node in nodes):
        raise ConfigurationError("HD requires at least 4 GPUs per node")
    vws: list[tuple] = []
    for i in range(len(nodes) // 2):
        fast, slow = nodes[i], nodes[-1 - i]
        # two virtual workers per pair, 2 fast + 2 slow GPUs each
        vws.append(tuple(fast.gpus[0:2]) + tuple(slow.gpus[0:2]))
        vws.append(tuple(fast.gpus[2:4]) + tuple(slow.gpus[2:4]))
    return VirtualWorkerAssignment(policy="HD", virtual_workers=tuple(vws))


ALLOCATION_POLICIES: dict[str, Callable[[Cluster], VirtualWorkerAssignment]] = {
    "NP": node_partition,
    "ED": equal_distribution,
    "HD": hybrid_distribution,
}


def allocate(cluster: Cluster, policy: str) -> VirtualWorkerAssignment:
    """Apply a named policy ('NP', 'ED' or 'HD') to a cluster."""
    try:
        fn = ALLOCATION_POLICIES[policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown allocation policy {policy!r}; expected one of "
            f"{sorted(ALLOCATION_POLICIES)}"
        ) from None
    return fn(cluster)
