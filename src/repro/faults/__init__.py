"""Deterministic fault injection and recovery (the robustness layer).

HetPipe's premise is training on unreliable "whimpy" fleets, so the
simulator must be able to make things slow down, drop, and die — and
prove the WSP contracts survive it.  This package turns a frozen
:class:`~repro.api.spec.FaultSpec` into engine events and drives the
runtime's recovery machinery:

* :mod:`repro.faults.schedule` — compiles the spec (seeded draws plus
  explicit events) into an absolute-time :class:`FaultEvent` schedule,
  a pure function of ``(spec, targets, horizon, seed)`` so a replayed
  diagnostics bundle reproduces the exact same faults;
* :mod:`repro.faults.injector` — :class:`FaultInjector` arms the
  schedule on the simulator and applies/reverts each fault against the
  live runtime (straggler slowdowns, node crash/rejoin, link
  degradation, PS process failure), while :class:`FaultState` is the
  shared visibility surface the parameter server's retry/backoff path
  and the graceful-degradation oracles read.

The no-fault path is bit-identical to a run without this package: a
disabled/absent ``FaultSpec`` normalizes away at the spec layer and no
fault hook fires.
"""

from repro.faults.injector import FaultInjector, FaultState
from repro.faults.schedule import (
    FaultEvent,
    FaultTargets,
    compile_schedule,
    draw_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultState",
    "FaultTargets",
    "compile_schedule",
    "draw_fault_spec",
]
