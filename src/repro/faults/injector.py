"""Arm a compiled fault schedule on a live runtime and drive recovery.

:class:`FaultInjector` owns the fault lifecycle: it schedules each
:class:`~repro.faults.schedule.FaultEvent` as an engine event, applies
the fault against the runtime when it fires (straggler slowdown, node
crash, link degradation, PS process failure), schedules the recovery
for transient faults, and routes permanent failures into the runtime's
elastic-recovery path (PS failover plus re-partitioning).

:class:`FaultState` is the shared visibility surface: the parameter
server's send path consults it to block/retry/redirect traffic, the
push-recording path reports version advances to it for checkpointing,
and the graceful-degradation oracles read its counters at the end of
the run.  A runtime without an injector never touches either class, so
the fault-free path stays bit-identical.
"""

from __future__ import annotations

from repro.api.spec import FaultSpec
from repro.errors import SimulationError
from repro.faults.schedule import FaultEvent
from repro.sim.trace import Trace


class FaultState:
    """What the rest of the system may observe about active faults."""

    def __init__(
        self,
        sim,
        trace: Trace,
        retry_timeout: float,
        max_retries: int,
        checkpoint_every: int,
    ) -> None:
        self.sim = sim
        self.trace = trace
        #: absolute seconds before the first resend of a blocked transfer
        #: (attempt ``i`` waits ``retry_timeout * 2**i``)
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.checkpoint_every = checkpoint_every
        #: nodes whose compute *and* PS processes are down (crash faults)
        self.down_nodes: set[int] = set()
        #: individually-dead sharded PS processes, as (node, slot)
        self.down_ps: set[tuple[int, int]] = set()
        #: nodes whose PS processes are down but whose compute is up
        self.down_ps_nodes: set[int] = set()
        #: PS-endpoint re-homing after a permanent failover
        self.redirect: dict[int, int] = {}
        #: whole-node re-homing (either transfer endpoint) after a
        #: permanent node loss
        self.node_redirect: dict[int, int] = {}
        #: (version, time) parameter checkpoints, one per cadence window;
        #: elastic recovery resumes from the PS's committed clocks, and
        #: the recovery oracle checks this ledger kept pace
        self.checkpoints: list[tuple[int, float]] = []
        self.retries_attempted = 0
        self.sends_resolved = 0
        #: sends currently blocked behind a fault window
        self.sends_blocked = 0

    def blocks_ps(self, node: int, shard: int | None) -> bool:
        """Is the PS endpoint ``(node, shard)`` unable to serve a send?"""
        return (
            node in self.down_nodes
            or node in self.down_ps_nodes
            or (shard is not None and (node, shard) in self.down_ps)
        )

    def retry(self, attempt: int, resend, desc: str) -> None:
        """Back off and retry a blocked send, or give up for good."""
        if attempt >= self.max_retries:
            raise SimulationError(
                f"{desc}: unrecoverable — endpoint still down after "
                f"{self.max_retries} retries"
            )
        if attempt == 0:
            self.sends_blocked += 1
        self.retries_attempted += 1
        delay = self.retry_timeout * (2 ** attempt)
        self.trace.emit(self.sim.now, "ps_retry", "faults", target=desc, attempt=attempt)
        self.sim.schedule(delay, resend)

    def send_resolved(self) -> None:
        """A previously-blocked send finally went through."""
        self.sends_blocked -= 1
        self.sends_resolved += 1

    def on_version_advance(self, version: int, now: float) -> None:
        """Checkpoint the parameter version on the configured cadence."""
        last = self.checkpoints[-1][0] if self.checkpoints else -self.checkpoint_every
        if version >= last + self.checkpoint_every:
            self.checkpoints.append((version, now))
            self.trace.emit(now, "checkpoint", "faults", version=version)


class FaultInjector:
    """Schedules a compiled fault schedule against one runtime."""

    def __init__(
        self,
        runtime,
        schedule: tuple[FaultEvent, ...],
        spec: FaultSpec,
        horizon: float,
    ) -> None:
        self.runtime = runtime
        self.schedule = schedule
        self.spec = spec
        #: the fault-free baseline makespan the schedule's fractions
        #: were scaled by — the degradation oracle's reference point
        self.horizon = horizon
        self.state = FaultState(
            runtime.sim,
            runtime.trace,
            retry_timeout=spec.retry_timeout * horizon,
            max_retries=spec.max_retries,
            checkpoint_every=spec.checkpoint_every,
        )
        #: events that fired / whose recovery completed, for the oracles
        self.fired: list[FaultEvent] = []
        self.recovered: list[FaultEvent] = []
        #: engine events still owed (scheduled fires plus scheduled
        #: recoveries); nonzero forbids fast-forward skips, which would
        #: shift the armed fault times
        self._pending = 0
        #: currently-active straggler records, as (vw, stage, factor)
        self._stragglers: list[tuple[int, int, float]] = []
        #: currently-active link degradations
        self._link_scales: list[float] = []
        self._armed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def arm(self) -> None:
        """Register the schedule on the simulator (call once, pre-run)."""
        if self._armed:
            raise SimulationError("fault schedule already armed")
        self._armed = True
        self.runtime.fault_injector = self
        self.runtime.ps._faults = self.state
        for event in self.schedule:
            self.runtime.sim.schedule_at(event.time, self._fire, event)
            self._pending += 1

    def pending(self) -> bool:
        """Any fault fire or recovery still owed?  (Gates fast-forward.)"""
        return self._pending > 0

    @property
    def structural_change(self) -> bool:
        """Did a permanent failure force elastic re-partitioning?"""
        return self.runtime._structural_change

    # ------------------------------------------------------------------
    # fire / recover
    # ------------------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        self._pending -= 1
        self.fired.append(event)
        self.runtime.trace.emit(
            self.runtime.sim.now, "fault", "faults",
            kind=event.kind, detail=event.describe(),
        )
        if event.kind == "straggler":
            self._straggler_start(event)
        elif event.kind == "crash":
            self._crash_start(event)
        elif event.kind == "link":
            self._link_start(event)
        else:
            self._ps_start(event)

    def _schedule_recovery(self, event: FaultEvent, recover) -> None:
        self._pending += 1
        self.runtime.sim.schedule(event.duration, recover, event)

    def _recovered(self, event: FaultEvent) -> None:
        self._pending -= 1
        self.recovered.append(event)
        self.runtime.trace.emit(
            self.runtime.sim.now, "fault_recovered", "faults",
            kind=event.kind, detail=event.describe(),
        )

    # ------------------------------------------------------------------
    # stragglers
    # ------------------------------------------------------------------

    def _refresh_stragglers(self) -> None:
        """Recompute every pipeline's stage scales from the active set.

        Rebuilt from scratch on each change so composition (overlapping
        stragglers on one stage) and elastic re-partitioning (a stage
        index clamped to a replacement pipeline's shorter plan) stay
        consistent without incremental bookkeeping."""
        for pipeline in self.runtime.pipelines:
            pipeline.stage_scale.clear()
        for vw, stage, factor in self._stragglers:
            pipeline = self.runtime.pipelines[vw]
            s = min(stage, pipeline.plan.k - 1)
            pipeline.stage_scale[s] = pipeline.stage_scale.get(s, 1.0) * factor

    def _straggler_start(self, event: FaultEvent) -> None:
        self._stragglers.append((event.vw, event.stage, event.factor))
        self._refresh_stragglers()
        if not event.permanent:
            self._schedule_recovery(event, self._straggler_end)

    def _straggler_end(self, event: FaultEvent) -> None:
        self._stragglers.remove((event.vw, event.stage, event.factor))
        self._refresh_stragglers()
        self._recovered(event)

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------

    def _crash_start(self, event: FaultEvent) -> None:
        if event.permanent:
            # A node that never rejoins: PS failover + re-partitioning.
            self.state.down_nodes.add(event.node)
            self.runtime.crash_node(event.node)
            self.runtime.handle_node_loss(event.node)
            self.runtime.trace.emit(
                self.runtime.sim.now, "repartition", "faults", node=event.node,
            )
            # Replacement pipelines carry the still-active scales.
            self._refresh_stragglers()
            if self._link_scales:
                self.runtime.set_link_scale(min(self._link_scales))
            return
        self.state.down_nodes.add(event.node)
        self.runtime.crash_node(event.node)
        self._schedule_recovery(event, self._crash_end)

    def _crash_end(self, event: FaultEvent) -> None:
        self.state.down_nodes.discard(event.node)
        self.runtime.restore_node(event.node)
        self._recovered(event)

    # ------------------------------------------------------------------
    # link degradation
    # ------------------------------------------------------------------

    def _link_start(self, event: FaultEvent) -> None:
        self._link_scales.append(event.scale)
        self.runtime.set_link_scale(min(self._link_scales))
        if not event.permanent:
            self._schedule_recovery(event, self._link_end)

    def _link_end(self, event: FaultEvent) -> None:
        self._link_scales.remove(event.scale)
        self.runtime.set_link_scale(
            min(self._link_scales) if self._link_scales else 1.0
        )
        self._recovered(event)

    # ------------------------------------------------------------------
    # PS process failure
    # ------------------------------------------------------------------

    def _ps_hosts(self, slot: int) -> set[int]:
        """The nodes currently hosting shard ``slot`` of any stage."""
        hosts: set[int] = set()
        for placement in self.runtime.placements:
            for dests in placement:
                if slot < len(dests):
                    hosts.add(dests[slot][0])
        return hosts

    def _ps_start(self, event: FaultEvent) -> None:
        if event.permanent:
            self._ps_permanent(event)
            return
        if event.slot >= 0:
            for host in self._ps_hosts(event.slot):
                self.state.down_ps.add((host, event.slot))
                self.runtime.ps.fail_process(host, event.slot)
        else:
            self.state.down_ps_nodes.add(event.node)
            self.runtime.ps.fail_node(event.node)
        self._schedule_recovery(event, self._ps_end)

    def _ps_end(self, event: FaultEvent) -> None:
        if event.slot >= 0:
            for host, slot in [p for p in self.state.down_ps if p[1] == event.slot]:
                self.state.down_ps.discard((host, slot))
                self.runtime.ps.restore_process(host, slot)
        else:
            self.state.down_ps_nodes.discard(event.node)
            self.runtime.ps.restore_node(event.node)
        self._recovered(event)

    def _ps_permanent(self, event: FaultEvent) -> None:
        """A PS process that never comes back: re-place its state.

        The dead hosts' PS queues migrate to a survivor and the shard
        placements are rebuilt through the run's placement policy over
        the remaining PS-capable nodes.  Compute on those hosts keeps
        running — only the PS role moves."""
        runtime = self.runtime
        hosts = (
            self._ps_hosts(event.slot) if event.slot >= 0 else {event.node}
        )
        alive = [
            n.node_id for n in runtime.cluster.nodes
            if n.node_id not in hosts
            and n.node_id not in runtime._lost_nodes
            and n.node_id not in self.state.redirect
        ]
        if not alive:
            raise SimulationError(
                "PS failover impossible: no surviving PS-capable node"
            )
        for host in sorted(hosts):
            runtime.ps.migrate_node(host, alive[0])
        runtime.rebuild_placements(alive)
        runtime._structural_change = True
        runtime.trace.emit(
            runtime.sim.now, "repartition", "faults",
            ps_hosts=tuple(sorted(hosts)),
        )
