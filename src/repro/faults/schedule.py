"""Compile a :class:`~repro.api.spec.FaultSpec` into an event schedule.

Event times in a spec are *fractions of the fault-free makespan* (the
baseline twin the runner measures before arming any fault), so one spec
scales across scenarios instead of hardcoding simulated seconds.  The
compiled schedule is a pure function of ``(spec, targets, horizon,
seed)``: drawn events come from a dedicated ``random.Random`` stream
keyed by the run seed (independent of the scenario/netsim draws, so
enabling faults never perturbs what scenario a seed generates), and
explicit ``spec.events`` tuples are validated against the topology and
appended.  Replaying a diagnostics bundle therefore reproduces the
exact same fault sequence from the spec alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.api.spec import FaultSpec
from repro.errors import ConfigurationError

#: Drawn-event windows, as (lo, hi) fractions of the fault-free
#: makespan.  Starts land inside the measured run; durations are short
#: relative to the horizon so drawn schedules always stay recoverable
#: within the spec's retry budget.
_STRAGGLER_START = (0.05, 0.55)
_STRAGGLER_DURATION = (0.05, 0.30)
_CRASH_START = (0.10, 0.45)
_CRASH_REJOIN = (0.03, 0.15)
_LINK_START = (0.05, 0.55)
_LINK_DURATION = (0.05, 0.25)
_PS_START = (0.10, 0.50)
_PS_DURATION = (0.03, 0.12)

#: Mildest slowdown a drawn straggler applies (the spec's
#: ``straggler_factor`` is the worst).
_STRAGGLER_FLOOR = 1.25

#: Mildest degradation a drawn link fault applies (the spec's
#: ``link_scale_floor`` is the worst).
_LINK_SCALE_CEIL = 0.90


@dataclass(frozen=True)
class FaultEvent:
    """One compiled fault, in absolute simulated seconds.

    ``duration <= 0`` means the fault is permanent: a permanent crash
    triggers PS-shard failover plus elastic re-partitioning instead of
    a scheduled rejoin.
    """

    kind: str  # "straggler" | "crash" | "link" | "ps"
    time: float
    duration: float
    vw: int = -1  # straggler: virtual worker index
    stage: int = -1  # straggler: stage index within the worker's plan
    node: int = -1  # crash / node-targeted ps fault
    slot: int = -1  # shard-targeted ps fault
    factor: float = 1.0  # straggler slowdown multiplier
    scale: float = 1.0  # link bandwidth scale

    @property
    def permanent(self) -> bool:
        return self.duration <= 0.0

    def describe(self) -> str:
        span = "permanent" if self.permanent else f"{self.duration:.4f}s"
        if self.kind == "straggler":
            target = f"vw{self.vw}.s{self.stage} x{self.factor:.2f}"
        elif self.kind == "crash":
            target = f"node {self.node}"
        elif self.kind == "link":
            target = f"scale {self.scale:.2f}"
        else:
            target = f"slot {self.slot}" if self.slot >= 0 else f"node {self.node}"
        return f"{self.kind} @t={self.time:.4f} ({span}): {target}"


@dataclass(frozen=True)
class FaultTargets:
    """The topology a drawn schedule may aim at."""

    num_virtual_workers: int
    stages_per_worker: tuple[int, ...]
    node_ids: tuple[int, ...]
    shards: int = 1


def draw_fault_spec(seed: int) -> FaultSpec:
    """The fuzz generator's fault axis: a seeded, always-active spec.

    Uses its own ``random.Random`` stream (keyed ``faults-{seed}``) so
    the scenario and congested-fabric draws for a seed are untouched;
    guarantees at least one fault so every fuzzed schedule exercises
    the recovery machinery.  Drawn schedules are transient-only —
    permanent failures (elastic re-partitioning) are an explicit-event
    feature with their own deterministic tests.
    """
    rng = random.Random(f"faults-{seed}")
    spec = FaultSpec(
        enabled=True,
        stragglers=rng.randint(0, 2),
        crashes=rng.randint(0, 1),
        link_faults=rng.randint(0, 1),
        ps_faults=rng.randint(0, 1),
    )
    if spec.stragglers + spec.crashes + spec.link_faults + spec.ps_faults == 0:
        spec = replace(spec, stragglers=1)
    return spec


def _draw(rng: random.Random, window: tuple[float, float]) -> float:
    lo, hi = window
    return lo + rng.random() * (hi - lo)


def compile_schedule(
    spec: FaultSpec,
    targets: FaultTargets,
    horizon: float,
    seed: int,
) -> tuple[FaultEvent, ...]:
    """The absolute-time schedule for one run, sorted by fire time.

    Drawn events first (their count/knobs come from the spec, their
    details from the ``faults-sched-{seed}`` stream), then the spec's
    explicit events, validated against ``targets``.  Pure and
    deterministic; an empty result (all counts zero, no explicit
    events) arms nothing and leaves the run bit-identical to
    faults-off.
    """
    if horizon <= 0.0:
        raise ConfigurationError(
            f"fault schedule needs a positive horizon, got {horizon!r}"
        )
    if targets.num_virtual_workers < 1 or not targets.node_ids:
        raise ConfigurationError("fault schedule needs a non-empty topology")
    rng = random.Random(f"faults-sched-{seed}")
    events: list[FaultEvent] = []
    for _ in range(spec.stragglers):
        vw = rng.randrange(targets.num_virtual_workers)
        stage = rng.randrange(targets.stages_per_worker[vw])
        floor = min(_STRAGGLER_FLOOR, spec.straggler_factor)
        factor = floor + rng.random() * (spec.straggler_factor - floor)
        events.append(
            FaultEvent(
                "straggler",
                _draw(rng, _STRAGGLER_START) * horizon,
                _draw(rng, _STRAGGLER_DURATION) * horizon,
                vw=vw,
                stage=stage,
                factor=factor,
            )
        )
    for _ in range(spec.crashes):
        node = rng.choice(targets.node_ids)
        events.append(
            FaultEvent(
                "crash",
                _draw(rng, _CRASH_START) * horizon,
                _draw(rng, _CRASH_REJOIN) * horizon,
                node=node,
            )
        )
    for _ in range(spec.link_faults):
        ceil = max(spec.link_scale_floor, _LINK_SCALE_CEIL)
        scale = spec.link_scale_floor + rng.random() * (ceil - spec.link_scale_floor)
        events.append(
            FaultEvent(
                "link",
                _draw(rng, _LINK_START) * horizon,
                _draw(rng, _LINK_DURATION) * horizon,
                scale=scale,
            )
        )
    for _ in range(spec.ps_faults):
        if targets.shards > 1:
            slot, node = rng.randrange(targets.shards), -1
        else:
            slot, node = -1, rng.choice(targets.node_ids)
        events.append(
            FaultEvent(
                "ps",
                _draw(rng, _PS_START) * horizon,
                _draw(rng, _PS_DURATION) * horizon,
                node=node,
                slot=slot,
            )
        )
    for i, raw in enumerate(spec.events):
        events.append(_explicit_event(raw, i, targets, horizon))
    events.sort(key=lambda event: (event.time, event.kind))
    return tuple(events)


def _explicit_event(
    raw: tuple, index: int, targets: FaultTargets, horizon: float
) -> FaultEvent:
    """Validate one ``spec.events`` tuple against the topology."""
    kind = raw[0]
    start = float(raw[1]) * horizon
    if kind == "straggler":
        _, _, vw, stage, factor, duration = raw
        vw, stage = int(vw), int(stage)
        if not 0 <= vw < targets.num_virtual_workers:
            raise ConfigurationError(
                f"faults.events[{index}]: virtual worker {vw} out of range "
                f"(run has {targets.num_virtual_workers})"
            )
        if not 0 <= stage < targets.stages_per_worker[vw]:
            raise ConfigurationError(
                f"faults.events[{index}]: stage {stage} out of range "
                f"(vw{vw} has {targets.stages_per_worker[vw]} stages)"
            )
        if float(factor) < 1.0:
            raise ConfigurationError(
                f"faults.events[{index}]: straggler factor must be >= 1, "
                f"got {factor!r}"
            )
        return FaultEvent(
            "straggler",
            start,
            float(duration) * horizon,
            vw=vw,
            stage=stage,
            factor=float(factor),
        )
    if kind == "crash":
        _, _, node, rejoin = raw
        node = int(node)
        if node not in targets.node_ids:
            raise ConfigurationError(
                f"faults.events[{index}]: node {node} not in cluster "
                f"{list(targets.node_ids)}"
            )
        return FaultEvent("crash", start, float(rejoin) * horizon, node=node)
    if kind == "link":
        _, _, scale, duration = raw
        if not 0.0 < float(scale) <= 1.0:
            raise ConfigurationError(
                f"faults.events[{index}]: link scale must be in (0, 1], "
                f"got {scale!r}"
            )
        return FaultEvent(
            "link", start, float(duration) * horizon, scale=float(scale)
        )
    # "ps": the target is a shard slot when the run shards its PS,
    # otherwise a node (the node's PS process).
    _, _, target, duration = raw
    target = int(target)
    if targets.shards > 1:
        if not 0 <= target < targets.shards:
            raise ConfigurationError(
                f"faults.events[{index}]: PS shard slot {target} out of range "
                f"(run has {targets.shards})"
            )
        return FaultEvent("ps", start, float(duration) * horizon, slot=target)
    if target not in targets.node_ids:
        raise ConfigurationError(
            f"faults.events[{index}]: node {target} not in cluster "
            f"{list(targets.node_ids)}"
        )
    return FaultEvent("ps", start, float(duration) * horizon, node=target)
