"""HetPipe reproduction: pipelined model parallelism + data parallelism
with Wave Synchronous Parallel on (whimpy) heterogeneous GPU clusters.

Reproduces Park et al., USENIX ATC 2020, on a simulated testbed.  The
public API mirrors the system's layers:

>>> from repro import paper_cluster, build_vgg19, allocate
>>> from repro import plan_virtual_worker, measure_hetpipe, measure_horovod
>>> cluster = paper_cluster()
>>> model = build_vgg19()
>>> assignment = allocate(cluster, "ED")
>>> plans = [plan_virtual_worker(model, vw, 4, cluster.interconnect,
...                              search_orderings=False)
...          for vw in assignment.virtual_workers]
>>> metrics = measure_hetpipe(cluster, model, plans, d=0, placement="local")
>>> metrics.throughput > 0
True

See ``examples/`` for runnable walkthroughs and ``repro.experiments``
for the paper's tables and figures.

The package namespace resolves lazily (PEP 562): importing ``repro``
pulls in nothing heavy, so ``repro fuzz`` and ``repro bench`` — whose
throughput is itself tracked in ``BENCH_sweep.json`` — do not pay for
NumPy and the numeric trainers they never touch.  ``from repro import
X`` works exactly as before; the submodule is imported on first access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

#: public name -> submodule that defines it
_EXPORTS = {
    "ClusterSpec": "repro.api",
    "ExperimentSpec": "repro.api",
    "FidelitySpec": "repro.api",
    "ModelSpec": "repro.api",
    "NetworkSpec": "repro.api",
    "PipelineSpec": "repro.api",
    "RunSpec": "repro.api",
    "SweepSpec": "repro.api",
    "SpecError": "repro.errors",
    "UnknownNameError": "repro.errors",
    "measure_run": "repro.wsp",
    "VirtualWorkerAssignment": "repro.allocation",
    "allocate": "repro.allocation",
    "Cluster": "repro.cluster",
    "GPUDevice": "repro.cluster",
    "GPUSpec": "repro.cluster",
    "InterconnectSpec": "repro.cluster",
    "Node": "repro.cluster",
    "paper_cluster": "repro.cluster",
    "single_type_cluster": "repro.cluster",
    "ConfigurationError": "repro.errors",
    "ConvergenceError": "repro.errors",
    "MemoryCapacityError": "repro.errors",
    "PartitionError": "repro.errors",
    "ReproError": "repro.errors",
    "SimulationError": "repro.errors",
    "StalenessViolation": "repro.errors",
    "Calibration": "repro.models",
    "DEFAULT_CALIBRATION": "repro.models",
    "ModelGraph": "repro.models",
    "Profiler": "repro.models",
    "build_resnet101": "repro.models",
    "build_resnet152": "repro.models",
    "build_resnet50": "repro.models",
    "build_vgg16": "repro.models",
    "build_vgg19": "repro.models",
    "Fabric": "repro.netsim",
    "FabricSpec": "repro.netsim",
    "NETWORK_MODELS": "repro.netsim",
    "HorovodMetrics": "repro.parallel",
    "measure_horovod": "repro.parallel",
    "PartitionPlan": "repro.partition",
    "Stage": "repro.partition",
    "max_feasible_nm": "repro.partition",
    "plan_virtual_worker": "repro.partition",
    "PipelineMetrics": "repro.pipeline",
    "VirtualWorkerPipeline": "repro.pipeline",
    "measure_pipeline": "repro.pipeline",
    "BSPTrainer": "repro.training",
    "BSPTrainingConfig": "repro.training",
    "WSPTrainer": "repro.training",
    "WSPTrainingConfig": "repro.training",
    "HetPipeMetrics": "repro.wsp",
    "HetPipeRuntime": "repro.wsp",
    "admission_limit": "repro.wsp",
    "global_staleness": "repro.wsp",
    "local_staleness": "repro.wsp",
    "measure_hetpipe": "repro.wsp",
}

__version__ = "1.0.0"

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # static analyzers see the eager imports
    from repro.allocation import VirtualWorkerAssignment, allocate
    from repro.api import (
        ClusterSpec,
        ExperimentSpec,
        FidelitySpec,
        ModelSpec,
        NetworkSpec,
        PipelineSpec,
        RunSpec,
        SweepSpec,
    )
    from repro.errors import SpecError, UnknownNameError
    from repro.wsp import measure_run
    from repro.cluster import (
        Cluster,
        GPUDevice,
        GPUSpec,
        InterconnectSpec,
        Node,
        paper_cluster,
        single_type_cluster,
    )
    from repro.errors import (
        ConfigurationError,
        ConvergenceError,
        MemoryCapacityError,
        PartitionError,
        ReproError,
        SimulationError,
        StalenessViolation,
    )
    from repro.models import (
        Calibration,
        DEFAULT_CALIBRATION,
        ModelGraph,
        Profiler,
        build_resnet101,
        build_resnet152,
        build_resnet50,
        build_vgg16,
        build_vgg19,
    )
    from repro.netsim import Fabric, FabricSpec, NETWORK_MODELS
    from repro.parallel import HorovodMetrics, measure_horovod
    from repro.partition import (
        PartitionPlan,
        Stage,
        max_feasible_nm,
        plan_virtual_worker,
    )
    from repro.pipeline import PipelineMetrics, VirtualWorkerPipeline, measure_pipeline
    from repro.training import (
        BSPTrainer,
        BSPTrainingConfig,
        WSPTrainer,
        WSPTrainingConfig,
    )
    from repro.wsp import (
        HetPipeMetrics,
        HetPipeRuntime,
        admission_limit,
        global_staleness,
        local_staleness,
        measure_hetpipe,
    )
