"""HetPipe reproduction: pipelined model parallelism + data parallelism
with Wave Synchronous Parallel on (whimpy) heterogeneous GPU clusters.

Reproduces Park et al., USENIX ATC 2020, on a simulated testbed.  The
public API mirrors the system's layers:

>>> from repro import paper_cluster, build_vgg19, allocate
>>> from repro import plan_virtual_worker, measure_hetpipe, measure_horovod
>>> cluster = paper_cluster()
>>> model = build_vgg19()
>>> assignment = allocate(cluster, "ED")
>>> plans = [plan_virtual_worker(model, vw, 4, cluster.interconnect,
...                              search_orderings=False)
...          for vw in assignment.virtual_workers]
>>> metrics = measure_hetpipe(cluster, model, plans, d=0, placement="local")
>>> metrics.throughput > 0
True

See ``examples/`` for runnable walkthroughs and ``repro.experiments``
for the paper's tables and figures.
"""

from repro.allocation import VirtualWorkerAssignment, allocate
from repro.cluster import (
    Cluster,
    GPUDevice,
    GPUSpec,
    InterconnectSpec,
    Node,
    paper_cluster,
    single_type_cluster,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    MemoryCapacityError,
    PartitionError,
    ReproError,
    SimulationError,
    StalenessViolation,
)
from repro.models import (
    Calibration,
    DEFAULT_CALIBRATION,
    ModelGraph,
    Profiler,
    build_resnet101,
    build_resnet152,
    build_resnet50,
    build_vgg16,
    build_vgg19,
)
from repro.netsim import Fabric, FabricSpec, NETWORK_MODELS
from repro.parallel import HorovodMetrics, measure_horovod
from repro.partition import (
    PartitionPlan,
    Stage,
    max_feasible_nm,
    plan_virtual_worker,
)
from repro.pipeline import PipelineMetrics, VirtualWorkerPipeline, measure_pipeline
from repro.training import (
    BSPTrainer,
    BSPTrainingConfig,
    WSPTrainer,
    WSPTrainingConfig,
)
from repro.wsp import (
    HetPipeMetrics,
    HetPipeRuntime,
    admission_limit,
    global_staleness,
    local_staleness,
    measure_hetpipe,
)

__version__ = "1.0.0"

__all__ = [
    "BSPTrainer",
    "BSPTrainingConfig",
    "Calibration",
    "Cluster",
    "ConfigurationError",
    "ConvergenceError",
    "DEFAULT_CALIBRATION",
    "Fabric",
    "FabricSpec",
    "GPUDevice",
    "GPUSpec",
    "HetPipeMetrics",
    "HetPipeRuntime",
    "HorovodMetrics",
    "InterconnectSpec",
    "MemoryCapacityError",
    "ModelGraph",
    "NETWORK_MODELS",
    "Node",
    "PartitionError",
    "PartitionPlan",
    "PipelineMetrics",
    "Profiler",
    "ReproError",
    "SimulationError",
    "Stage",
    "StalenessViolation",
    "VirtualWorkerAssignment",
    "VirtualWorkerPipeline",
    "WSPTrainer",
    "WSPTrainingConfig",
    "admission_limit",
    "allocate",
    "build_resnet101",
    "build_resnet152",
    "build_resnet50",
    "build_vgg16",
    "build_vgg19",
    "global_staleness",
    "local_staleness",
    "max_feasible_nm",
    "measure_hetpipe",
    "measure_horovod",
    "measure_pipeline",
    "paper_cluster",
    "plan_virtual_worker",
    "single_type_cluster",
    "__version__",
]
