"""``repro bench``: the tracked performance baseline.

Times the layers whose speed the project actually depends on — fuzz
throughput (scenarios/sec, serial and parallel), the discrete-event
engine's micro-ops, streaming trace emission, partition planning with a
cold vs warm plan cache, and the figure experiments — and writes the
results to ``BENCH_sweep.json``.  The committed copy of that file is the
perf trajectory: ``repro bench --check BENCH_sweep.json`` exits non-zero
when fuzz throughput regresses more than ``--tolerance`` (default 30%)
against it, which CI runs on every push.

Wall-clock numbers are machine-dependent; the baseline is refreshed by
re-running ``repro bench --out BENCH_sweep.json`` on the reference
machine whenever the hardware or the expected performance changes.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable

#: Bump when the JSON layout changes.  /2 adds per-mode fuzz event
#: counts (events_simulated / events_fast_forwarded), the
#: ``fuzz_fast_forward`` metric, and the long-horizon full-vs-coalesced
#: pair demonstrating the asymptotic event-count reduction.  /3 adds
#: provenance: the top-level ``spec_schema`` (the RunSpec schema every
#: fuzz scenario is constructed under) and a ``spec_hash`` per fuzz
#: metric — the sha256 over the batch's per-seed RunSpec hashes, so a
#: perf artifact is traceable to the exact configurations it timed.
#: /4 adds the ``fuzz_faults`` metric: fuzz throughput with a seeded
#: fault schedule per scenario under the graceful-degradation oracles
#: (the fault-injection tax is part of the tracked trajectory).
#: /5 adds the ``fuzz_variant`` metric: fuzz throughput under a
#: non-default pipeline variant (pipedream_2bw — the double-buffer
#: ledger plus the WeightVersionOracle and version-window gate are the
#: variant zoo's per-scenario tax).
SCHEMA = "hetpipe-bench/5"

#: Default benchmark sizes: full mode tracks the acceptance workload
#: (100 seeds); quick mode stays in CI-smoke territory.
FULL_SEEDS = 100
QUICK_SEEDS = 25
ENGINE_EVENTS = 200_000
TRACE_RECORDS = 200_000

#: Long-horizon workload: deterministic (jitter-free) seeds — the
#: regime the fast-forward core targets, and the only one its 1e-9
#: semantic contract permits coalescing — with the measured window
#: scaled up so steady-state cycles dominate.
LONG_HORIZON_SCALE = 16
LONG_HORIZON_SEEDS = 10


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def bench_engine(events: int = ENGINE_EVENTS) -> dict[str, float]:
    """Schedule/execute throughput of the bare event loop."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def spin() -> None:
        remaining = events

        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until_idle(max_events=events + 1)

    seconds, _ = _timed(spin)
    return {
        "events": float(events),
        "seconds": seconds,
        "events_per_sec": events / seconds if seconds > 0 else 0.0,
    }


def bench_trace(records: int = TRACE_RECORDS) -> dict[str, float]:
    """Streaming-digest emit throughput (storage off, hash on)."""
    from repro.sim.trace import Trace

    trace = Trace(enabled=False, digest=True)

    def spin() -> None:
        emit = trace.emit
        for i in range(records):
            emit(float(i), "f_start", "vw0.s1", minibatch=i)
        trace.digest()

    seconds, _ = _timed(spin)
    return {
        "records": float(records),
        "seconds": seconds,
        "records_per_sec": records / seconds if seconds > 0 else 0.0,
    }


def bench_plan_cache() -> dict[str, float]:
    """Partition planning with a cold vs warm boundaries cache."""
    from repro.cluster.catalog import paper_cluster
    from repro.models import build_vgg19
    from repro.partition import clear_plan_cache, plan_virtual_worker

    cluster = paper_cluster()
    model = build_vgg19()
    gpus = cluster.gpus[0:4]

    def solve_all() -> None:
        for nm in range(1, 6):
            plan_virtual_worker(
                model, gpus, nm, cluster.interconnect, search_orderings=False
            )

    clear_plan_cache()
    cold_seconds, _ = _timed(solve_all)
    warm_seconds, _ = _timed(solve_all)
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
    }


def _clear_scenario_caches() -> None:
    """Reset the memoized scenario materialization *and* the partition
    planner's boundaries cache so every fuzz measurement starts cold —
    otherwise whichever fidelity runs second would be timed against a
    warm cache."""
    from repro.partition import clear_plan_cache
    from repro.scenarios import generator

    generator._materialize_cached.cache_clear()
    clear_plan_cache()


def _batch_spec_hash(report) -> str:
    """One provenance hash for a fuzz batch: sha256 over the per-seed
    RunSpec hashes, in seed order.  Stable across hosts and ``--jobs``
    counts; changes exactly when any scenario's configuration does."""
    import hashlib

    return hashlib.sha256(
        "".join(result.spec_hash for result in report.results).encode()
    ).hexdigest()


def bench_fuzz(
    seeds: int, jobs: int | None = None, fidelity: str = "full",
    faults: bool = False, variant: str = "vw_hetpipe",
) -> dict[str, Any]:
    """Fuzz throughput over ``seeds`` scenarios (the headline metric).

    ``fidelity="fast_forward"`` measures the coalescing engine itself:
    equivalence twins stay off (they are a correctness gate, not part of
    a scenario's cost — ``repro fuzz --fidelity fast_forward`` runs them).
    ``faults`` measures the fault-injection mode: every scenario also
    pays for its fault-free horizon twin, the armed schedule, and the
    recovery machinery.  ``variant`` re-runs the same seeded scenarios
    under a pipeline-variant entry (composed admission gates, the
    weight-version ledger, and the per-variant oracles).
    """
    from repro.scenarios import run_fuzz

    _clear_scenario_caches()
    seconds, report = _timed(
        lambda: run_fuzz(
            range(seeds), jobs=jobs or 1, fidelity=fidelity,
            verify_equivalence=False if fidelity == "fast_forward" else None,
            faults=faults, variant=variant,
        )
    )
    return {
        "seeds": float(seeds),
        "jobs": float(jobs or 1),
        "seconds": seconds,
        "scenarios_per_sec": seeds / seconds if seconds > 0 else 0.0,
        "violations": float(report.total_violations),
        "events_simulated": float(report.events_simulated),
        "events_fast_forwarded": float(report.events_fast_forwarded),
        "spec_hash": _batch_spec_hash(report),
    }


def _long_horizon_seeds(count: int) -> list[int]:
    """The first ``count`` seeds whose scenarios draw zero task jitter."""
    from repro.scenarios.generator import generate_scenario

    picked: list[int] = []
    seed = 0
    while len(picked) < count:
        if generate_scenario(seed).spec.jitter == 0.0:
            picked.append(seed)
        seed += 1
    return picked


def bench_fuzz_long_horizon(
    quick: bool, scale: int = LONG_HORIZON_SCALE, count: int = LONG_HORIZON_SEEDS
) -> dict[str, Any]:
    """Full vs fast-forward on the long-horizon deterministic workload.

    This is where macro-event coalescing is asymptotically faster: the
    full run costs O(minibatches) while the coalesced run costs
    O(warmup + drain + detected cycles), so the gap widens with the
    ``scale`` factor.  Reported alongside the event counts so the
    reduction itself — not just wall clock — is tracked.
    """
    from repro.scenarios import run_fuzz

    if quick:
        scale, count = max(2, scale // 4), max(3, count // 2)
    seeds = _long_horizon_seeds(count)
    _clear_scenario_caches()
    full_seconds, full = _timed(
        lambda: run_fuzz(seeds, jobs=1, waves_scale=scale)
    )
    _clear_scenario_caches()
    ff_seconds, ff = _timed(
        lambda: run_fuzz(
            seeds, jobs=1, fidelity="fast_forward",
            verify_equivalence=False, waves_scale=scale,
        )
    )
    return {
        "seeds": float(len(seeds)),
        "waves_scale": float(scale),
        "full_seconds": full_seconds,
        "full_scenarios_per_sec": len(seeds) / full_seconds if full_seconds > 0 else 0.0,
        "full_events_simulated": float(full.events_simulated),
        "fast_forward_seconds": ff_seconds,
        "fast_forward_scenarios_per_sec": (
            len(seeds) / ff_seconds if ff_seconds > 0 else 0.0
        ),
        "fast_forward_events_simulated": float(ff.events_simulated),
        "fast_forward_events_coalesced": float(ff.events_fast_forwarded),
        "speedup": full_seconds / ff_seconds if ff_seconds > 0 else 0.0,
        "violations": float(full.total_violations + ff.total_violations),
        "spec_hash": _batch_spec_hash(full),
    }


def bench_experiments(quick: bool, jobs: int | None = None) -> dict[str, float]:
    """End-to-end figure regeneration times (vgg19; the slowest model
    set is the benchmark suite's job, not the trajectory's)."""
    from repro.experiments import run_fig3, run_fig4, run_table4

    out: dict[str, float] = {}
    out["fig3_vgg19_seconds"], _ = _timed(lambda: run_fig3("vgg19", jobs=jobs))
    if not quick:
        out["fig4_vgg19_seconds"], _ = _timed(lambda: run_fig4("vgg19", jobs=jobs))
        out["table4_vgg19_seconds"], _ = _timed(lambda: run_table4("vgg19", jobs=jobs))
    return out


def run_bench(
    quick: bool = False,
    seeds: int | None = None,
    jobs: int | None = None,
    skip_experiments: bool = False,
) -> dict[str, Any]:
    """Run the whole suite and return the ``BENCH_sweep.json`` payload."""
    import os

    seeds = seeds if seeds is not None else (QUICK_SEEDS if quick else FULL_SEEDS)
    engine_events = ENGINE_EVENTS // 4 if quick else ENGINE_EVENTS
    trace_records = TRACE_RECORDS // 4 if quick else TRACE_RECORDS

    metrics: dict[str, Any] = {}
    metrics["engine"] = bench_engine(engine_events)
    metrics["trace"] = bench_trace(trace_records)
    metrics["plan_cache"] = bench_plan_cache()
    metrics["fuzz"] = bench_fuzz(seeds, jobs=1)
    metrics["fuzz_fast_forward"] = bench_fuzz(seeds, jobs=1, fidelity="fast_forward")
    metrics["fuzz_faults"] = bench_fuzz(seeds, jobs=1, faults=True)
    metrics["fuzz_variant"] = bench_fuzz(seeds, jobs=1, variant="pipedream_2bw")
    metrics["fuzz_long_horizon"] = bench_fuzz_long_horizon(quick)
    parallel_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if parallel_jobs > 1:
        metrics["fuzz_parallel"] = bench_fuzz(seeds, jobs=parallel_jobs)
    if not skip_experiments:
        metrics["experiments"] = bench_experiments(quick, jobs=jobs)

    from repro.api.spec import SPEC_SCHEMA

    return {
        "schema": SCHEMA,
        "spec_schema": SPEC_SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": float(os.cpu_count() or 1),
        "metrics": metrics,
    }


def render(payload: dict[str, Any]) -> str:
    """Human-readable summary of a bench payload."""
    m = payload["metrics"]
    lines = [
        f"bench ({'quick' if payload['quick'] else 'full'}) — python "
        f"{payload['python']}, {int(payload['cpu_count'])} cpu(s)",
        f"  engine      : {m['engine']['events_per_sec']:>12,.0f} events/s",
        f"  trace       : {m['trace']['records_per_sec']:>12,.0f} records/s (streaming digest)",
        f"  plan cache  : {m['plan_cache']['speedup']:>12.1f} x warm vs cold",
        f"  fuzz        : {m['fuzz']['scenarios_per_sec']:>12.1f} scenarios/s "
        f"({int(m['fuzz']['seeds'])} seeds, serial)",
    ]
    ff = m.get("fuzz_fast_forward")
    if ff:
        base = m["fuzz"]["scenarios_per_sec"]
        speedup = ff["scenarios_per_sec"] / base if base > 0 else 0.0
        total = ff["events_simulated"] + ff["events_fast_forwarded"]
        share = ff["events_fast_forwarded"] / total if total else 0.0
        lines.append(
            f"  fuzz ff     : {ff['scenarios_per_sec']:>12.1f} scenarios/s "
            f"({speedup:.2f}x full; {share:.0%} of events coalesced)"
        )
    faulted = m.get("fuzz_faults")
    if faulted:
        base = m["fuzz"]["scenarios_per_sec"]
        ratio = faulted["scenarios_per_sec"] / base if base > 0 else 0.0
        lines.append(
            f"  fuzz faults : {faulted['scenarios_per_sec']:>12.1f} scenarios/s "
            f"({ratio:.2f}x fault-free; {int(faulted['violations'])} violations)"
        )
    varianted = m.get("fuzz_variant")
    if varianted:
        base = m["fuzz"]["scenarios_per_sec"]
        ratio = varianted["scenarios_per_sec"] / base if base > 0 else 0.0
        lines.append(
            f"  fuzz variant: {varianted['scenarios_per_sec']:>12.1f} scenarios/s "
            f"(pipedream_2bw; {ratio:.2f}x default variant)"
        )
    lh = m.get("fuzz_long_horizon")
    if lh:
        lines.append(
            f"  fuzz long   : {lh['fast_forward_scenarios_per_sec']:>12.1f} scenarios/s "
            f"fast-forward vs {lh['full_scenarios_per_sec']:.1f} full "
            f"({lh['speedup']:.2f}x at waves x{int(lh['waves_scale'])}, "
            f"{int(lh['fast_forward_events_coalesced'])} of "
            f"{int(lh['full_events_simulated'])} events coalesced)"
        )
    if "fuzz_parallel" in m:
        lines.append(
            f"  fuzz --jobs : {m['fuzz_parallel']['scenarios_per_sec']:>12.1f} scenarios/s "
            f"(jobs={int(m['fuzz_parallel']['jobs'])})"
        )
    for key, value in m.get("experiments", {}).items():
        lines.append(f"  {key:<12}: {value:>12.3f} s")
    return "\n".join(lines)


def check_against(
    payload: dict[str, Any], baseline_path: str, tolerance: float = 0.30
) -> tuple[bool, str]:
    """Compare fuzz throughput against a committed baseline.

    Two comparisons, and the check passes if **either** is within
    ``tolerance`` of the baseline:

    * **raw** scenarios/sec — exact on the machine the baseline was
      recorded on;
    * **machine-normalized** scenarios/sec, dividing by the engine
      micro-benchmark's events/sec — the committed baseline comes from
      one machine while CI runs on another, and the bare event loop is
      a clean proxy for single-core speed, so the ratio transfers.

    A genuine fuzz-path regression (engine unchanged) fails both; a
    slower/faster host changes both numerator and denominator of the
    normalized rate and still passes.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != SCHEMA:
        return False, f"baseline {baseline_path} has schema {baseline.get('schema')!r}, expected {SCHEMA!r}"
    base_rate = baseline["metrics"]["fuzz"]["scenarios_per_sec"]
    rate = payload["metrics"]["fuzz"]["scenarios_per_sec"]
    floor = base_rate * (1.0 - tolerance)
    raw_ok = rate >= floor
    message = (
        f"fuzz throughput {rate:.1f} scenarios/s vs baseline {base_rate:.1f} "
        f"(floor at -{tolerance:.0%}: {floor:.1f})"
    )
    # Event-count deltas ride along (informational): wall clock varies
    # with the host, but simulated/coalesced event counts are exact, so
    # they attribute a throughput change to event-count changes vs
    # per-event cost changes.  Counts are normalized per scenario — the
    # quick and full workloads run different seed batches.
    for metric, simulated_key, coalesced_key in (
        ("fuzz", "events_simulated", "events_fast_forwarded"),
        ("fuzz_fast_forward", "events_simulated", "events_fast_forwarded"),
        ("fuzz_faults", "events_simulated", "events_fast_forwarded"),
        ("fuzz_variant", "events_simulated", "events_fast_forwarded"),
        ("fuzz_long_horizon", "fast_forward_events_simulated", "fast_forward_events_coalesced"),
    ):
        base_metric = baseline["metrics"].get(metric, {})
        cur_metric = payload["metrics"].get(metric, {})
        base_events = base_metric.get(simulated_key)
        cur_events = cur_metric.get(simulated_key)
        base_seeds = base_metric.get("seeds", 0.0)
        cur_seeds = cur_metric.get("seeds", 0.0)
        if base_events and cur_events and base_seeds and cur_seeds:
            base_per = base_events / base_seeds
            cur_per = cur_events / cur_seeds
            message += (
                f"; {metric} {cur_per:.0f} events/scenario vs {base_per:.0f} "
                f"({(cur_per - base_per) / base_per:+.1%}, "
                f"{cur_metric.get(coalesced_key, 0.0) / cur_seeds:.0f}/scenario coalesced)"
            )
    base_engine = baseline["metrics"].get("engine", {}).get("events_per_sec", 0.0)
    engine = payload["metrics"].get("engine", {}).get("events_per_sec", 0.0)
    if base_engine > 0 and engine > 0:
        normalized = rate / engine
        base_normalized = base_rate / base_engine
        normalized_ok = normalized >= base_normalized * (1.0 - tolerance)
        message += (
            f"; engine-normalized {normalized * 1e3:.3f} vs baseline "
            f"{base_normalized * 1e3:.3f} scenarios/kEvent "
            f"({'ok' if normalized_ok else 'regressed'})"
        )
        return raw_ok or normalized_ok, message
    return raw_ok, message


def write_payload(payload: dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def record_history(payload: dict[str, Any], store_dir: str) -> str:
    """Append one bench run to a result store as history.

    Unlike sweep points (keyed by ``spec_hash``, dedup-by-content is the
    point), bench runs are keyed by the sha256 of their own canonical
    payload: every run with distinct timings accumulates as a distinct
    record — the machine's perf history, listable with
    ``repro store ls`` — while byte-identical reruns dedupe naturally.
    Returns the one-line confirmation for the CLI.
    """
    import hashlib

    from repro.api.spec import canonical_dumps
    from repro.store import ResultStore

    key = hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()
    rate = (
        payload.get("metrics", {}).get("fuzz", {}).get("scenarios_per_sec", 0.0)
    )
    summary = f"{payload.get('schema', '?')} fuzz {rate:.1f} scen/s"
    ResultStore(store_dir).put(
        key, "bench", {"summary": summary, "bench": payload}, tool="repro bench"
    )
    return f"store: recorded bench run {key[:12]} -> {store_dir}"


#: Schema tag for the structured cProfile payload.
PROFILE_SCHEMA = "hetpipe-profile/1"

#: Entries kept in the structured profile (by cumulative time).
PROFILE_TOP = 50


def profile_path_for(out: str) -> str:
    """Where ``--profile`` writes: next to ``--out`` (or the cwd)."""
    import os

    directory = os.path.dirname(out) if out else ""
    return os.path.join(directory, "BENCH_profile.json") if directory else "BENCH_profile.json"


def profile_payload(profiler) -> dict[str, Any]:
    """Structured, diffable view of a cProfile run.

    Entries are the top-:data:`PROFILE_TOP` functions by cumulative
    time, each carrying the ``pstats`` counters (primitive/total calls,
    self and cumulative seconds) keyed by ``file:line(function)`` — the
    stable identity profiles can be compared across PRs by.
    """
    import pstats

    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        entries.append(
            {
                "function": f"{filename}:{line}({name})",
                "primitive_calls": cc,
                "total_calls": nc,
                "self_seconds": tt,
                "cumulative_seconds": ct,
            }
        )
    entries.sort(key=lambda e: (-e["cumulative_seconds"], e["function"]))
    return {
        "schema": PROFILE_SCHEMA,
        "total_calls": stats.total_calls,
        "total_seconds": stats.total_tt,
        "entries": entries[:PROFILE_TOP],
    }


def main_bench(args) -> int:
    """Entry point for the ``repro bench`` subcommand."""
    run = lambda: run_bench(  # noqa: E731
        quick=args.quick,
        seeds=args.seeds,
        jobs=args.jobs,
        skip_experiments=args.no_experiments,
    )
    if getattr(args, "profile", False):
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        payload = profiler.runcall(run)
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
        print(stream.getvalue())
        path = profile_path_for(args.out)
        with open(path, "w") as fh:
            json.dump(profile_payload(profiler), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({PROFILE_SCHEMA}, top-{PROFILE_TOP} cumulative)")
    else:
        payload = run()
    print(render(payload))
    if args.out:
        write_payload(payload, args.out)
        print(f"wrote {args.out}")
    if getattr(args, "store", None):
        print(record_history(payload, args.store))
    if args.check:
        ok, message = check_against(payload, args.check, args.tolerance)
        print(("OK: " if ok else "REGRESSION: ") + message, file=sys.stderr if not ok else sys.stdout)
        return 0 if ok else 1
    return 0
