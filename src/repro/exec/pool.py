"""Deterministic parallel sweep execution with streamed results.

Every multi-scenario entry point (``repro fuzz``, the figure
experiments, ``repro bench``, ``repro sweep``) funnels through
:func:`sweep_map`: a map over independent work items that can fan out
across worker processes (``jobs > 1``) while remaining **bit-identical
to the serial run**.

Determinism comes from three properties:

* work items are pure functions of their inputs (a fuzz seed fully
  determines its scenario; a figure row fully determines its
  measurement), so *where* an item runs cannot change its result;
* items are dealt to workers by a fixed round-robin stripe of the input
  order (worker ``w`` gets items ``w, w + jobs, w + 2 * jobs, ...``),
  never by completion order, so the assignment itself is reproducible;
* results are merged back by original item index before anything is
  reported, so output ordering is independent of scheduling.

Worker processes import ``fn`` by reference (it must be a module-level
callable) and **stream one message per completed item** back to the
parent.  Per-item streaming is what makes sweeps crash-safe and
watchdog-able: the parent can persist each result the moment it exists
(``on_stream`` — the hook ``repro sweep --store`` commits points
through, so a SIGKILL loses at most in-flight items), and it knows how
long the *current* item has been running, so a per-item wall-clock
``timeout`` can kill a hung worker instead of hanging the sweep.

The executor also owns the GC discipline of a sweep: the simulator
allocates millions of short-lived events/records whose lifetimes are
almost entirely refcount-managed, so the cyclic collector's generational
scans are pure overhead mid-run.  Both the serial loop and each worker
disable automatic collection and instead collect explicitly every
``_GC_EVERY`` items, bounding cycle buildup on very long sweeps.
"""

from __future__ import annotations

import gc
import logging
import multiprocessing
import multiprocessing.connection
import os
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError, ItemTimeoutError, WorkerCrashError

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Items processed between explicit ``gc.collect()`` calls while the
#: automatic collector is paused.
_GC_EVERY = 64

#: Isolated attempts granted to each item of a dead (or watchdog-killed)
#: worker's stripe before the item is declared poisoned
#: (:class:`WorkerCrashError`) or pathological (:class:`ItemTimeoutError`).
_ITEM_RETRIES = 2

#: Sentinel for a result slot no worker has filled yet (``None`` is a
#: legitimate item result).
_MISSING = object()


def resolve_jobs(jobs: int | None) -> int:
    """Worker-count policy: ``None`` means one worker per CPU."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def stripe_indices(n_items: int, jobs: int) -> list[list[int]]:
    """Round-robin deal of ``range(n_items)`` across ``jobs`` workers.

    Interleaving (rather than contiguous blocks) balances sweeps whose
    per-item cost trends with position — fuzz seeds and Nm sweeps both
    do — while staying a pure function of ``(n_items, jobs)``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return [list(range(w, n_items, jobs)) for w in range(min(jobs, n_items))]


class _gc_paused:
    """Context manager: pause automatic GC, restore and sweep on exit."""

    def __enter__(self) -> None:
        self._was_enabled = gc.isenabled()
        gc.disable()

    def __exit__(self, *exc: Any) -> None:
        if self._was_enabled:
            gc.enable()
            gc.collect()


def _run_serial(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_result: Callable[[int, Any], None] | None,
    on_stream: Callable[[int, Any], None] | None,
) -> list[R]:
    out: list[R] = []
    with _gc_paused():
        for index, item in enumerate(items):
            out.append(fn(item))
            if on_stream is not None:
                on_stream(index, out[-1])
            if on_result is not None:
                on_result(index, out[-1])
            if (index + 1) % _GC_EVERY == 0:
                gc.collect()
    return out


def _stripe_main(conn, fn: Callable[[T], R], items: list[T]) -> None:
    """Worker process entry: stream ``("item", local_index, result)`` per
    completed item, then ``("done", None)``.

    A worker that dies without finishing (segfault, OOM kill,
    ``os._exit``, watchdog SIGKILL) is detected by the parent as EOF on
    the pipe; an ordinary exception travels back explicitly as
    ``("error", exc)`` so it can re-raise with its type intact.  A
    vanished parent (its SIGKILL closed the read end) surfaces here as
    ``BrokenPipeError`` — exit quietly, there is nobody to report to.
    """
    try:
        with _gc_paused():
            for index, item in enumerate(items):
                result = fn(item)
                conn.send(("item", index, result))
                if (index + 1) % _GC_EVERY == 0:
                    gc.collect()
        conn.send(("done", None))
    except BrokenPipeError:
        return
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except BrokenPipeError:
            return
        except Exception:
            # Unpicklable exception: degrade to its repr.
            try:
                conn.send(("error", ConfigurationError(repr(exc))))
            except Exception:
                return


def _spawn_stripe(ctx, fn: Callable[[T], R], stripe_items: list[T]):
    """Start one stripe worker; returns ``(process, recv_conn)``."""
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_stripe_main, args=(send_conn, fn, stripe_items))
    proc.start()
    send_conn.close()  # parent keeps only the receive end: EOF == death
    return proc, recv_conn


def _kill(proc) -> None:
    """SIGKILL (not terminate): a hung item may be ignoring SIGTERM."""
    if proc.is_alive():
        kill = getattr(proc, "kill", proc.terminate)
        kill()
    proc.join()


class _Worker:
    """Parent-side state of one live stripe worker."""

    __slots__ = ("proc", "conn", "stripe", "done", "deadline")

    def __init__(self, proc, conn, stripe: list[int], deadline: float | None) -> None:
        self.proc = proc
        self.conn = conn
        self.stripe = stripe
        self.done = 0  # local index of the next item expected
        self.deadline = deadline

    @property
    def remaining(self) -> list[int]:
        return self.stripe[self.done:]


def _run_isolated(ctx, fn, item, timeout: float | None):
    """One item in its own process, watchdog enforced.

    Returns ``("ok", result)``, ``("died", exitcode)``, or
    ``("timeout", None)``; a worker exception re-raises here.
    """
    proc, conn = _spawn_stripe(ctx, fn, [item])
    try:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not conn.poll(wait):
                _kill(proc)
                return ("timeout", None)
            try:
                message = conn.recv()
            except EOFError:
                proc.join()
                return ("died", proc.exitcode)
            if message[0] == "item":
                proc.join()
                return ("ok", message[2])
            if message[0] == "error":
                proc.join()
                raise message[1]
            # ("done", None) before any item is impossible for a
            # one-item stripe; fall through and keep reading.
    finally:
        if proc.is_alive():  # pragma: no cover - defensive
            _kill(proc)
        conn.close()


def _recover_stripe(
    ctx,
    fn: Callable[[T], R],
    items: Sequence[T],
    indices: list[int],
    deliver: Callable[[int, Any], None],
    timeout: float | None,
    cause: str,
) -> None:
    """Re-run a dead/killed worker's unfinished items, one isolated
    process per item.

    Isolation keeps a segfaulting item from taking the parent down; the
    bounded per-item retries distinguish a transient failure (OOM kill
    under memory pressure, a load spike tripping the watchdog) from an
    item that is genuinely poisoned (:class:`WorkerCrashError`) or
    pathological (:class:`ItemTimeoutError`) — each error naming the
    item's original index.
    """
    logger.warning(
        "sweep_map: worker lost (%s); retrying its %d unfinished item(s) "
        "in isolated processes",
        cause, len(indices),
    )
    for index in indices:
        status, payload = "died", None
        for attempt in range(_ITEM_RETRIES):
            status, payload = _run_isolated(ctx, fn, items[index], timeout)
            if status == "ok":
                deliver(index, payload)
                break
            logger.warning(
                "sweep_map: item %d %s in isolation (attempt %d/%d)",
                index,
                "timed out" if status == "timeout" else f"died (exitcode {payload})",
                attempt + 1, _ITEM_RETRIES,
            )
        else:
            if status == "timeout":
                assert timeout is not None
                raise ItemTimeoutError(index, timeout, _ITEM_RETRIES)
            raise WorkerCrashError(
                index,
                f"process exited with code {payload} on all "
                f"{_ITEM_RETRIES} isolated attempts",
            )


def sweep_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    mp_context: str | None = None,
    on_result: Callable[[int, R], None] | None = None,
    on_stream: Callable[[int, R], None] | None = None,
    timeout: float | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Returns results in item order; the output is bit-identical whatever
    ``jobs`` is (see module docstring for why).  ``fn`` must be a
    module-level callable and items/results must pickle when worker
    processes are involved.  A worker exception propagates to the
    caller.

    Two callbacks observe progress:

    * ``on_stream(index, result)`` fires the moment a result reaches
      the parent — **completion order**, not item order.  This is the
      crash-safety hook: persist here and a SIGKILL loses at most the
      in-flight items.
    * ``on_result(index, result)`` fires strictly in item order (each
      index only after every earlier one), so progress logging prints
      identically whatever ``jobs`` is.

    ``timeout`` arms a per-item wall-clock watchdog: an item that runs
    past it gets its worker killed and is re-run in an isolated process
    (bounded retries, like worker-death recovery); an item that exhausts
    its retries raises :class:`~repro.errors.ItemTimeoutError` naming
    its index — a single pathological item can hang neither a worker
    nor the sweep.  The watchdog needs a killable process boundary, so
    ``timeout`` forces the worker path even at ``jobs=1`` (results are
    bit-identical either way; only the process layout changes).

    A worker process that *dies* (segfault, OOM kill) does not hang or
    poison the batch: its unfinished items are re-run one isolated
    process per item with bounded retries, and only an item that keeps
    killing its process raises :class:`~repro.errors.WorkerCrashError` —
    naming that item's index.  ``KeyboardInterrupt`` tears the workers
    down (terminate + join) before propagating, so an interrupted
    ``repro fuzz``/``repro sweep`` leaves no orphan processes behind.
    """
    jobs = resolve_jobs(jobs)
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0 seconds, got {timeout}")
    items = list(items)
    if (jobs == 1 or len(items) <= 1) and timeout is None:
        logger.info(
            "sweep_map: %d item(s), serial (%s)",
            len(items), getattr(fn, "__name__", fn),
        )
        return _run_serial(fn, items, on_result, on_stream)
    if not items:
        return []

    stripes = stripe_indices(len(items), jobs)
    logger.info(
        "sweep_map: %d item(s) across %d worker(s) (%s)%s",
        len(items), len(stripes), getattr(fn, "__name__", fn),
        f", {timeout:g}s per-item watchdog" if timeout is not None else "",
    )
    ctx = multiprocessing.get_context(mp_context)
    out: list[Any] = [_MISSING] * len(items)
    emitted = 0

    def deliver(index: int, result: Any) -> None:
        nonlocal emitted
        out[index] = result
        if on_stream is not None:
            on_stream(index, result)
        if on_result is not None:
            while emitted < len(out) and out[emitted] is not _MISSING:
                on_result(emitted, out[emitted])
                emitted += 1

    def fresh_deadline() -> float | None:
        return None if timeout is None else time.monotonic() + timeout

    workers = [
        _Worker(*_spawn_stripe(ctx, fn, [items[i] for i in stripe]),
                stripe=stripe, deadline=fresh_deadline())
        for stripe in stripes
    ]
    live = list(workers)
    try:
        while live:
            wait: float | None = None
            if timeout is not None:
                now = time.monotonic()
                wait = max(0.0, min(w.deadline for w in live) - now)
            ready = multiprocessing.connection.wait(
                [w.conn for w in live], timeout=wait
            )
            ready_set = set(ready)
            now = time.monotonic()
            for worker in list(live):
                if worker.conn in ready_set:
                    # Drain every queued message: a fast worker may have
                    # several items buffered behind one wakeup.
                    while True:
                        try:
                            message = worker.conn.recv()
                        except EOFError:
                            live.remove(worker)
                            worker.proc.join()
                            _recover_stripe(
                                ctx, fn, items, worker.remaining, deliver,
                                timeout, f"exitcode {worker.proc.exitcode}",
                            )
                            break
                        if message[0] == "item":
                            deliver(worker.stripe[message[1]], message[2])
                            worker.done = message[1] + 1
                            worker.deadline = fresh_deadline()
                        elif message[0] == "done":
                            live.remove(worker)
                            worker.proc.join()
                            break
                        else:  # ("error", exc)
                            raise message[1]
                        if not worker.conn.poll():
                            break
                elif timeout is not None and now >= worker.deadline:
                    # Watchdog: the worker's current item has overrun.
                    live.remove(worker)
                    _kill(worker.proc)
                    _recover_stripe(
                        ctx, fn, items, worker.remaining, deliver,
                        timeout, f"item watchdog after {timeout:g}s",
                    )
    finally:
        # Reached with workers still alive only on an abnormal exit —
        # a raised worker exception, WorkerCrashError/ItemTimeoutError,
        # or the user's KeyboardInterrupt: tear everything down, leave
        # no orphans.
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.proc.join()
            worker.conn.close()
    missing = [i for i, r in enumerate(out) if r is _MISSING]
    if missing:
        raise ConfigurationError(
            f"workers returned no result for item(s) {missing[:8]}"
        )
    return out
