"""Deterministic parallel sweep execution.

Every multi-scenario entry point (``repro fuzz``, the figure
experiments, ``repro bench``) funnels through :func:`sweep_map`: a map
over independent work items that can fan out across worker processes
(``jobs > 1``) while remaining **bit-identical to the serial run**.

Determinism comes from three properties:

* work items are pure functions of their inputs (a fuzz seed fully
  determines its scenario; a figure row fully determines its
  measurement), so *where* an item runs cannot change its result;
* items are dealt to workers by a fixed round-robin stripe of the input
  order (worker ``w`` gets items ``w, w + jobs, w + 2 * jobs, ...``),
  never by completion order, so the assignment itself is reproducible;
* results are merged back by original item index before anything is
  reported, so output ordering is independent of scheduling.

Worker processes import ``fn`` by reference (it must be a module-level
callable) and return their stripe's results in one message, which keeps
IPC to two pickles per worker rather than two per item.

The executor also owns the GC discipline of a sweep: the simulator
allocates millions of short-lived events/records whose lifetimes are
almost entirely refcount-managed, so the cyclic collector's generational
scans are pure overhead mid-run.  Both the serial loop and each worker
disable automatic collection and instead collect explicitly every
``_GC_EVERY`` items, bounding cycle buildup on very long sweeps.
"""

from __future__ import annotations

import gc
import logging
import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError, WorkerCrashError

logger = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Items processed between explicit ``gc.collect()`` calls while the
#: automatic collector is paused.
_GC_EVERY = 64

#: Isolated attempts granted to each item of a dead worker's stripe
#: before the item is declared poisoned (:class:`WorkerCrashError`).
_ITEM_RETRIES = 2


def resolve_jobs(jobs: int | None) -> int:
    """Worker-count policy: ``None`` means one worker per CPU."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def stripe_indices(n_items: int, jobs: int) -> list[list[int]]:
    """Round-robin deal of ``range(n_items)`` across ``jobs`` workers.

    Interleaving (rather than contiguous blocks) balances sweeps whose
    per-item cost trends with position — fuzz seeds and Nm sweeps both
    do — while staying a pure function of ``(n_items, jobs)``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return [list(range(w, n_items, jobs)) for w in range(min(jobs, n_items))]


def _run_serial(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_result: Callable[[int, Any], None] | None,
) -> list[R]:
    out: list[R] = []
    with _gc_paused():
        for index, item in enumerate(items):
            out.append(fn(item))
            if on_result is not None:
                on_result(index, out[-1])
            if (index + 1) % _GC_EVERY == 0:
                gc.collect()
    return out


class _gc_paused:
    """Context manager: pause automatic GC, restore and sweep on exit."""

    def __enter__(self) -> None:
        self._was_enabled = gc.isenabled()
        gc.disable()

    def __exit__(self, *exc: Any) -> None:
        if self._was_enabled:
            gc.enable()
            gc.collect()


def _worker_stripe(args: tuple[Callable[[T], R], list[T]]) -> list[R]:
    """Run one stripe inside a worker process."""
    fn, items = args
    with _gc_paused():
        out = []
        for index, item in enumerate(items):
            out.append(fn(item))
            if (index + 1) % _GC_EVERY == 0:
                gc.collect()
        return out


def _stripe_main(conn, fn: Callable[[T], R], items: list[T]) -> None:
    """Worker process entry: run the stripe, send ``(status, payload)``.

    A worker that dies without sending anything (segfault, OOM kill,
    ``os._exit``) is detected by the parent as EOF on the pipe; an
    ordinary exception travels back explicitly so it can re-raise with
    its type intact.
    """
    try:
        results = _worker_stripe((fn, items))
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except Exception:
            # Unpicklable exception: degrade to its repr.
            conn.send(("error", ConfigurationError(repr(exc))))
        return
    conn.send(("ok", results))


def _spawn_stripe(ctx, fn: Callable[[T], R], stripe_items: list[T]):
    """Start one stripe worker; returns ``(process, recv_conn)``."""
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_stripe_main, args=(send_conn, fn, stripe_items))
    proc.start()
    send_conn.close()  # parent keeps only the receive end: EOF == death
    return proc, recv_conn


def _receive(proc, conn):
    """``(status, payload)`` from a worker, or ``None`` if it died.

    The pipe is drained *before* joining: a worker blocked sending a
    large result would deadlock against a parent blocked in ``join``.
    """
    try:
        message = conn.recv()
    except EOFError:
        proc.join()
        return None
    proc.join()
    return message


def _retry_stripe(
    ctx, fn: Callable[[T], R], items: Sequence[T], stripe: list[int], exitcode
) -> list[R]:
    """Re-run a dead worker's stripe, one isolated process per item.

    Isolation keeps a segfaulting item from taking the parent down; the
    bounded per-item retries distinguish a transient death (OOM kill
    under memory pressure) from a poisoned item, which raises
    :class:`WorkerCrashError` naming its original index.
    """
    logger.warning(
        "sweep_map: worker died (exitcode %s); retrying its %d item(s) "
        "in isolated processes",
        exitcode, len(stripe),
    )
    results: list[R] = []
    for index in stripe:
        for attempt in range(_ITEM_RETRIES):
            proc, conn = _spawn_stripe(ctx, fn, [items[index]])
            try:
                message = _receive(proc, conn)
            finally:
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
                conn.close()
            if message is not None:
                status, payload = message
                if status == "error":
                    raise payload
                results.append(payload[0])
                break
            logger.warning(
                "sweep_map: item %d died in isolation (attempt %d/%d, "
                "exitcode %s)",
                index, attempt + 1, _ITEM_RETRIES, proc.exitcode,
            )
        else:
            raise WorkerCrashError(
                index,
                f"process exited with code {proc.exitcode} on all "
                f"{_ITEM_RETRIES} isolated attempts",
            )
    return results


def sweep_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    mp_context: str | None = None,
    on_result: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Returns results in item order; the output is bit-identical whatever
    ``jobs`` is (see module docstring for why).  ``fn`` must be a
    module-level callable and items/results must pickle when
    ``jobs > 1``.  A worker exception propagates to the caller.

    A worker process that *dies* (segfault, OOM kill) does not hang or
    poison the batch: its stripe is re-run one isolated process per
    item with bounded retries, and only an item that keeps killing its
    process raises :class:`~repro.errors.WorkerCrashError` — naming
    that item's index.  ``KeyboardInterrupt`` tears the workers down
    (terminate + join) before propagating, so an interrupted ``repro
    fuzz``/``repro sweep`` leaves no orphan processes behind.

    ``on_result(index, result)`` is invoked in item order — immediately
    per item when serial, after the merge when parallel — so progress
    logging prints identically in both modes.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        logger.info("sweep_map: %d item(s), serial (%s)", len(items), getattr(fn, "__name__", fn))
        return _run_serial(fn, items, on_result)

    stripes = stripe_indices(len(items), jobs)
    logger.info(
        "sweep_map: %d item(s) across %d worker(s) (%s)",
        len(items), len(stripes), getattr(fn, "__name__", fn),
    )
    ctx = multiprocessing.get_context(mp_context)
    workers = [
        _spawn_stripe(ctx, fn, [items[i] for i in stripe]) for stripe in stripes
    ]
    stripe_results: list[list[R]] = []
    try:
        for stripe, (proc, conn) in zip(stripes, workers):
            message = _receive(proc, conn)
            if message is None:
                stripe_results.append(
                    _retry_stripe(ctx, fn, items, stripe, proc.exitcode)
                )
                continue
            status, payload = message
            if status == "error":
                raise payload
            stripe_results.append(payload)
    finally:
        # Reached with workers still alive only on an abnormal exit —
        # a raised worker exception, WorkerCrashError, or the user's
        # KeyboardInterrupt: tear everything down, leave no orphans.
        for proc, conn in workers:
            if proc.is_alive():
                proc.terminate()
            proc.join()
            conn.close()
    out: list[R] = [None] * len(items)  # type: ignore[list-item]
    for stripe, results in zip(stripes, stripe_results):
        if len(results) != len(stripe):
            raise ConfigurationError(
                f"worker returned {len(results)} results for {len(stripe)} items"
            )
        for index, result in zip(stripe, results):
            out[index] = result
    if on_result is not None:
        for index, result in enumerate(out):
            on_result(index, result)
    return out
