"""Sweep execution: deterministic parallel fan-out + perf benchmarks.

* :mod:`repro.exec.pool` — :func:`sweep_map`, the executor every
  multi-scenario entry point (fuzz batches, figure experiments) runs
  through: round-robin striping across worker processes with in-order
  merging, so ``--jobs N`` output is bit-identical to serial.
* :mod:`repro.exec.bench` — ``repro bench``: times fuzz throughput,
  engine/trace micro-ops, the plan cache, and the figure experiments,
  and writes ``BENCH_sweep.json`` so every PR has a perf trajectory to
  compare against (``repro bench --check`` gates on it).
"""

from repro.exec.pool import resolve_jobs, stripe_indices, sweep_map

__all__ = [
    "resolve_jobs",
    "stripe_indices",
    "sweep_map",
]
