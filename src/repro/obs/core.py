"""The in-run telemetry collector.

One :class:`ObsCollector` is attached per instrumented run (via
``HetPipeRuntime(..., obs=...)`` or ``measure_run``): the runtime sets
``Simulator.obs`` before any resource is constructed, so processors,
channels, and shared-fabric links register themselves at creation —
including the parameter server's lazily-created per-stream channels and
per-shard apply processors — and report exact busy spans as they finish
work.  Trace records flow in through :meth:`ObsCollector.on_trace` (a
plain :class:`~repro.sim.trace.Trace` subscriber, so digests are
untouched by construction) and are paired into stage-level task spans,
lifecycle annotations, and fast-forward macro-spans.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import ObservabilitySpec
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecord

#: Trace categories recorded as instant annotations (one marker each).
ANNOTATION_CATEGORIES = frozenset(
    (
        "inject", "minibatch_done", "wave_push", "pull_done",
        "fault", "fault_recovered", "checkpoint", "repartition",
    )
)


@dataclass(frozen=True)
class Span:
    """One closed interval of work on one track (resource or stage)."""

    track: str
    name: str
    start: float
    end: float
    args: dict[str, Any]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ObsReport:
    """Aggregate telemetry summary (surfaced on ``HetPipeMetrics``)."""

    spans: int
    annotations: int
    samples: int
    counters: dict[str, int]
    #: per-resource utilization over the run (fraction of time busy)
    utilization: dict[str, float]
    #: per-resource peak simultaneous waiters (0 for processors, whose
    #: queue drains through a single server)
    queue_depth_peak: dict[str, int]


class ObsCollector:
    """Accumulates spans, counters, annotations, samples, and a trace ring.

    All methods are cheap appends; nothing here feeds back into the
    simulation, so an instrumented run follows the exact trajectory of
    an uninstrumented one (the digest-equality tests pin this down).
    """

    def __init__(self, spec: "ObservabilitySpec | None" = None) -> None:
        if spec is None:
            from repro.api.spec import ObservabilitySpec

            spec = ObservabilitySpec(enabled=True)
        self.spec = spec
        self.spans: list[Span] = []
        #: (time, name, track, args) instant markers
        self.annotations: list[tuple[float, str, str, dict[str, Any]]] = []
        self.counters: dict[str, int] = {}
        #: gauge name -> [(time, value), ...] time series
        self.series: dict[str, list[tuple[float, float]]] = {}
        #: last-N raw trace records (time, category, actor, detail) for
        #: diagnostics bundles
        self.ring: deque = deque(maxlen=spec.ring_buffer)
        self.resources: list[Any] = []
        self.samples_taken = 0
        self._resource_ids: set[int] = set()
        #: (actor, kind) -> (start time, start detail) for open task spans
        self._open: dict[tuple[str, str], tuple[float, dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # instrumentation API
    # ------------------------------------------------------------------

    def count(self, name: str, inc: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + inc

    def gauge(self, name: str, value: float, time: float) -> None:
        """Append one ``(time, value)`` point to gauge ``name``."""
        self.series.setdefault(name, []).append((time, value))

    def annotate(self, time: float, name: str, track: str, **args: Any) -> None:
        """Record an instant marker on ``track``."""
        self.annotations.append((time, name, track, args))

    def register_resource(self, resource: Any) -> None:
        """Track a Processor/Channel/SharedLink for utilization sampling.

        Called by the resources themselves at construction when
        ``sim.obs`` is set, so lazily-created resources (PS streams,
        shard apply queues) are covered automatically.
        """
        if id(resource) not in self._resource_ids:
            self._resource_ids.add(id(resource))
            self.resources.append(resource)

    def processor_span(self, name: str, tag: Any, start: float, end: float) -> None:
        """Exact busy interval of one processor job (from ``_finish``)."""
        label = "job" if tag is None else str(tag)
        self.spans.append(Span(name, label, start, end, {}))

    def channel_span(self, name: str, start: float, end: float, nbytes: float) -> None:
        """Exact occupancy interval of one transfer on a link."""
        self.spans.append(Span(name, "xfer", start, end, {"nbytes": nbytes}))

    # ------------------------------------------------------------------
    # trace subscription
    # ------------------------------------------------------------------

    def on_trace(self, record: "TraceRecord") -> None:
        """Pair task start/done records into spans; keep the ring fresh."""
        category = record.category
        self.ring.append((record.time, category, record.actor, dict(record.detail)))
        if category.endswith("_start"):
            self._open[(record.actor, category[:-6])] = (record.time, record.detail)
            return
        if category.endswith("_done"):
            kind = category[:-5]
            opened = self._open.pop((record.actor, kind), None)
            if opened is not None:
                start, detail = opened
                args = {**detail, **record.detail}
                mb = args.get("minibatch")
                name = kind if mb is None else f"{kind} mb{mb}"
                self.spans.append(Span(record.actor, name, start, record.time, args))
        if category in ANNOTATION_CATEGORIES:
            self.count(category)
            self.annotations.append(
                (record.time, category, record.actor, dict(record.detail))
            )
        elif category == "fast_forward":
            # Coalesced steady-state cycles appear as one macro-span
            # covering the analytically-advanced interval.
            dt = float(record.detail.get("dt", 0.0))
            cycles = record.detail.get("cycles", 0)
            self.count("fast_forward")
            self.spans.append(
                Span(
                    record.actor,
                    f"fast_forward x{cycles}",
                    record.time - dt,
                    record.time,
                    dict(record.detail),
                )
            )

    # ------------------------------------------------------------------
    # periodic sampling
    # ------------------------------------------------------------------

    def install_sampler(self, sim: "Simulator") -> None:
        """Schedule the utilization/queue-depth sampler on ``sim``.

        Ticks every ``spec.sample_every`` simulated seconds and
        reschedules only while further work is pending, so runs still
        quiesce.  Sampling reads state without mutating it — the
        simulated trajectory is unchanged.
        """
        every = self.spec.sample_every
        if every <= 0:
            return

        def tick() -> None:
            self.sample(sim)
            if sim.peek() is not None:
                sim.schedule(every, tick)

        sim.schedule(every, tick)

    def sample(self, sim: "Simulator") -> None:
        """Take one sample of every registered resource and the engine."""
        now = sim.now
        self.samples_taken += 1
        self.gauge("sim.queue_depth", float(sim.queue_depth), now)
        for res in self.resources:
            self.gauge(f"{res.name}.util", res.utilization(), now)
            depth = getattr(res, "queue_depth", None)
            if depth is None:
                depth = len(getattr(res, "_pending_starts", ()))
            self.gauge(f"{res.name}.queue", float(depth), now)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def report(self) -> ObsReport:
        """Summarize into the frozen :class:`ObsReport`."""
        utilization = {res.name: res.utilization() for res in self.resources}
        queue_depth_peak = {
            res.name: int(getattr(res, "max_queue_depth", 0))
            for res in self.resources
        }
        return ObsReport(
            spans=len(self.spans),
            annotations=len(self.annotations),
            samples=self.samples_taken,
            counters=dict(self.counters),
            utilization=utilization,
            queue_depth_peak=queue_depth_peak,
        )

    def ring_records(self) -> list[tuple[float, str, str, dict[str, Any]]]:
        """The ring buffer contents, oldest first."""
        return list(self.ring)
