"""Diagnostics bundles: one directory per reproducible fuzz failure.

When a fuzz seed trips an oracle, the harness re-runs it with capture
enabled and writes everything needed to reproduce and diagnose the
violation:

``<root>/seed<seed>_<spec_hash[:12]>/``
    ``bundle.json``       manifest (schema, spec_hash, violations, replay command)
    ``spec.json``         the failing RunSpec, loadable by ``repro run``
    ``trace_ring.json``   last-N trace records before the violation
    ``oracle_state.json`` each oracle's internal state at the end of the run
    ``snapshots.json``    engine/PS/pipeline/fabric queue snapshots
    ``README.txt``        the one-command replay instructions

Replays are deterministic: :func:`replay_bundle` (or ``repro run
<bundle>/spec.json``) re-runs the exact spec — including the seed-drawn
congested fabric for shared-network scenarios — and reaches the same
violation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.api.spec import RunSpec
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.runner import ScenarioResult

#: Manifest schema tag; bump on layout changes.
BUNDLE_SCHEMA = "hetpipe-bundle/1"


@dataclass(frozen=True)
class DiagnosticsBundle:
    """A loaded bundle (see :func:`load_bundle`)."""

    path: str
    run: RunSpec
    violations: tuple[str, ...]
    trace_ring: tuple
    oracle_state: dict[str, Any]
    snapshots: dict[str, Any]


def bundle_dir_name(run: RunSpec) -> str:
    return f"seed{run.seed}_{run.spec_hash[:12]}"


def _dump(path: str, payload: Any) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_bundle(root: str, run: RunSpec, diagnostics: dict[str, Any]) -> str:
    """Write one failure's bundle under ``root``; returns its directory.

    ``diagnostics`` is the capture dict a ``run_scenario(...,
    capture_diagnostics=True)`` re-run attaches to its result
    (``ScenarioResult.diagnostics``); missing keys degrade to empty
    sections rather than failing the write — a diagnostics path must
    never mask the violation it is reporting.
    """
    path = os.path.join(root, bundle_dir_name(run))
    os.makedirs(path, exist_ok=True)
    spec_path = os.path.join(path, "spec.json")
    with open(spec_path, "w") as handle:
        handle.write(run.to_json())
    violations = list(diagnostics.get("violations", ()))
    replay = f"PYTHONPATH=src python -m repro.cli run {spec_path}"
    _dump(
        os.path.join(path, "bundle.json"),
        {
            "schema": BUNDLE_SCHEMA,
            "seed": run.seed,
            "spec_hash": run.spec_hash,
            "violations": violations,
            "replay": replay,
        },
    )
    _dump(os.path.join(path, "trace_ring.json"), list(diagnostics.get("trace_ring", ())))
    _dump(os.path.join(path, "oracle_state.json"), diagnostics.get("oracle_state", {}))
    _dump(os.path.join(path, "snapshots.json"), diagnostics.get("snapshots", {}))
    with open(os.path.join(path, "README.txt"), "w") as handle:
        handle.write(
            f"HetPipe diagnostics bundle ({BUNDLE_SCHEMA})\n"
            f"seed {run.seed}, spec_hash {run.spec_hash}\n\n"
            f"violations:\n"
            + "".join(f"  - {v}\n" for v in violations)
            + f"\nreplay (deterministic — reaches the same violation):\n"
            f"  {replay}\n\n"
            f"files: spec.json (the failing RunSpec), trace_ring.json\n"
            f"(last trace records), oracle_state.json (oracle internals),\n"
            f"snapshots.json (engine/PS/pipeline/fabric state).\n"
        )
    return path


def load_bundle(path: str) -> DiagnosticsBundle:
    """Load a bundle directory written by :func:`write_bundle`."""
    manifest_path = os.path.join(path, "bundle.json")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"not a diagnostics bundle: {manifest_path}: {exc}") from None
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ReproError(
            f"{manifest_path}: schema {manifest.get('schema')!r} is not {BUNDLE_SCHEMA!r}"
        )
    with open(os.path.join(path, "spec.json")) as handle:
        run = RunSpec.from_json(handle.read())

    def _load(name: str, default: Any) -> Any:
        try:
            with open(os.path.join(path, name)) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return default

    return DiagnosticsBundle(
        path=path,
        run=run,
        violations=tuple(manifest.get("violations", ())),
        trace_ring=tuple(tuple(r) for r in _load("trace_ring.json", [])),
        oracle_state=_load("oracle_state.json", {}),
        snapshots=_load("snapshots.json", {}),
    )


def replay_bundle(bundle: "DiagnosticsBundle | str") -> "ScenarioResult":
    """Re-run a bundle's spec with capture enabled.

    Deterministic by construction: the replayed result reports the same
    violations the bundle recorded.
    """
    from repro.scenarios.runner import run_scenario

    if isinstance(bundle, str):
        bundle = load_bundle(bundle)
    return run_scenario(bundle.run, capture_diagnostics=True)
