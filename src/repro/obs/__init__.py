"""Unified telemetry: spans, counters, timelines, diagnostics bundles.

The observability layer is strictly additive — with it disabled (the
default) no collector exists, ``Simulator.obs`` stays ``None``, and the
hot paths pay one attribute check.  Enabled, it collects:

* **spans** — exact busy intervals of every :class:`Processor`,
  :class:`Channel`, and shared-fabric :class:`SharedLink` (reported by
  the resources themselves), plus stage-level task spans paired from
  trace records (which carry minibatch ids);
* **counters and annotations** — minibatch/wave lifecycle events;
* **time series** — per-resource utilization and queue depth sampled at
  a configurable cadence (:class:`repro.api.spec.ObservabilitySpec`);
* **timelines** — Chrome-trace/Perfetto JSON export
  (:func:`repro.obs.timeline.chrome_trace`, ``repro trace``);
* **diagnostics bundles** — on a fuzz oracle violation, the failing
  RunSpec, a trace ring buffer, oracle internal state, and fabric/queue
  snapshots, written to a directory that replays in one command
  (:mod:`repro.obs.bundle`).
"""

from repro.obs.bundle import (
    BUNDLE_SCHEMA,
    DiagnosticsBundle,
    load_bundle,
    replay_bundle,
    write_bundle,
)
from repro.obs.core import ObsCollector, ObsReport, Span
from repro.obs.timeline import chrome_trace, trace_run, validate_chrome_trace

__all__ = [
    "BUNDLE_SCHEMA",
    "DiagnosticsBundle",
    "ObsCollector",
    "ObsReport",
    "Span",
    "chrome_trace",
    "load_bundle",
    "replay_bundle",
    "trace_run",
    "validate_chrome_trace",
    "write_bundle",
]
