"""Chrome-trace / Perfetto timeline export.

:func:`chrome_trace` renders an :class:`~repro.obs.core.ObsCollector`
into the Trace Event Format JSON object (the ``traceEvents`` array form)
that both ``chrome://tracing`` and https://ui.perfetto.dev load
directly: one *process* per subsystem (each virtual worker, the
parameter server, the shared fabric, the runtime), one *thread* per
resource or pipeline stage, ``X`` complete events for spans (fast-
forwarded cycles appear as coalesced macro-spans), ``i`` instants for
lifecycle annotations, and ``C`` counter events for the sampled
utilization/queue-depth series.

:func:`validate_chrome_trace` is a dependency-free structural check of
that contract (used by tests and the CI timeline job), and
:func:`trace_run` is the driver behind ``repro trace <spec.json>``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.obs.core import ObsCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import RunSpec

#: Schema tag carried in the payload's ``otherData``.
TIMELINE_SCHEMA = "hetpipe-timeline/1"

#: Track-name prefixes that belong to the shared fabric's resources.
_FABRIC_PREFIXES = frozenset(("pcie", "host", "nic", "ib"))

_US = 1e6  # trace-event timestamps are microseconds


def _group(track: str) -> str:
    """The process a track belongs to (``vw0``, ``ps``, ``fabric``, ...)."""
    head = track.split(".", 1)[0]
    return "fabric" if head in _FABRIC_PREFIXES else head


def chrome_trace(collector: ObsCollector, title: str = "") -> dict[str, Any]:
    """Render collected telemetry as a Chrome-trace JSON object."""
    tracks: set[str] = {span.track for span in collector.spans}
    tracks.update(track for _, _, track, _ in collector.annotations)
    series_groups: set[str] = set()
    for name in collector.series:
        series_groups.add(_group(name))

    groups = sorted({_group(track) for track in tracks} | series_groups)
    pid_of = {group: index + 1 for index, group in enumerate(groups)}
    tid_of = {track: index + 1 for index, track in enumerate(sorted(tracks))}

    events: list[dict[str, Any]] = []
    for group in groups:
        events.append(
            {
                "ph": "M",
                "pid": pid_of[group],
                "tid": 0,
                "name": "process_name",
                "args": {"name": group},
            }
        )
    for track in sorted(tracks):
        events.append(
            {
                "ph": "M",
                "pid": pid_of[_group(track)],
                "tid": tid_of[track],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in collector.spans:
        events.append(
            {
                "ph": "X",
                "pid": pid_of[_group(span.track)],
                "tid": tid_of[span.track],
                "ts": span.start * _US,
                "dur": max(0.0, span.end - span.start) * _US,
                "name": span.name,
                "cat": _group(span.track),
                "args": dict(span.args),
            }
        )
    for time, name, track, args in collector.annotations:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": pid_of[_group(track)],
                "tid": tid_of[track],
                "ts": time * _US,
                "name": name,
                "cat": _group(track),
                "args": dict(args),
            }
        )
    for name, points in sorted(collector.series.items()):
        pid = pid_of.get(_group(name), 0)
        for time, value in points:
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": time * _US,
                    "name": name,
                    "args": {"value": value},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TIMELINE_SCHEMA,
            "title": title,
            "spans": len(collector.spans),
            "annotations": len(collector.annotations),
            "samples": collector.samples_taken,
        },
    }


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural errors in a Chrome-trace payload (empty = valid).

    Checks the subset of the Trace Event Format this exporter emits:
    JSON-object root with a ``traceEvents`` array; every event carries a
    known phase, a name, integer pid/tid, microsecond timestamps, and
    non-negative durations; metadata events carry their ``args.name``.
    The whole payload must also be JSON-serializable.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be a JSON array"]
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        errors.append(f"payload is not JSON-serializable: {exc}")
    known_phases = {"X", "M", "i", "I", "C", "B", "E"}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where} must be an object")
            continue
        ph = event.get("ph")
        if ph not in known_phases:
            errors.append(f"{where}.ph {ph!r} is not one of {sorted(known_phases)}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}.name must be a non-empty string")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                errors.append(f"{where}.{key} must be an int")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}.args must be an object")
        if ph == "M":
            if event.get("name") in ("process_name", "thread_name") and (
                not isinstance(args, dict) or not isinstance(args.get("name"), str)
            ):
                errors.append(f"{where}: metadata event needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}.ts must be a number >= 0, got {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}.dur must be a number >= 0, got {dur!r}")
    return errors


def trace_run(run: "RunSpec") -> dict[str, Any]:
    """Run ``run`` instrumented and return its timeline payload.

    A spec without an ``observability`` section is traced with default
    knobs (and a sampling cadence derived from nothing — spans and
    annotations only); the run itself goes through the same
    :func:`~repro.wsp.measure.measure_run` path as ``repro run``.
    """
    from dataclasses import replace

    from repro.api.spec import ObservabilitySpec
    from repro.wsp.measure import measure_run

    if run.observability is None:
        run = replace(run, observability=ObservabilitySpec(enabled=True))
    collector = ObsCollector(run.observability)
    measure_run(run, obs=collector)
    return chrome_trace(collector, title=f"seed{run.seed} {run.spec_hash[:12]}")
