"""Unit helpers and constants used throughout the reproduction.

All internal computation uses SI base units: **bytes** for sizes,
**seconds** for durations, **bytes/second** for bandwidth and **FLOP/s**
for compute throughput.  The helpers here exist so that configuration
code can be written in the units the paper uses (GB, Gb/s, MHz, images/s)
without sprinkling conversion factors around.
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000
TERA = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

#: Bytes per model parameter (fp32 training, as in the paper's TF 1.12 setup).
BYTES_PER_PARAM = 4


def gb(value: float) -> float:
    """Decimal gigabytes to bytes (matches GPU marketing numbers)."""
    return value * GIGA


def gib(value: float) -> float:
    """Binary gibibytes to bytes."""
    return value * GIB


def mib(value: float) -> float:
    """Binary mebibytes to bytes."""
    return value * MIB


def mb(value: float) -> float:
    """Decimal megabytes to bytes."""
    return value * MEGA


def gbps(value: float) -> float:
    """Gigabits per second to bytes per second (network links)."""
    return value * GIGA / 8


def gb_per_s(value: float) -> float:
    """Gigabytes per second to bytes per second (PCIe, memory BW)."""
    return value * GIGA


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * MEGA


def tflops(value: float) -> float:
    """TeraFLOP/s to FLOP/s."""
    return value * TERA


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(548*MIB) == '548.0 MiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration, e.g. ``fmt_seconds(3672) == '1h 1m 12s'``."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h {minutes}m {secs}s"
    return f"{minutes}m {secs}s"
