"""Network contention on the paper cluster: dedicated vs shared fabric.

The dedicated model gives every PS stream and stage boundary a private
link, so a node's NIC is infinitely parallel; the shared fabric makes
the 16 PS push/pull streams and the activation traffic contend for four
NICs and one IB switch.  The gap between the two columns is the modeled
cost of the contention the paper's §7 communication model is about —
and the per-resource table shows the IB fabric as the saturated
resource, which is exactly why HetPipe bounds staleness instead of
synchronizing every minibatch.
"""

from conftest import run_once

from repro.experiments import run_netsim
from repro.experiments.report import format_table


def test_bench_netsim_vgg19(benchmark, show):
    result = run_once(
        benchmark,
        lambda: run_netsim(model_name="vgg19", allocation="ED", nm=2, top=6),
    )
    show(result.render())
    assert result.dedicated_throughput > 0
    assert result.shared_throughput > 0
    # contention can only cost throughput on a multi-node deployment
    assert result.shared_throughput <= result.dedicated_throughput
    assert result.slowdown >= 1.0
    # the scarce resource must be network-side (NIC or IB), not PCIe
    hottest = result.resources[0]
    assert hottest[1] in ("nic", "ib_fabric")
    assert result.queue_delay_total > 0


def test_bench_netsim_profiles(benchmark, show):
    """The modern-stack profile relieves the IB bottleneck."""

    def run_both():
        return {
            profile: run_netsim(
                model_name="resnet152", allocation="ED", nm=2, top=4, profile=profile
            )
            for profile in ("grpc_tf112", "nccl_modern")
        }

    results = run_once(benchmark, run_both)
    show(
        format_table(
            ["profile", "dedicated img/s", "shared img/s", "slowdown"],
            [
                (
                    profile,
                    f"{r.dedicated_throughput:.1f}",
                    f"{r.shared_throughput:.1f}",
                    f"{r.slowdown:.2f}x",
                )
                for profile, r in results.items()
            ],
            title="netsim — calibration profiles on VRGQ (ED, Nm=2)",
        )
    )
    old, new = results["grpc_tf112"], results["nccl_modern"]
    assert new.shared_throughput > old.shared_throughput
    assert new.slowdown <= old.slowdown
