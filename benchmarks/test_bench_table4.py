"""Table 4 regeneration: throughput while adding whimpy GPUs."""

from conftest import run_once

from repro.experiments import run_table4


def test_bench_table4_vgg19(benchmark, show):
    result = run_once(benchmark, lambda: run_table4("vgg19"))
    show(result.render())
    assert result.speedup_from_whimpy() > 1.4  # paper: up to 2.3x


def test_bench_table4_resnet152(benchmark, show):
    result = run_once(benchmark, lambda: run_table4("resnet152"))
    show(result.render())
    assert result.row("VRQG").horovod is None  # the paper's X
    assert result.speedup_from_whimpy() > 1.8
