"""Figure 6 regeneration: VGG-19 accuracy vs time across D."""

from conftest import run_once

from repro.experiments import run_fig6
from repro.experiments.report import ascii_curve


def test_bench_fig6_vgg_convergence(benchmark, show):
    result = run_once(benchmark, run_fig6)
    show(result.render())
    for label, run in result.runs.items():
        show(ascii_curve([(t, a) for t, _, a in run.curve], width=60, height=10, label=label))
    horovod = result.runs["Horovod"]
    d0, d4, d32 = result.runs["D=0"], result.runs["D=4"], result.runs["D=32"]
    assert d0.speedup_vs(horovod) > 0.15  # paper: 0.29
    assert d4.mean_time_to_target < d0.mean_time_to_target  # paper: 28% faster
    # D=32 saves no further time and staleness grows (paper: 4.7% worse)
    assert d32.mean_time_to_target >= d4.mean_time_to_target * 0.999
