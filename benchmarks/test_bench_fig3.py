"""Figure 3 regeneration: single-VW throughput & utilization vs Nm."""

from conftest import run_once

from repro.experiments import run_fig3


def test_bench_fig3_vgg19(benchmark, show):
    result = run_once(benchmark, lambda: run_fig3("vgg19"))
    show(result.render())
    assert result.nm1_throughput("VVVV") > result.nm1_throughput("QQQQ")


def test_bench_fig3_resnet152(benchmark, show):
    result = run_once(benchmark, lambda: run_fig3("resnet152"))
    show(result.render())
    rates = [result.nm1_throughput(m) for m in ("VVVV", "RRRR", "GGGG", "QQQQ")]
    assert rates == sorted(rates, reverse=True)
