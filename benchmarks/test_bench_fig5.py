"""Figure 5 regeneration: ResNet-152 accuracy vs time (12 vs 16 GPUs)."""

from conftest import run_once

from repro.experiments import run_fig5
from repro.experiments.report import ascii_curve


def test_bench_fig5_resnet_convergence(benchmark, show):
    result = run_once(benchmark, run_fig5)
    show(result.render())
    for label, run in result.runs.items():
        show(ascii_curve([(t, a) for t, _, a in run.curve], width=60, height=10, label=label))
    horovod = result.runs["Horovod-12"]
    assert result.runs["HetPipe-12"].speedup_vs(horovod) > 0.15  # paper: 0.35
    assert result.runs["HetPipe-16"].speedup_vs(horovod) > 0.25  # paper: 0.39
