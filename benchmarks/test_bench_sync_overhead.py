"""§8.4 regeneration: waiting/idle time vs D."""

from conftest import run_once

from repro.experiments import run_sync_overhead


def test_bench_sync_overhead_vgg19(benchmark, show):
    result = run_once(benchmark, lambda: run_sync_overhead("vgg19"))
    show(result.render())
    # paper: waiting at D=4 ~ 62% of D=0; idle a small fraction of waiting
    assert result.row(4).wait_ratio_vs_d0 < 0.8
    assert result.row(4).idle_fraction <= 0.25
    assert result.row(4).throughput >= result.row(0).throughput


def test_bench_sync_overhead_resnet152(benchmark, show):
    result = run_once(benchmark, lambda: run_sync_overhead("resnet152"))
    show(result.render())
    assert result.row(4).wait_per_wave <= result.row(0).wait_per_wave
