"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures end to
end (cluster -> planner -> simulators -> report) and prints the rows
next to the paper's values, bypassing pytest's capture so the output
lands in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show(capsys):
    """Print through pytest's capture (benchmarks report their tables)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn):
    """Time one full regeneration of a table/figure (deterministic, so a
    single round is meaningful)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
