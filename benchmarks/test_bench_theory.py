"""Theorem 1 empirically: regret of WSP on a convex objective."""

from conftest import run_once

from repro.experiments.report import format_table
from repro.training import measure_regret
from repro.training.nn import make_convex_problem


def test_bench_theorem1_regret(benchmark, show):
    measurement = run_once(
        benchmark,
        lambda: measure_regret(
            make_convex_problem(),
            num_virtual_workers=4,
            nm=4,
            d=2,
            total_minibatches=2400,
        ),
    )
    rows = [
        (t, r, b)
        for t, r, b in zip(
            measurement.t_values, measurement.regrets, measurement.bound_values
        )
    ]
    show(
        format_table(
            ["T", "measured regret", "Theorem-1 bound"],
            rows,
            title=(
                f"Theorem 1 — regret on a convex objective "
                f"(s_local={measurement.s_local}, s_global={measurement.s_global}, "
                f"N={measurement.n_workers})"
            ),
        )
    )
    assert measurement.regrets[-1] < measurement.regrets[0]
    assert all(r <= b for r, b in zip(measurement.regrets, measurement.bound_values))
