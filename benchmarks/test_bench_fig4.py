"""Figure 4 regeneration: Horovod vs NP/ED/ED-local/HD at D=0."""

from conftest import run_once

from repro.experiments import run_fig4


def test_bench_fig4_vgg19(benchmark, show):
    result = run_once(benchmark, lambda: run_fig4("vgg19"))
    show(result.render())
    # headline: ED-local decisively beats Horovod for the 548-MiB model
    assert result.bar("ED-local").throughput > 1.4 * result.bar("Horovod").throughput


def test_bench_fig4_resnet152(benchmark, show):
    result = run_once(benchmark, lambda: run_fig4("resnet152"))
    show(result.render())
    assert result.bar("Horovod").gpus == 12  # G GPUs unusable for DP
    assert result.bar("ED-local").throughput > result.bar("Horovod").throughput
