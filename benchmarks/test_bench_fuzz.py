"""Fuzz harness throughput: scenarios checked per second, oracle overhead.

Two numbers matter for the harness's viability as an always-on CI gate:
how fast a seed batch runs (it must stay in smoke-test territory) and
what the invariant oracles cost on top of an unchecked run.
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.scenarios import generate_scenario, run_fuzz
from repro.sim.invariants import default_oracles
from repro.sim.trace import Trace
from repro.wsp.runtime import HetPipeRuntime

FUZZ_SEEDS = 25


def test_bench_fuzz_batch(benchmark, show):
    report = run_once(benchmark, lambda: run_fuzz(range(FUZZ_SEEDS)))
    rows = [
        (
            result.spec.seed,
            result.spec.describe().split(" ", 1)[1],
            f"{result.throughput:.0f}",
            result.events,
            "ok" if result.ok else "FAIL",
        )
        for result in report.results[:10]
    ]
    show(
        format_table(
            ["seed", "scenario", "img/s", "events", "verdict"],
            rows,
            title=f"fuzz — first 10 of {FUZZ_SEEDS} seeded scenarios (all oracle-checked)",
        )
    )
    assert len(report.results) == FUZZ_SEEDS
    assert report.total_violations == 0


def test_bench_oracle_overhead(benchmark, show):
    """One mid-size scenario with and without the oracle suite attached."""
    scenario = generate_scenario(3)
    spec = scenario.spec

    def run(oracles):
        runtime = HetPipeRuntime(
            scenario.cluster,
            scenario.model,
            list(scenario.plans),
            d=spec.d,
            placement=spec.placement,
            trace=Trace(enabled=True),
            push_every_minibatch=spec.push_every_minibatch,
            jitter=spec.jitter,
            oracles=oracles,
        )
        runtime.start()
        runtime.run_until_global_version(spec.warmup_waves + spec.measured_waves - 1)
        return runtime.sim.events_processed

    events_plain = run([])
    events_checked = run_once(benchmark, lambda: run(default_oracles()))
    show(
        format_table(
            ["mode", "events"],
            [("unchecked", events_plain), ("oracle-checked", events_checked)],
            title=f"oracle overhead — {spec.describe()}",
        )
    )
    # The oracles observe; they must not change the event sequence.
    assert events_checked == events_plain
