"""Design-choice ablations (DESIGN.md §6)."""

import pytest
from conftest import run_once

from repro.experiments import run_ablations


def test_bench_ablations_resnet152(benchmark, show):
    result = run_once(benchmark, lambda: run_ablations("resnet152"))
    show(result.render())

    push = result.values("push-granularity-traffic")
    assert push["per-minibatch"] > 2 * push["per-wave"]  # WSP's saving

    ordering = result.values("gpu-ordering")
    assert ordering["searched"] >= ordering["natural"]  # our extension

    style = result.values("pipeline-style")
    assert style["hetpipe-continuous"] > style["gpipe-flush"]  # §2.3
    # 1F1B changes dispatch order, not steady-state rate, on this plan
    assert style["pipedream-1f1b"] == pytest.approx(style["hetpipe-continuous"], rel=0.15)

    recompute = result.values("recompute-maxm")
    assert recompute["on"] > recompute["off"]  # smaller stashes -> deeper pipe

    d_sweep = result.values("np-d-sweep")
    assert d_sweep["D=4"] > d_sweep["D=0"]  # staleness absorbs stragglers


def test_bench_ablations_vgg19(benchmark, show):
    result = run_once(benchmark, lambda: run_ablations("vgg19"))
    show(result.render())
    style = result.values("pipeline-style")
    assert style["hetpipe-continuous"] > style["gpipe-flush"]
