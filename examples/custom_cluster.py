"""Bring your own hardware: HetPipe planning on a user-defined cluster.

Defines two GPU models that are NOT in the paper (an 'A6000-like' big
card and a 'laptop-class' small one), builds a 3-node cluster out of
them, and walks the full HetPipe pipeline: feasibility, allocation,
Nm selection, partitioning, and end-to-end measurement — everything a
user with their own heterogeneous machines would do.

Run:  python examples/custom_cluster.py
"""

from repro import (
    GPUSpec,
    InterconnectSpec,
    Node,
    build_resnet152,
    measure_hetpipe,
    measure_horovod,
    max_feasible_nm,
    plan_virtual_worker,
)
from repro.allocation import equal_distribution
from repro.cluster.topology import Cluster
from repro.errors import MemoryCapacityError
from repro.units import gb, gb_per_s, gbps, us

BIG = GPUSpec(
    name="BigCard 48G",
    code="B",
    architecture="Custom",
    cuda_cores=10752,
    boost_clock_mhz=1800,
    memory_bytes=gb(48),
    memory_bandwidth=gb_per_s(768),
)

SMALL = GPUSpec(
    name="LaptopCard 4G",
    code="S",
    architecture="Custom",
    cuda_cores=1280,
    boost_clock_mhz=1500,
    memory_bytes=gb(4),
    memory_bandwidth=gb_per_s(192),
)


def main() -> None:
    interconnect = InterconnectSpec(
        ib_bandwidth=gbps(100), ib_scale=0.3, ib_latency=us(80)  # newer fabric
    )
    cluster = Cluster(
        [
            Node(node_id=0, gpu_spec=BIG, gpu_count=2),
            Node(node_id=1, gpu_spec=SMALL, gpu_count=2),
            Node(node_id=2, gpu_spec=SMALL, gpu_count=2),
        ],
        interconnect,
    )
    model = build_resnet152()
    print(f"cluster: {cluster}")
    print(f"model:   {model.summary()}\n")

    print("Horovod feasibility:")
    try:
        horovod = measure_horovod(cluster, model)
        print(
            f"  runs on {horovod.num_gpus}/{len(cluster.gpus)} GPUs "
            f"({horovod.excluded_gpus} excluded): {horovod.throughput:.0f} images/s"
        )
    except MemoryCapacityError as exc:
        print(f"  impossible: {exc}")

    # Two virtual workers, each B + S + S (one GPU per node).
    assignment = equal_distribution(cluster)
    print(f"\nallocation {assignment.describe()}")

    cap = min(
        max_feasible_nm(model, vw, interconnect, search_orderings=False)
        for vw in assignment.virtual_workers
    )
    nm = min(cap, 4)
    print(f"Maxm across virtual workers: {cap}; using Nm={nm}")

    plans = [
        plan_virtual_worker(model, vw, nm, interconnect, search_orderings=False)
        for vw in assignment.virtual_workers
    ]
    print(plans[0].describe())

    metrics = measure_hetpipe(cluster, model, plans, d=1, placement="local")
    print(
        f"\nHetPipe on the custom cluster: {metrics.throughput:.0f} images/s "
        f"({metrics.num_virtual_workers} VWs, D={metrics.d})"
    )


if __name__ == "__main__":
    main()
