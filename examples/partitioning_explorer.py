"""Inside the partitioner: how layer assignment reacts to hardware.

Shows, for one heterogeneous virtual worker (one GPU of each type):

* how the min-max partition shifts as the pipeline depth Nm grows (the
  memory constraint tightens on early stages, §4);
* what the GPU-ordering search (our extension over the paper's fixed
  order) buys;
* the per-stage period/memory table a systems person would read before
  deploying.

Run:  python examples/partitioning_explorer.py
"""

from repro import build_resnet152, paper_cluster, plan_virtual_worker
from repro.pipeline import measure_pipeline, render_timeline
from repro.pipeline.tasks import CountingGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim import Simulator, Trace
from repro.units import fmt_bytes


def main() -> None:
    cluster = paper_cluster()
    model = build_resnet152()
    vw = [cluster.gpus[0], cluster.gpus[4], cluster.gpus[8], cluster.gpus[12]]
    print(f"virtual worker: {' '.join(str(g) for g in vw)}")
    print(f"model: {model.summary()}\n")

    print("=== partition vs pipeline depth (natural order V-R-G-Q) ===")
    for nm in (1, 3, 5, 7):
        plan = plan_virtual_worker(
            model, vw, nm, cluster.interconnect, search_orderings=False
        )
        layers = [s.layer_count for s in plan.stages]
        periods = [f"{s.period * 1e3:5.1f}" for s in plan.stages]
        print(
            f"Nm={nm}:  layers/stage={layers}  period(ms)={periods}  "
            f"bottleneck={plan.bottleneck_period * 1e3:.1f}ms"
        )

    print("\n=== stage detail at Nm=5 ===")
    plan = plan_virtual_worker(model, vw, 5, cluster.interconnect, search_orderings=False)
    for stage in plan.stages:
        print(
            f"  stage{stage.index} {stage.gpu.spec.name:<16} "
            f"layers[{stage.start:2d},{stage.stop:2d})  "
            f"fwd {stage.fwd_compute * 1e3:5.1f}ms  bwd {stage.bwd_compute * 1e3:5.1f}ms  "
            f"comm-in {stage.fwd_comm_in * 1e3:5.1f}ms  "
            f"mem {fmt_bytes(stage.memory_bytes)} (m={stage.in_flight})"
        )

    print("\n=== GPU ordering: the paper's fixed order vs searched ===")
    for label, search in (("natural V-R-G-Q", False), ("searched", True)):
        plan = plan_virtual_worker(
            model, vw, 5, cluster.interconnect, search_orderings=search
        )
        metrics = measure_pipeline(plan, cluster.interconnect, model.batch_size)
        order = "-".join(s.gpu.code for s in plan.stages)
        print(
            f"  {label:<16} order={order}  "
            f"bottleneck={plan.bottleneck_period * 1e3:5.1f}ms  "
            f"measured {metrics.throughput:5.0f} images/s"
        )

    print("\n=== the pipeline, live (Figure 1 of the paper) ===")
    plan = plan_virtual_worker(model, vw, 4, cluster.interconnect, search_orderings=False)
    sim = Simulator()
    trace = Trace()
    pipeline = VirtualWorkerPipeline(
        sim, plan, cluster.interconnect, gate=CountingGate(limit=12), trace=trace
    )
    pipeline.start()
    sim.run_until_idle()
    print(render_timeline(trace, plan, width=96))


if __name__ == "__main__":
    main()
