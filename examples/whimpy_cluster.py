"""The paper's motivating scenario: making retired 'whimpy' GPUs useful.

Act 1 — ResNet-152 is too large for a 6 GB RTX 2060: data parallelism
on a node of them is *impossible* (the paper's Table 4 'X').

Act 2 — the same four whimpy GPUs, aggregated into one HetPipe virtual
worker, train the model.

Act 3 — attach the whimpy node to your shiny TITAN V node and
throughput keeps climbing (Table 4's story: 'making use of the earlier
whimpy systems allows for faster training of larger models').

Run:  python examples/whimpy_cluster.py
"""

from repro import (
    MemoryCapacityError,
    allocate,
    build_resnet152,
    max_feasible_nm,
    measure_hetpipe,
    measure_horovod,
    measure_pipeline,
    paper_cluster,
    plan_virtual_worker,
    single_type_cluster,
)


def main() -> None:
    model = build_resnet152()
    print(f"model: {model.summary()}\n")

    # --- Act 1: DP on whimpy GPUs is impossible -----------------------
    whimpy = single_type_cluster("G")  # 4x GeForce RTX 2060 (6 GB)
    print("Act 1: Horovod on four RTX 2060s?")
    try:
        measure_horovod(whimpy, model)
    except MemoryCapacityError as exc:
        print(f"  -> impossible: {exc}\n")

    # --- Act 2: aggregate them into a virtual worker ------------------
    print("Act 2: one HetPipe virtual worker over the same four GPUs")
    plan = plan_virtual_worker(
        model, whimpy.gpus, 2, whimpy.interconnect, search_orderings=False
    )
    metrics = measure_pipeline(plan, whimpy.interconnect, model.batch_size)
    print(f"  -> {metrics.throughput:.0f} images/s  "
          f"(stages: {[s.layer_count for s in plan.stages]} layers, Nm={plan.nm})\n")

    # --- Act 3: whimpy GPUs accelerate a high-end node ----------------
    print("Act 3: scaling by attaching ever-whimpier nodes (ED policy)")
    for codes in ("V", "VG", "VQG"):
        cluster = paper_cluster(codes)
        assignment = (
            allocate(cluster, "NP") if len(cluster.nodes) == 1 else allocate(cluster, "ED")
        )
        # deep enough to keep every pipeline stage busy, within memory
        cap = min(
            max_feasible_nm(model, vw, cluster.interconnect, search_orderings=False)
            for vw in assignment.virtual_workers
        )
        nm = min(cap, len(assignment.virtual_workers[0]) + 2)
        plans = [
            plan_virtual_worker(model, vw, nm, cluster.interconnect, search_orderings=False)
            for vw in assignment.virtual_workers
        ]
        metrics = measure_hetpipe(cluster, model, plans, d=0, placement="local")
        print(
            f"  {len(cluster.gpus):2d} GPUs [{codes:<3}]  "
            f"{metrics.throughput:6.0f} images/s  "
            f"({assignment.num_virtual_workers} virtual workers x Nm={nm})"
        )


if __name__ == "__main__":
    main()
