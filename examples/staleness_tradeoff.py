"""The WSP staleness trade-off: what does D buy, and what does it cost?

Sweeps the global staleness bound D for HetPipe on the full cluster and
reports (a) system-side effects from the performance simulator —
throughput and time spent waiting for the global weights — and (b)
learning-side effects from real numpy SGD executed under the exact WSP
semantics in virtual time: accuracy reached per wall-clock second.

This is the machinery behind Figure 6 and the §8.4 analysis.

Run:  python examples/staleness_tradeoff.py
"""

from repro import (
    allocate,
    build_vgg19,
    measure_hetpipe,
    paper_cluster,
    plan_virtual_worker,
)
from repro.training import WSPTrainer, WSPTrainingConfig, summarize
from repro.training.nn import make_classification


def main() -> None:
    cluster = paper_cluster()
    model = build_vgg19()
    assignment = allocate(cluster, "ED")
    plans = [
        plan_virtual_worker(model, vw, 4, cluster.interconnect, search_orderings=False)
        for vw in assignment.virtual_workers
    ]
    dataset = make_classification()
    dims = [dataset.feature_dim, 64, 32, dataset.num_classes]

    print(f"{'D':>3}  {'img/s':>6}  {'wait/wave':>10}  {'acc@end':>8}  {'t2a(0.65)':>9}")
    for d in (0, 1, 4, 16, 32):
        # system side: throughput and waiting, with compute jitter
        perf = measure_hetpipe(
            cluster, model, plans, d=d, placement="local", jitter=0.08,
            warmup_waves=3, measured_waves=10,
        )
        intervals = tuple(
            perf.window / done for done in perf.per_vw_minibatches
        )
        # learning side: real SGD at that pace under WSP semantics
        trainer = WSPTrainer(
            WSPTrainingConfig(
                num_virtual_workers=len(plans), nm=4, d=d, lr=0.01,
                minibatch_interval=intervals, jitter=0.12, stall_prob=0.005,
                seed=7,
            ),
            dataset,
            dims,
        )
        curve = trainer.train(max_minibatches=20000, eval_every=400)
        result = summarize(f"D={d}", curve, target=0.65, window=7)
        t2a = "never" if not result.reached else f"{result.time_to_target:7.0f}s"
        print(
            f"{d:>3}  {perf.throughput:6.0f}  {perf.avg_wait_per_wave * 1e3:8.0f}ms"
            f"  {result.final_accuracy:8.3f}  {t2a:>9}"
        )
    print(
        "\nsmall D: tight sync, more waiting; huge D: no waiting but stale"
        "\ngradients slow learning — the sweet spot is a small positive D (§8.4)."
    )


if __name__ == "__main__":
    main()
