"""Quickstart: train a large DNN on a heterogeneous cluster with HetPipe.

Builds the paper's 16-GPU testbed, partitions VGG-19 into four virtual
workers with the ED policy, runs the full WSP system (pipelines +
parameter server) and compares against the Horovod baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    allocate,
    build_vgg19,
    measure_hetpipe,
    measure_horovod,
    paper_cluster,
    plan_virtual_worker,
)
from repro.units import mib


def main() -> None:
    # 1. The cluster: 4 nodes x 4 GPUs (TITAN V / TITAN RTX / RTX 2060 /
    #    Quadro P4000), PCIe inside nodes, 56 Gb/s InfiniBand between.
    cluster = paper_cluster()
    print(f"cluster: {cluster}")

    # 2. The workload: VGG-19 at batch 32 (548 MiB of parameters).
    model = build_vgg19()
    print(f"model:   {model.summary()}\n")

    # 3. Carve the cluster into virtual workers: ED gives four identical
    #    workers holding one GPU of each type.
    assignment = allocate(cluster, "ED")
    print(f"allocation {assignment.describe()}")

    # 4. Partition the model into one stage per GPU, Nm = 4 concurrent
    #    minibatches per worker (the min-max partitioner handles the
    #    heterogeneous speeds and memory sizes).
    plans = [
        plan_virtual_worker(model, vw, 4, cluster.interconnect, search_orderings=False)
        for vw in assignment.virtual_workers
    ]
    for plan in plans[:1]:
        print(plan.describe())
    print()

    # 5. Run HetPipe: pipelined model parallelism inside each worker,
    #    WSP data parallelism across them (D = 0, local placement).
    metrics = measure_hetpipe(cluster, model, plans, d=0, placement="local")
    print(
        f"HetPipe (ED-local, D=0): {metrics.throughput:7.1f} images/s   "
        f"sync cross-node: {metrics.sync_cross_node_bytes_per_wave / mib(1):.0f} MiB/wave"
    )

    # 6. The baseline: Horovod BSP, one whole-model replica per GPU.
    horovod = measure_horovod(cluster, model)
    print(
        f"Horovod  ({horovod.num_gpus} GPUs):      {horovod.throughput:7.1f} images/s   "
        f"allreduce: {horovod.allreduce_time * 1e3:.0f} ms/iteration"
    )
    print(f"\nHetPipe speedup: {metrics.throughput / horovod.throughput:.2f}x")


if __name__ == "__main__":
    main()
