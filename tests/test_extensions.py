"""Extensions beyond the paper's core: 1F1B dispatch, activation
recomputation, and the timeline renderer."""

import pytest

from repro.cluster import paper_cluster
from repro.errors import SimulationError
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.partition import max_feasible_nm, plan_virtual_worker
from repro.pipeline import (
    OneFOneBPipeline,
    measure_1f1b_pipeline,
    measure_pipeline,
    render_timeline,
)
from repro.pipeline.tasks import CountingGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim import Simulator, Trace


class TestOneFOneB:
    def test_completes_all_minibatches(self, vvvv_plan, cluster):
        sim = Simulator()
        pipeline = OneFOneBPipeline(sim, vvvv_plan, cluster.interconnect, limit=20)
        pipeline.start()
        sim.run_until_idle()
        assert pipeline.completed == 20
        assert sorted(pipeline.done_times) == list(range(1, 21))

    def test_completions_in_order(self, vvvv_plan, cluster):
        sim = Simulator()
        pipeline = OneFOneBPipeline(sim, vvvv_plan, cluster.interconnect, limit=15)
        pipeline.start()
        sim.run_until_idle()
        times = [pipeline.done_times[p] for p in range(1, 16)]
        assert times == sorted(times)

    def test_double_start_rejected(self, vvvv_plan, cluster):
        sim = Simulator()
        pipeline = OneFOneBPipeline(sim, vvvv_plan, cluster.interconnect, limit=5)
        pipeline.start()
        with pytest.raises(SimulationError):
            pipeline.start()

    def test_throughput_close_to_fifo_on_balanced_plan(self, vvvv_plan, cluster):
        """On a balanced homogeneous partition, 1F1B and FIFO dispatch
        should deliver comparable steady-state throughput (PipeDream's
        gain is memory discipline, not raw rate)."""
        fifo = measure_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=30
        ).throughput
        one_f = measure_1f1b_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=30
        )
        assert one_f == pytest.approx(fifo, rel=0.15)

    def test_heterogeneous_plan(self, ed_plan, cluster):
        rate = measure_1f1b_pipeline(ed_plan, cluster.interconnect, 32, measured_minibatches=20)
        assert rate > 0


class TestActivationRecompute:
    def test_recompute_raises_maxm(self, resnet152, cluster):
        vw = cluster.gpus[8:12]  # the 6-GB G node — memory-starved
        base = max_feasible_nm(
            resnet152, vw, cluster.interconnect, DEFAULT_CALIBRATION,
            search_orderings=False,
        )
        recompute = max_feasible_nm(
            resnet152, vw, cluster.interconnect,
            DEFAULT_CALIBRATION.with_overrides(activation_recompute=True),
            search_orderings=False,
        )
        assert recompute > base

    def test_recompute_slows_backward(self, resnet152, cluster):
        from repro.models.profiler import Profiler

        base = Profiler(DEFAULT_CALIBRATION)
        recompute = Profiler(DEFAULT_CALIBRATION.with_overrides(activation_recompute=True))
        spec = cluster.gpus[0].spec
        t_base = base.serial_minibatch_time(resnet152, spec)
        t_recompute = recompute.serial_minibatch_time(resnet152, spec)
        # backward re-runs forward: total grows by roughly the fwd share
        assert t_recompute > 1.2 * t_base

    def test_recompute_shrinks_stage_memory(self, resnet152):
        from repro.models.memory import stage_memory_bytes

        layers = resnet152.layers[:10]
        base = stage_memory_bytes(layers, 4, DEFAULT_CALIBRATION)
        small = stage_memory_bytes(
            layers, 4, DEFAULT_CALIBRATION.with_overrides(activation_recompute=True)
        )
        assert small < base


class TestTimeline:
    def _run_with_trace(self, plan, cluster, total=10):
        sim = Simulator()
        trace = Trace()
        pipeline = VirtualWorkerPipeline(
            sim, plan, cluster.interconnect, gate=CountingGate(limit=total), trace=trace
        )
        pipeline.start()
        sim.run_until_idle()
        return trace

    def test_renders_one_row_per_stage(self, vvvv_plan, cluster):
        trace = self._run_with_trace(vvvv_plan, cluster)
        text = render_timeline(trace, vvvv_plan, width=60)
        lines = text.splitlines()
        assert len(lines) == 1 + vvvv_plan.k
        assert all(line.startswith("GPU") for line in lines[1:])

    def test_contains_forward_and_fused_glyphs(self, vvvv_plan, cluster):
        trace = self._run_with_trace(vvvv_plan, cluster)
        text = render_timeline(trace, vvvv_plan, width=80)
        assert "X" in text  # fused last stage
        assert any(d in text for d in "0123456789")
        assert any(b in text for b in "abcdefghij")

    def test_first_stage_starts_before_last(self, vvvv_plan, cluster):
        trace = self._run_with_trace(vvvv_plan, cluster)
        text = render_timeline(trace, vvvv_plan, width=80)
        rows = [line.split("|")[1] for line in text.splitlines()[1:]]
        first_busy = [len(row) - len(row.lstrip(".")) for row in rows]
        assert first_busy[0] <= first_busy[-1]

    def test_empty_trace(self, vvvv_plan):
        assert render_timeline(Trace(), vvvv_plan) == "(empty trace)"

    def test_until_truncates(self, vvvv_plan, cluster):
        trace = self._run_with_trace(vvvv_plan, cluster)
        full = render_timeline(trace, vvvv_plan, width=60)
        half = render_timeline(trace, vvvv_plan, width=60, until=trace.records[-1].time / 2)
        assert full != half
