"""VGG / ResNet builders: parameter counts, FLOPs, chain structure.

Parameter counts are checked against the published values, which are
also what the paper quotes (548 MB VGG-19, 230 MB ResNet-152 — MiB in
fact, as the arithmetic shows).
"""

import pytest

from repro.errors import ConfigurationError
from repro.models import build_resnet50, build_resnet101, build_resnet152, build_vgg16, build_vgg19
from repro.models.graph import validate_chain
from repro.models.vgg import _build_vgg
from repro.models.resnet import _build_resnet


class TestVGG19:
    def test_param_count_exact(self, vgg19):
        assert vgg19.params == 143_667_240  # torchvision vgg19

    def test_param_mib_matches_paper_548(self, vgg19):
        assert vgg19.param_mib == pytest.approx(548, abs=1)

    def test_gflops_per_image(self, vgg19):
        # ~19.6 GMACs/image -> ~39.3 GFLOPs forward
        per_image = vgg19.flops_fwd / vgg19.batch_size / 1e9
        assert 38 < per_image < 41

    def test_unit_count(self, vgg19):
        # 16 convs + 5 pools + 3 fcs
        assert len(vgg19) == 24

    def test_boundary_shrinks_after_pool(self, vgg19):
        names = vgg19.names()
        i = names.index("pool1")
        assert vgg19.boundary_bytes(i) < vgg19.boundary_bytes(i - 1)

    def test_input_bytes(self, vgg19):
        assert vgg19.input_bytes == 32 * 3 * 224 * 224 * 4

    def test_fc_layers_hold_most_params(self, vgg19):
        fc_bytes = sum(l.param_bytes for l in vgg19.layers if l.kind == "fc")
        assert fc_bytes / vgg19.param_bytes > 0.85


class TestVGG16:
    def test_param_count_exact(self):
        assert build_vgg16().params == 138_357_544  # torchvision vgg16

    def test_fewer_units_than_vgg19(self, vgg19):
        assert len(build_vgg16()) == len(vgg19) - 3


class TestResNet152:
    def test_param_count_exact(self, resnet152):
        assert resnet152.params == 60_192_808  # conv+bn+fc params

    def test_param_mib_matches_paper_230(self, resnet152):
        assert resnet152.param_mib == pytest.approx(230, abs=1)

    def test_unit_count(self, resnet152):
        # stem + (3 + 8 + 36 + 3) blocks + avgpool + fc
        assert len(resnet152) == 53

    def test_gflops_per_image(self, resnet152):
        per_image = resnet152.flops_fwd / resnet152.batch_size / 1e9
        assert 21 < per_image < 25  # ~11.5 GMACs

    def test_every_block_is_composite(self, resnet152):
        blocks = [l for l in resnet152.layers if l.kind == "block"]
        assert len(blocks) == 50
        assert all(len(b.parts) >= 4 for b in blocks)

    def test_stage_output_channels(self, resnet152):
        # last block of conv5 outputs 7x7x2048
        block = [l for l in resnet152.layers if l.name.startswith("conv5_3")][0]
        assert block.output_bytes == 32 * 2048 * 7 * 7 * 4


class TestResNetVariants:
    def test_resnet50_params(self):
        assert build_resnet50().params == pytest.approx(25_557_032, rel=1e-3)

    def test_resnet101_params(self):
        assert build_resnet101().params == pytest.approx(44_549_160, rel=1e-3)

    def test_depth_ordering(self):
        p50 = build_resnet50().params
        p101 = build_resnet101().params
        p152 = build_resnet152().params
        assert p50 < p101 < p152


class TestBatchScaling:
    def test_with_batch_size_scales_flops_not_params(self, vgg19):
        small = vgg19.with_batch_size(8)
        assert small.flops_fwd == pytest.approx(vgg19.flops_fwd / 4)
        assert small.param_bytes == pytest.approx(vgg19.param_bytes)
        assert small.batch_size == 8

    def test_builders_accept_batch_size(self):
        model = build_vgg19(batch_size=16)
        assert model.batch_size == 16
        assert model.input_bytes == 16 * 3 * 224 * 224 * 4


class TestBuilderValidation:
    def test_unknown_vgg_variant(self):
        with pytest.raises(ConfigurationError):
            _build_vgg("vgg7", 32)

    def test_unknown_resnet_variant(self):
        with pytest.raises(ConfigurationError):
            _build_resnet("resnet34", 32)

    def test_duplicate_names_rejected(self, vgg19):
        with pytest.raises(ConfigurationError):
            validate_chain([vgg19.layers[0], vgg19.layers[0]])

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_chain([])


class TestModelGraphAPI:
    def test_summary_mentions_params(self, vgg19):
        assert "143.67M params" in vgg19.summary()

    def test_slice_params_total(self, resnet152):
        assert resnet152.slice_params(0, len(resnet152)) == pytest.approx(
            resnet152.param_bytes
        )

    def test_boundary_minus_one_is_input(self, vgg19):
        assert vgg19.boundary_bytes(-1) == vgg19.input_bytes

    def test_iteration(self, vgg19):
        assert len(list(vgg19)) == len(vgg19)
