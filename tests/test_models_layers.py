"""Layer unit accounting: FLOPs, params, activations, composites."""

import pytest

from repro.errors import ConfigurationError
from repro.models.layers import LayerSpec, composite, conv_unit, fc_unit, pool_unit
from repro.units import BYTES_PER_PARAM


class TestConvUnit:
    def test_flops_formula(self):
        # 3x3 conv, 64->128, 56x56 output, batch 2
        unit = conv_unit("c", 2, 64, 128, 3, 56, 56, with_relu=False)
        macs = 3 * 3 * 64 * 56 * 56 * 128 * 2
        assert unit.flops_fwd == pytest.approx(2 * macs)
        assert unit.flops_bwd == pytest.approx(4 * macs)

    def test_params_with_bias(self):
        unit = conv_unit("c", 1, 3, 64, 3, 224, 224)
        assert unit.params == 3 * 3 * 3 * 64 + 64  # VGG conv1_1 = 1792

    def test_params_without_bias_with_bn(self):
        unit = conv_unit("c", 1, 64, 64, 3, 56, 56, with_bn=True, bias=False)
        assert unit.params == 3 * 3 * 64 * 64 + 2 * 64

    def test_output_bytes(self):
        unit = conv_unit("c", 4, 3, 64, 3, 224, 224)
        assert unit.output_bytes == 4 * 64 * 224 * 224 * BYTES_PER_PARAM

    def test_strided_conv_stashes_larger_input(self):
        s1 = conv_unit("a", 1, 64, 64, 3, 56, 56)
        s2 = conv_unit("b", 1, 64, 64, 3, 56, 56, in_h=112, in_w=112)
        assert s2.stash_bytes > s1.stash_bytes

    def test_relu_adds_kernel_and_stash(self):
        plain = conv_unit("a", 1, 64, 64, 3, 56, 56, with_relu=False)
        fused = conv_unit("b", 1, 64, 64, 3, 56, 56, with_relu=True)
        assert fused.kernel_count == plain.kernel_count + 1
        assert fused.stash_bytes > plain.stash_bytes


class TestFcUnit:
    def test_flops_and_params(self):
        unit = fc_unit("fc", 8, 4096, 1000)
        assert unit.flops_fwd == pytest.approx(2 * 4096 * 1000 * 8)
        assert unit.params == 4096 * 1000 + 1000

    def test_vgg_fc6_size(self):
        unit = fc_unit("fc6", 32, 25088, 4096, with_relu=True, with_dropout=True)
        assert unit.params == 25088 * 4096 + 4096
        assert unit.kernel_count == 3


class TestPoolUnit:
    def test_no_params(self):
        unit = pool_unit("p", 32, 64, 112, 112)
        assert unit.param_bytes == 0.0

    def test_output_and_input(self):
        unit = pool_unit("p", 1, 64, 112, 112, kernel=2)
        assert unit.output_bytes == 64 * 112 * 112 * BYTES_PER_PARAM
        assert unit.stash_bytes == 4 * unit.output_bytes  # 2x2 inputs


class TestComposite:
    def _parts(self):
        return [
            conv_unit("a", 1, 64, 64, 1, 56, 56, with_bn=True, bias=False),
            conv_unit("b", 1, 64, 256, 1, 56, 56, with_bn=True, bias=False),
        ]

    def test_sums_flops_params_stash(self):
        parts = self._parts()
        block = composite("blk", "block", parts)
        assert block.flops_fwd == sum(p.flops_fwd for p in parts)
        assert block.param_bytes == sum(p.param_bytes for p in parts)
        assert block.stash_bytes == sum(p.stash_bytes for p in parts)
        assert block.kernel_count == sum(p.kernel_count for p in parts)

    def test_output_is_last_part(self):
        parts = self._parts()
        block = composite("blk", "block", parts)
        assert block.output_bytes == parts[-1].output_bytes

    def test_output_override(self):
        block = composite("blk", "block", self._parts(), output_bytes=123.0)
        assert block.output_bytes == 123.0

    def test_keeps_parts(self):
        block = composite("blk", "block", self._parts())
        assert len(block.parts) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            composite("blk", "block", [])


class TestLayerSpecValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerSpec("x", "conv", -1.0, 1.0, 0.0, 1.0, 1.0)

    def test_zero_kernels_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerSpec("x", "conv", 1.0, 1.0, 0.0, 1.0, 1.0, kernel_count=0)

    def test_scaled_batch(self):
        unit = conv_unit("c", 2, 3, 8, 3, 10, 10)
        doubled = unit.scaled(2.0)
        assert doubled.flops_fwd == pytest.approx(2 * unit.flops_fwd)
        assert doubled.output_bytes == pytest.approx(2 * unit.output_bytes)
        assert doubled.param_bytes == unit.param_bytes  # params batch-free

    def test_total_flops(self):
        unit = conv_unit("c", 1, 3, 8, 3, 10, 10)
        assert unit.total_flops == unit.flops_fwd + unit.flops_bwd
