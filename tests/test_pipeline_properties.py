"""Property-based tests of the pipeline engine on random chain models.

Hypothesis generates random layer chains, GPU mixes and pipeline
depths; the invariants must hold for all of them:

* every admitted minibatch completes, in order;
* per-GPU busy time equals the sum of executed task durations
  (work conservation — no lost or double-executed tasks);
* the staleness ledger respects ``s_local``;
* no stage ever holds more than ``Nm`` minibatches.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import paper_cluster
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec
from repro.partition import plan_virtual_worker
from repro.pipeline.tasks import CountingGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim import Simulator

CLUSTER = paper_cluster()


def chain_model(flops_list):
    layers = tuple(
        LayerSpec(
            name=f"l{i}",
            kind="conv",
            flops_fwd=f * 1e9,
            flops_bwd=1.5 * f * 1e9,
            param_bytes=5e5,
            output_bytes=2e6,
            stash_bytes=4e6,
        )
        for i, f in enumerate(flops_list)
    )
    return ModelGraph(name="chain", batch_size=32, input_bytes=2e6, layers=layers)


@st.composite
def pipeline_case(draw):
    length = draw(st.integers(min_value=4, max_value=12))
    flops = [draw(st.floats(min_value=0.5, max_value=30.0)) for _ in range(length)]
    k = draw(st.integers(min_value=2, max_value=4))
    nm = draw(st.integers(min_value=1, max_value=5))
    gpu_pick = draw(
        st.lists(st.sampled_from([0, 4, 8, 12]), min_size=k, max_size=k)
    )
    # distinct device per stage (same spec allowed via different slots)
    gpus = []
    used = set()
    for base in gpu_pick:
        gpu_id = base
        while gpu_id in used:
            gpu_id += 1
        used.add(gpu_id)
        gpus.append(CLUSTER.gpu(gpu_id))
    total = draw(st.integers(min_value=5, max_value=25))
    return chain_model(flops), gpus, nm, total


@settings(max_examples=25, deadline=None)
@given(case=pipeline_case())
def test_property_pipeline_invariants(case):
    model, gpus, nm, total = case
    plan = plan_virtual_worker(
        model, gpus, nm, CLUSTER.interconnect, search_orderings=False
    )
    sim = Simulator()
    pipeline = VirtualWorkerPipeline(
        sim, plan, CLUSTER.interconnect, gate=CountingGate(limit=total)
    )
    pipeline.start()
    sim.run_until_idle()

    # 1. everything admitted completes, in order
    assert pipeline.completed == total
    assert sorted(pipeline.done_times) == list(range(1, total + 1))
    done_times = [pipeline.done_times[p] for p in range(1, total + 1)]
    assert done_times == sorted(done_times)

    # 2. work conservation per stage
    for s, state in enumerate(pipeline.stages):
        stage = plan.stages[s]
        expected = total * (stage.fwd_compute + stage.bwd_compute)
        assert state.processor.busy_time == pytest.approx(expected)

    # 3. local staleness ledger
    slocal = nm - 1
    for p, seen in pipeline.staleness_ledger.items():
        assert seen >= p - 1 - slocal

    # 4. stash bound
    assert all(peak <= nm for peak in pipeline.peak_in_flight())

    # 5. completion no earlier than the theoretical minimum: the
    # busiest GPU must serially execute its compute for every minibatch
    compute_bottleneck = max(s.fwd_compute + s.bwd_compute for s in plan.stages)
    assert done_times[-1] >= compute_bottleneck * total * 0.999
