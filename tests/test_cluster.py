"""Cluster substrate: Table-1 specs, topology, link model."""

import pytest

from repro.cluster import (
    GPU_BY_CODE,
    InterconnectSpec,
    QUADRO_P4000,
    RTX_2060,
    TITAN_RTX,
    TITAN_V,
    paper_cluster,
    single_type_cluster,
)
from repro.cluster.gpu import GPUSpec
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.units import gb


class TestTable1Specs:
    """The four GPUs of Table 1, exactly as printed."""

    def test_titan_v(self):
        assert TITAN_V.cuda_cores == 5120
        assert TITAN_V.boost_clock_mhz == 1455
        assert TITAN_V.memory_bytes == gb(12)
        assert TITAN_V.architecture == "Volta"

    def test_titan_rtx(self):
        assert TITAN_RTX.cuda_cores == 4608
        assert TITAN_RTX.boost_clock_mhz == 1770
        assert TITAN_RTX.memory_bytes == gb(24)

    def test_rtx_2060(self):
        assert RTX_2060.cuda_cores == 1920
        assert RTX_2060.memory_bytes == gb(6)

    def test_quadro_p4000(self):
        assert QUADRO_P4000.cuda_cores == 1792
        assert QUADRO_P4000.memory_bytes == gb(8)

    def test_peak_flops_formula(self):
        assert TITAN_V.peak_flops == pytest.approx(5120 * 1455e6 * 2)

    def test_compute_power_order_is_v_r_g_q(self):
        """§8.1: 'in terms of computation power, V > R > G > Q'."""
        effective = [s.effective_flops for s in (TITAN_V, TITAN_RTX, RTX_2060, QUADRO_P4000)]
        assert effective == sorted(effective, reverse=True)

    def test_memory_order_is_r_v_q_g(self):
        """§8.1: 'in terms of the amount of GPU memory, R > V > Q > G'."""
        mem = [s.memory_bytes for s in (TITAN_RTX, TITAN_V, QUADRO_P4000, RTX_2060)]
        assert mem == sorted(mem, reverse=True)

    def test_codes(self):
        assert set(GPU_BY_CODE) == {"V", "R", "G", "Q"}


class TestSpecValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            GPUSpec("bad", "B", "x", 0, 1000, gb(1), gb(1))

    def test_rejects_long_code(self):
        with pytest.raises(ConfigurationError):
            GPUSpec("bad", "BB", "x", 100, 1000, gb(1), gb(1))

    def test_rejects_absurd_efficiency(self):
        with pytest.raises(ConfigurationError):
            GPUSpec("bad", "B", "x", 100, 1000, gb(1), gb(1), arch_efficiency=2.0)


class TestPaperCluster:
    def test_sixteen_gpus_four_nodes(self, cluster):
        assert len(cluster) == 16
        assert len(cluster.nodes) == 4
        assert cluster.codes() == "VVVVRRRRGGGGQQQQ"

    def test_gpu_ids_unique_and_ordered(self, cluster):
        assert [g.gpu_id for g in cluster.gpus] == list(range(16))

    def test_nodes_are_homogeneous(self, cluster):
        for node in cluster.nodes:
            assert len({g.code for g in node.gpus}) == 1

    def test_same_node_query(self, cluster):
        assert cluster.gpus[0].same_node(cluster.gpus[3])
        assert not cluster.gpus[0].same_node(cluster.gpus[4])

    def test_gpu_lookup(self, cluster):
        assert cluster.gpu(5).code == "R"

    def test_node_lookup(self, cluster):
        assert cluster.node(2).code == "G"
        with pytest.raises(ConfigurationError):
            cluster.node(99)

    def test_gpus_of_type(self, cluster):
        assert len(cluster.gpus_of_type("Q")) == 4

    def test_specs_in_first_appearance_order(self, cluster):
        assert [s.code for s in cluster.specs()] == ["V", "R", "G", "Q"]

    def test_subset(self, cluster):
        sub = cluster.subset([0, 4, 8])
        assert [g.code for g in sub] == ["V", "R", "G"]

    def test_table4_subsets(self):
        assert paper_cluster("VR").codes() == "VVVVRRRR"
        assert paper_cluster("V").codes() == "VVVV"

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_cluster("VX")

    def test_single_type_cluster(self):
        c = single_type_cluster("G", node_count=2)
        assert c.codes() == "GGGGGGGG"
        assert len(c.nodes) == 2


class TestInterconnect:
    def test_intra_node_uses_pcie(self, cluster):
        ic = cluster.interconnect
        bw, lat = ic.link_between(cluster.gpus[0], cluster.gpus[1])
        assert bw == ic.pcie_effective
        assert lat == ic.pcie_latency

    def test_inter_node_uses_ib(self, cluster):
        ic = cluster.interconnect
        bw, lat = ic.link_between(cluster.gpus[0], cluster.gpus[4])
        assert bw == ic.ib_effective
        assert lat == ic.ib_latency

    def test_pcie_faster_than_achieved_ib(self, cluster):
        ic = cluster.interconnect
        assert ic.pcie_effective > ic.ib_effective

    def test_transfer_time_zero_same_gpu(self, cluster):
        ic = cluster.interconnect
        assert ic.transfer_time(1e9, cluster.gpus[0], cluster.gpus[0]) == 0.0

    def test_transfer_time_formula(self, cluster):
        ic = cluster.interconnect
        t = ic.transfer_time(1e6, cluster.gpus[0], cluster.gpus[1])
        assert t == pytest.approx(ic.pcie_latency + 1e6 / ic.pcie_effective)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(pcie_scale=0.0)
        with pytest.raises(ConfigurationError):
            InterconnectSpec(ib_scale=1.5)


class TestNode:
    def test_standalone_node_self_populates(self):
        node = Node(node_id=7, gpu_spec=TITAN_V, gpu_count=2)
        assert len(node.gpus) == 2
        assert str(node) == "node7[Vx2]"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Node(node_id=0, gpu_spec=TITAN_V, gpu_count=0)
