"""Plan-cache correctness: memoized boundaries == fresh DP/BnB solves."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import paper_cluster
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec
from repro.partition import (
    clear_plan_cache,
    plan_cache_stats,
    plan_virtual_worker,
    solve_bnb,
)
from repro.partition.dp_solver import StageEvaluator, solve_boundaries
from repro.scenarios import generate_scenario


def _chain_model(flops, name="chain"):
    layers = tuple(
        LayerSpec(
            name=f"l{i}",
            kind="conv",
            flops_fwd=f * 1e9,
            flops_bwd=2 * f * 1e9,
            param_bytes=1e6,
            output_bytes=1e6,
            stash_bytes=2e6,
        )
        for i, f in enumerate(flops)
    )
    return ModelGraph(name=name, batch_size=32, input_bytes=1e6, layers=layers)


@given(
    flops=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=4, max_size=12),
    nm=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_cached_plan_identical_to_fresh_dp_and_bnb(flops, nm):
    """A warm-cache plan equals a cold solve, which equals BnB's optimum."""
    cluster = paper_cluster()
    model = _chain_model(flops)
    gpus = cluster.gpus[0:4]

    clear_plan_cache()
    cold = plan_virtual_worker(
        model, gpus, nm, cluster.interconnect, search_orderings=False
    )
    hits0, misses0, _ = plan_cache_stats()
    warm = plan_virtual_worker(
        model, gpus, nm, cluster.interconnect, search_orderings=False
    )
    hits1, misses1, _ = plan_cache_stats()
    assert (hits1, misses1) == (hits0 + 1, misses0), "second solve must hit"
    assert warm == cold

    # Fresh DP (no cache layer at all) and the independent BnB optimizer
    # agree with the cached result.
    evaluator = StageEvaluator(model, gpus, nm, cluster.interconnect, DEFAULT_CALIBRATION)
    boundaries = solve_boundaries(evaluator)
    assert boundaries is not None
    assert [s.start for s in cold.stages] + [cold.stages[-1].stop] == boundaries
    bnb_boundaries, bnb_best = solve_bnb(evaluator)
    assert bnb_boundaries is not None
    # DP and BnB accumulate stage periods in different orders, so agree
    # only to rounding (same tolerance the partitioner suite uses).
    assert cold.bottleneck_period == pytest.approx(bnb_best)


def test_cache_distinguishes_nm():
    """Plans at different depths must not alias in the cache."""
    cluster = paper_cluster()
    model = _chain_model([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    gpus = cluster.gpus[0:4]
    clear_plan_cache()
    plan1 = plan_virtual_worker(model, gpus, 1, cluster.interconnect, search_orderings=False)
    plan4 = plan_virtual_worker(model, gpus, 4, cluster.interconnect, search_orderings=False)
    assert plan1.nm == 1 and plan4.nm == 4
    assert plan1.stages[0].in_flight != plan4.stages[0].in_flight


def test_equal_ed_workers_share_boundaries_but_keep_their_gpus():
    """ED hands every worker the same GPU mix: one solve, N plans, each
    plan still carrying its own devices."""
    scenario = generate_scenario(1)
    plans = scenario.plans
    if len(plans) < 2:
        return  # the drawn scenario has a single worker; nothing to share
    for plan in plans[1:]:
        if [s.gpu.spec.code for s in plan.stages] == [
            s.gpu.spec.code for s in plans[0].stages
        ]:
            assert [(s.start, s.stop) for s in plan.stages] == [
                (s.start, s.stop) for s in plans[0].stages
            ]
    gpu_ids = [tuple(s.gpu.gpu_id for s in plan.stages) for plan in plans]
    assert len(set(gpu_ids)) == len(gpu_ids), "plans must keep distinct devices"
