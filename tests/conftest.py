"""Shared fixtures.

Heavy objects (models, clusters, profiles, plans) are session-scoped:
they are immutable value objects, so sharing them across tests is safe
and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.cluster import paper_cluster
from repro.models import build_resnet152, build_vgg19
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.models.profiler import Profiler
from repro.partition import plan_virtual_worker


@pytest.fixture(scope="session")
def cluster():
    return paper_cluster()

@pytest.fixture(scope="session")
def vgg19():
    return build_vgg19()


@pytest.fixture(scope="session")
def resnet152():
    return build_resnet152()


@pytest.fixture(scope="session")
def profiler():
    return Profiler(DEFAULT_CALIBRATION)


@pytest.fixture(scope="session")
def vvvv_plan(cluster, vgg19, profiler):
    """VGG-19 over the four TITAN Vs at Nm=4 (homogeneous, PCIe only)."""
    return plan_virtual_worker(
        vgg19, cluster.gpus[0:4], 4, cluster.interconnect,
        DEFAULT_CALIBRATION, profiler, search_orderings=False,
    )


@pytest.fixture(scope="session")
def ed_plan(cluster, resnet152, profiler):
    """ResNet-152 over one GPU of each type (heterogeneous, IB links)."""
    vw = [cluster.gpus[0], cluster.gpus[4], cluster.gpus[8], cluster.gpus[12]]
    return plan_virtual_worker(
        resnet152, vw, 4, cluster.interconnect,
        DEFAULT_CALIBRATION, profiler, search_orderings=False,
    )
