"""Spec-driven execution: registries, builds, run/sweep, CLI, shims.

Covers the API redesign's behavioral contracts:

* registry misses raise :class:`UnknownNameError` naming what exists,
  and the CLI maps that (and :class:`SpecError`) to exit code 2;
* a fuzz scenario run from its lifted ``RunSpec`` is byte-identical —
  digest included — to the legacy ``ScenarioSpec`` path;
* the deprecated direct-kwarg constructors still work, warn, and
  produce byte-identical digests to their spec-built equivalents;
* ``run_sweep`` returns in-order, ``--jobs``-independent results with
  stable per-point ``spec_hash`` values.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.api import build
from repro.api.build import (
    build_calibration,
    build_cluster,
    build_model,
    build_scenario,
    run_to_scenario_spec,
)
from repro.api.registry import (
    CALIBRATIONS,
    CLUSTERS,
    EXPERIMENTS,
    MODELS,
    ORACLES,
    PLANNERS,
    PROFILES,
    Registry,
)
from repro.api.run import run, run_sweep
from repro.api.spec import (
    ClusterSpec,
    ExperimentSpec,
    FidelitySpec,
    ModelSpec,
    NetworkSpec,
    PipelineSpec,
    RunSpec,
    SweepAxis,
    SweepSpec,
)
from repro.cli import main
from repro.errors import SpecError, UnknownNameError


def small_scenario_spec(planner: str = "dp", nm: int = 1) -> RunSpec:
    return RunSpec(
        kind="scenario",
        seed=7,
        cluster=ClusterSpec(node_codes="VR", gpus_per_node=2),
        model=ModelSpec(
            name="api-test", batch_size=8, image_size=16,
            conv_widths=(8, 8, 16, 16), fc_dims=(32,),
        ),
        pipeline=PipelineSpec(
            nm=nm, d=1, allocation="ED", warmup_waves=2, measured_waves=4,
            planner=planner,
        ),
    )


class TestRegistry:
    def test_miss_lists_available_names(self):
        registry = Registry("widget")
        registry.register("a", 1)
        registry.register("b", 2)
        with pytest.raises(UnknownNameError) as excinfo:
            registry.get("c")
        message = str(excinfo.value)
        assert "widget" in message and "'c'" in message
        assert "a, b" in message
        assert excinfo.value.available == ["a", "b"]

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ValueError):
            registry.register("a", 2)

    def test_builtin_registries_are_populated(self):
        assert {"vgg19", "resnet152"} <= set(MODELS.names())
        assert "paper" in CLUSTERS
        assert "default" in CALIBRATIONS
        assert {"grpc_tf112", "nccl_modern"} <= set(PROFILES.names())
        assert {"default", "staleness", "none"} <= set(ORACLES.names())
        assert {"dp", "dp_ordered", "bnb"} <= set(PLANNERS.names())
        assert {"fig3", "fig4", "table4"} <= set(EXPERIMENTS.names())

    def test_unknown_model_error_from_legacy_build_model(self):
        from repro.experiments.common import build_model as legacy_build

        with pytest.raises(UnknownNameError, match="vgg19"):
            legacy_build("alexnet")


class TestBuild:
    def test_build_cluster_resolves_profile(self):
        cluster = build_cluster(ClusterSpec(node_codes="VR", profile="nccl_modern"))
        assert len(cluster.nodes) == 2
        assert cluster.interconnect is PROFILES.get("nccl_modern")

    def test_build_cluster_unknown_profile(self):
        with pytest.raises(UnknownNameError, match="grpc_tf112"):
            build_cluster(ClusterSpec(profile="smoke-signals"))

    def test_build_model_catalog_and_synthetic(self):
        assert build_model(ModelSpec(name="vgg19")).name == "vgg19"
        synth = build_model(
            ModelSpec(name="s", batch_size=4, image_size=16,
                      conv_widths=(8,), fc_dims=())
        )
        assert synth.batch_size == 4

    def test_build_calibration_unknown(self):
        with pytest.raises(UnknownNameError, match="default"):
            build_calibration("measured_on_mars")

    def test_build_scenario_is_memoized_per_spec(self):
        spec = small_scenario_spec(planner="bnb")
        first, second = build_scenario(spec), build_scenario(spec)
        # the expensive built objects are shared; only the thin Scenario
        # wrapper (spec re-attachment) is reconstructed
        assert first.plans is second.plans
        assert first.cluster is second.cluster
        assert first.model is second.model
        assert first.spec == second.spec == build.run_to_scenario_spec(spec)

    def test_planners_agree_on_bottleneck(self):
        """bnb is the DP's cross-check: same bottleneck period."""
        dp = build_scenario(small_scenario_spec(planner="dp", nm=2))
        bnb = build_scenario(small_scenario_spec(planner="bnb", nm=2))
        for a, b in zip(dp.plans, bnb.plans):
            assert a.bottleneck_period == pytest.approx(b.bottleneck_period)

    def test_fuzz_representable_path_shares_generator_cache(self):
        from repro.scenarios.generator import generate_scenario

        scenario = generate_scenario(3)
        rebuilt = build_scenario(scenario.spec.to_run_spec())
        assert rebuilt is generate_scenario(3)

    def test_run_to_scenario_spec_folds_waves_scale(self):
        spec = small_scenario_spec()
        scaled = replace(spec, fidelity=FidelitySpec(waves_scale=4))
        assert (
            run_to_scenario_spec(scaled).measured_waves
            == spec.pipeline.measured_waves * 4
        )

    def test_experiment_spec_cannot_build_a_scenario(self):
        exp = RunSpec(kind="experiment", experiment=ExperimentSpec(name="fig3"))
        with pytest.raises(SpecError, match="scenario"):
            build_scenario(exp)


class TestRunScenario:
    def test_run_spec_and_legacy_paths_are_byte_identical(self):
        """The digest-equality contract of the API rewiring."""
        from repro.scenarios.generator import generate_scenario
        from repro.scenarios.runner import run_scenario

        sspec = generate_scenario(11).spec
        legacy = run_scenario(sspec)
        spec_built = run_scenario(sspec.to_run_spec())
        assert legacy.digest == spec_built.digest
        assert legacy.per_vw_completions == spec_built.per_vw_completions
        assert legacy.window == spec_built.window
        assert spec_built.spec_hash == sspec.to_run_spec().spec_hash
        assert legacy.spec_hash == spec_built.spec_hash

    def test_scenario_result_records_spec_provenance(self):
        from repro.api.spec import SPEC_SCHEMA

        result = run(small_scenario_spec())
        assert result.ok
        assert result.spec_hash == small_scenario_spec().spec_hash
        assert result.api_schema == SPEC_SCHEMA
        assert result.spec_hash[:12] in result.describe()

    def test_explicit_fidelity_overrides_the_spec_section(self):
        from repro.scenarios.runner import run_scenario

        spec = small_scenario_spec()
        result = run_scenario(spec, fidelity="fast_forward")
        assert result.fidelity == "fast_forward"

    def test_run_rejects_grid_specs(self):
        grid = replace(
            small_scenario_spec(),
            sweep=SweepSpec(axes=(SweepAxis(path="pipeline.nm", values=(1,)),)),
        )
        with pytest.raises(SpecError, match="sweep"):
            run(grid)

    def test_oracles_field_resolves_through_the_registry(self):
        from repro.scenarios.runner import run_scenario

        default = run(small_scenario_spec())
        bare = run_scenario(replace(small_scenario_spec(), oracles="none"))
        # same deterministic simulation either way, digest included —
        # the suite only watches
        assert bare.digest == default.digest
        with pytest.raises(UnknownNameError, match="oracle suite"):
            run_scenario(replace(small_scenario_spec(), oracles="bogus"))

    def test_fidelity_spec_knobs_unsupported_by_measure_are_rejected(self, cluster):
        from repro.models import build_vgg19
        from repro.partition import plan_virtual_worker
        from repro.pipeline import measure_pipeline

        plan = plan_virtual_worker(
            build_vgg19(), cluster.gpus[0:4], 1, cluster.interconnect,
            search_orderings=False,
        )
        with pytest.raises(SpecError, match="waves_scale"):
            measure_pipeline(
                plan, cluster.interconnect, 32,
                fidelity=FidelitySpec(fidelity="fast_forward", waves_scale=4),
            )

    def test_general_build_cache_ignores_non_planning_fields(self):
        spec = small_scenario_spec(planner="bnb")
        varied = replace(
            spec, seed=99, fidelity=FidelitySpec(fidelity="fast_forward"),
            oracles="staleness",
            pipeline=replace(
                spec.pipeline, d=3, measured_waves=16, jitter=0.1,
                push_every_minibatch=True,
            ),
        )
        assert build_scenario(spec).plans is build_scenario(varied).plans
        rewrapped = build_scenario(varied).spec
        assert rewrapped.seed == 99
        assert rewrapped.measured_waves == 16 and rewrapped.d == 3

    def test_unknown_experiment_model(self):
        spec = RunSpec(
            kind="experiment",
            experiment=ExperimentSpec(name="fig3", model="alexnet"),
        )
        with pytest.raises(UnknownNameError, match="model"):
            run(spec)


class TestDeprecationShims:
    def test_runtime_direct_fidelity_warns_and_matches_from_spec(self):
        from repro.sim.trace import Trace
        from repro.wsp.runtime import HetPipeRuntime

        spec = small_scenario_spec()
        scenario = build_scenario(spec)
        ff = replace(spec, fidelity=FidelitySpec(fidelity="fast_forward"))

        def drive(runtime):
            runtime.start()
            total = spec.pipeline.warmup_waves + spec.pipeline.measured_waves
            runtime.run_until_global_version(total - 1)
            return runtime

        with pytest.warns(DeprecationWarning, match="from_spec"):
            legacy_trace = Trace(enabled=False, digest=True, schema=2)
            legacy = drive(
                HetPipeRuntime(
                    scenario.cluster, scenario.model, list(scenario.plans),
                    d=spec.pipeline.d, trace=legacy_trace,
                    fidelity="fast_forward",
                )
            )
        spec_trace = Trace(enabled=False, digest=True, schema=2)
        built = drive(
            HetPipeRuntime.from_spec(
                ff,
                cluster=scenario.cluster,
                model=scenario.model,
                plans=list(scenario.plans),
                trace=spec_trace,
            )
        )
        assert legacy_trace.digest() == spec_trace.digest()
        assert legacy.sim.now == built.sim.now
        assert legacy.total_minibatches_done() == built.total_minibatches_done()

    def test_from_spec_does_not_warn(self, recwarn):
        from repro.wsp.runtime import HetPipeRuntime

        spec = small_scenario_spec()
        scenario = build_scenario(spec)
        HetPipeRuntime.from_spec(
            replace(spec, fidelity=FidelitySpec(fidelity="fast_forward")),
            cluster=scenario.cluster,
            model=scenario.model,
            plans=list(scenario.plans),
        )
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_measure_pipeline_string_fidelity_warns_and_matches(self, cluster):
        from repro.models import build_vgg19
        from repro.partition import plan_virtual_worker
        from repro.pipeline import measure_pipeline

        plan = plan_virtual_worker(
            build_vgg19(), cluster.gpus[0:4], 2, cluster.interconnect,
            search_orderings=False,
        )
        with pytest.warns(DeprecationWarning, match="FidelitySpec"):
            shimmed = measure_pipeline(
                plan, cluster.interconnect, 32,
                measured_minibatches=40, fidelity="fast_forward",
            )
        spec_built = measure_pipeline(
            plan, cluster.interconnect, 32,
            measured_minibatches=40,
            fidelity=FidelitySpec(fidelity="fast_forward"),
        )
        assert shimmed == spec_built

    def test_measure_1f1b_string_fidelity_warns_and_matches(self, cluster):
        from repro.models import build_vgg19
        from repro.partition import plan_virtual_worker
        from repro.pipeline import measure_1f1b_pipeline

        plan = plan_virtual_worker(
            build_vgg19(), cluster.gpus[0:4], 2, cluster.interconnect,
            search_orderings=False,
        )
        with pytest.warns(DeprecationWarning, match="FidelitySpec"):
            shimmed = measure_1f1b_pipeline(
                plan, cluster.interconnect, 32,
                measured_minibatches=40, fidelity="fast_forward",
            )
        spec_built = measure_1f1b_pipeline(
            plan, cluster.interconnect, 32,
            measured_minibatches=40,
            fidelity=FidelitySpec(fidelity="fast_forward"),
        )
        assert shimmed == spec_built

    def test_default_fidelity_string_stays_silent(self, cluster, recwarn):
        from repro.models import build_vgg19
        from repro.partition import plan_virtual_worker
        from repro.pipeline import measure_pipeline

        plan = plan_virtual_worker(
            build_vgg19(), cluster.gpus[0:4], 1, cluster.interconnect,
            search_orderings=False,
        )
        measure_pipeline(plan, cluster.interconnect, 32, measured_minibatches=20)
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestMeasureRun:
    def test_measure_run_matches_measure_hetpipe(self):
        from repro.wsp import measure_hetpipe, measure_run

        spec = small_scenario_spec(nm=2)
        scenario = build_scenario(spec)
        via_spec = measure_run(spec)
        legacy = measure_hetpipe(
            scenario.cluster, scenario.model, list(scenario.plans),
            d=spec.pipeline.d,
            warmup_waves=spec.pipeline.warmup_waves,
            measured_waves=spec.pipeline.measured_waves,
        )
        assert via_spec == legacy


class TestSweep:
    def grid(self) -> RunSpec:
        return replace(
            small_scenario_spec(),
            sweep=SweepSpec(
                axes=(
                    SweepAxis(path="pipeline.planner", values=("dp", "bnb")),
                    SweepAxis(path="pipeline.nm", values=(1, 2)),
                )
            ),
        )

    def test_in_order_results_with_stable_spec_hashes(self):
        from repro.api.spec import expand_sweep

        grid = self.grid()
        serial = run_sweep(grid, jobs=1)
        parallel = run_sweep(grid, jobs=2)
        assert serial == parallel  # in-order merge, bit-identical
        assert [p.index for p in serial.points] == [0, 1, 2, 3]
        expected = [point.spec_hash for point in expand_sweep(grid)]
        assert [p.spec_hash for p in serial.points] == expected
        assert all(p.ok for p in serial.points)
        assert serial.grid_hash == grid.spec_hash

    def test_infeasible_point_fails_alone_without_aborting_the_grid(self):
        """PartitionError on one point is a normal planner-search
        outcome: it fails that point, the rest still report."""
        grid = RunSpec(
            kind="scenario",
            cluster=ClusterSpec(node_codes="G", gpus_per_node=2),
            model=ModelSpec(name="vgg19"),
            pipeline=PipelineSpec(nm=1, allocation="NP", measured_waves=4),
            sweep=SweepSpec(axes=(SweepAxis(path="pipeline.nm", values=(1, 8)),)),
        )
        result = run_sweep(grid, jobs=1)
        assert result.points[0].ok
        assert not result.points[1].ok
        assert "PartitionError" in result.points[1].violations[0]
        assert result.points[1].spec_hash  # provenance survives the failure

    def test_named_synthetic_model_keeps_its_declared_name(self):
        """A dp-planner synthetic spec with a non-generator name must
        not borrow the generator's 'fuzz<seed>' model identity."""
        scenario = build_scenario(small_scenario_spec(planner="dp"))
        assert scenario.model.name == "api-test"

    def test_on_result_streams_in_order(self):
        seen: list[int] = []
        run_sweep(self.grid(), jobs=2, on_result=lambda p: seen.append(p.index))
        assert seen == [0, 1, 2, 3]

    def test_sweep_requires_a_grid(self):
        with pytest.raises(SpecError, match="no sweep section"):
            run_sweep(small_scenario_spec())


class TestCli:
    def write(self, tmp_path, payload) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_run_scenario_spec_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(small_scenario_spec().to_json())
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "spec" in out

    def test_sweep_cli_runs_the_grid(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(self_grid().to_json())
        assert main(["sweep", str(path), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 points, 0 failing" in out
        assert out.count("spec=") == 4

    def test_unknown_model_exits_two_with_names(self, tmp_path, capsys):
        path = self.write(
            tmp_path,
            {"kind": "experiment", "experiment": {"name": "fig3", "model": "alexnet"}},
        )
        assert main(["run", path]) == 2
        err = capsys.readouterr().err
        assert "unknown model 'alexnet'" in err and "vgg19" in err

    def test_unknown_experiment_exits_two(self, tmp_path, capsys):
        path = self.write(
            tmp_path,
            {"kind": "experiment", "experiment": {"name": "fig99"}},
        )
        assert main(["run", path]) == 2
        assert "available" in capsys.readouterr().err

    def test_malformed_spec_exits_two(self, tmp_path, capsys):
        path = self.write(tmp_path, {"kind": "scenario", "bogus": True})
        assert main(["run", path]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_run_rejects_grid_specs_with_exit_two(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(self_grid().to_json())
        assert main(["run", path.as_posix()]) == 2
        assert "sweep" in capsys.readouterr().err

    def test_configuration_errors_also_exit_two(self, tmp_path, capsys):
        """Spec-reachable ConfigurationErrors honor the no-traceback
        contract, not just SpecError/UnknownNameError."""
        path = self.write(
            tmp_path,
            {"kind": "scenario", "cluster": {"node_codes": "ZZ"},
             "model": {"name": "vgg19"}, "pipeline": {"nm": 1}},
        )
        assert main(["run", path]) == 2
        err = capsys.readouterr().err
        assert "unknown GPU code" in err

    def test_sweep_cli_prints_failing_point_violations(self, tmp_path, capsys, monkeypatch):
        from repro.api.run import SweepPointResult, SweepResult

        failing = SweepPointResult(
            index=1, spec_hash="f" * 64, label="pipeline.nm=2", kind="scenario",
            ok=False, summary="0.0 img/s", violations=("staleness: impossible",),
        )
        fake = SweepResult(grid_hash="a" * 64, points=(failing,))
        monkeypatch.setattr("repro.api.run.run_sweep", lambda *a, **k: fake)
        path = tmp_path / "grid.json"
        path.write_text(self_grid().to_json())
        assert main(["sweep", str(path), "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "point 1: staleness: impossible" in out
        assert "FAIL(1)" in out  # --quiet still identifies the failing point

    def test_checked_in_specs_parse(self):
        import glob

        paths = sorted(glob.glob("examples/specs/*.json"))
        assert len(paths) >= 5
        for path in paths:
            with open(path) as fh:
                RunSpec.from_json(fh.read())


def self_grid() -> RunSpec:
    return replace(
        small_scenario_spec(),
        sweep=SweepSpec(
            axes=(
                SweepAxis(path="pipeline.planner", values=("dp", "bnb")),
                SweepAxis(path="pipeline.nm", values=(1, 2)),
            )
        ),
    )
