"""Horovod baseline and sync models — including the paper's Table-4 fit."""

import pytest

from repro.cluster import paper_cluster
from repro.errors import ConfigurationError, MemoryCapacityError
from repro.parallel import (
    asp_iteration_times,
    bsp_iteration_time,
    cross_node_allreduce_bytes,
    feasible_gpus,
    measure_horovod,
    ring_allreduce_time,
    ring_bandwidth,
    ssp_iteration_times,
)
from repro.units import mib


class TestAllReduce:
    def test_cross_node_bytes_match_paper_arithmetic(self, vgg19, resnet152):
        """§8.3 quotes 515MB for VGG-19/16 GPUs and 211MB for
        ResNet-152/12 GPUs — exactly S*(N-1)/N in MiB."""
        assert cross_node_allreduce_bytes(vgg19.param_bytes, 16) / mib(1) == pytest.approx(514, abs=1)
        assert cross_node_allreduce_bytes(resnet152.param_bytes, 12) / mib(1) == pytest.approx(211, abs=1)

    def test_single_worker_no_traffic(self):
        assert cross_node_allreduce_bytes(1e9, 1) == 0.0

    def test_ring_time_grows_with_bytes(self, cluster):
        gpus = cluster.gpus[0:4]
        assert ring_allreduce_time(2e9, gpus) > ring_allreduce_time(1e9, gpus)

    def test_single_gpu_free(self, cluster):
        assert ring_allreduce_time(1e9, cluster.gpus[0:1]) == 0.0

    def test_intra_node_ring_faster_than_cross(self, cluster):
        same_node = cluster.gpus[0:4]
        cross = [cluster.gpus[0], cluster.gpus[4], cluster.gpus[8], cluster.gpus[12]]
        assert ring_allreduce_time(1e9, same_node) < ring_allreduce_time(1e9, cross)

    def test_ring_bandwidth_selection(self, cluster):
        from repro.models.calibration import DEFAULT_CALIBRATION as cal

        assert ring_bandwidth(cluster.gpus[0:4]) == cal.horovod_pcie_ring_bandwidth
        assert ring_bandwidth(cluster.gpus[2:6]) == cal.horovod_ib_ring_bandwidth

    def test_ring_needs_two(self, cluster):
        with pytest.raises(ConfigurationError):
            ring_bandwidth(cluster.gpus[0:1])

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            cross_node_allreduce_bytes(1e9, 0)


class TestHorovod:
    def test_resnet_excludes_rtx2060(self, resnet152):
        """§8.1: 'for ResNet-152 ... Horovod uses only 12 GPUs'."""
        metrics = measure_horovod(paper_cluster(), resnet152)
        assert metrics.num_gpus == 12
        assert metrics.excluded_gpus == 4

    def test_vgg_uses_all_sixteen(self, vgg19):
        metrics = measure_horovod(paper_cluster(), vgg19)
        assert metrics.num_gpus == 16

    def test_infeasible_cluster_raises(self, resnet152):
        with pytest.raises(MemoryCapacityError):
            measure_horovod(paper_cluster("G"), resnet152)

    def test_iteration_is_compute_plus_allreduce(self, vgg19):
        metrics = measure_horovod(paper_cluster(), vgg19)
        assert metrics.iteration_time == pytest.approx(
            metrics.compute_time + metrics.allreduce_time
        )

    def test_straggler_binds_compute(self, vgg19, profiler):
        """BSP compute time equals the slowest member's serial time."""
        from repro.cluster import QUADRO_P4000

        metrics = measure_horovod(paper_cluster(), vgg19)
        assert metrics.compute_time == pytest.approx(
            profiler.serial_minibatch_time(vgg19, QUADRO_P4000), rel=1e-6
        )

    def test_single_node_no_cross_traffic(self, vgg19):
        metrics = measure_horovod(paper_cluster("V"), vgg19)
        assert metrics.cross_node_bytes_per_minibatch == 0.0

    @pytest.mark.parametrize(
        "model_name,codes,paper",
        [
            ("vgg19", "V", 164), ("vgg19", "VR", 205),
            ("vgg19", "VRQ", 265), ("vgg19", "VRQG", 339),
            ("resnet152", "V", 233), ("resnet152", "VR", 353),
            ("resnet152", "VRQ", 415),
        ],
    )
    def test_table4_horovod_rows_within_band(self, model_name, codes, paper, vgg19, resnet152):
        """Every Horovod row of Table 4 within 15% of the paper."""
        model = vgg19 if model_name == "vgg19" else resnet152
        metrics = measure_horovod(paper_cluster(codes), model)
        assert paper * 0.85 < metrics.throughput < paper * 1.15

    def test_feasible_gpus_filter(self, resnet152):
        cluster = paper_cluster()
        usable = feasible_gpus(resnet152, cluster.gpus)
        assert {g.code for g in usable} == {"V", "R", "Q"}

    def test_per_gpu_throughput(self, vgg19):
        metrics = measure_horovod(paper_cluster("V"), vgg19)
        assert metrics.per_gpu_throughput == pytest.approx(metrics.throughput / 4)


class TestSyncModels:
    def test_bsp_is_max_plus_sync(self):
        assert bsp_iteration_time([1.0, 2.0, 3.0], sync_time=0.5) == 3.5

    def test_asp_is_per_worker(self):
        assert asp_iteration_times([1.0, 2.0], sync_time=0.5) == [1.5, 2.5]

    def test_ssp_throttles_fast_workers(self):
        periods = ssp_iteration_times([1.0, 3.0], staleness=2, window=10)
        assert periods[0] > 1.0  # fast worker bounded by the slow one
        assert periods[1] == pytest.approx(3.0)

    def test_ssp_large_staleness_approaches_asp(self):
        tight = ssp_iteration_times([1.0, 3.0], staleness=0, window=10)
        loose = ssp_iteration_times([1.0, 3.0], staleness=1000, window=10)
        assert loose[0] < tight[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bsp_iteration_time([])
        with pytest.raises(ConfigurationError):
            ssp_iteration_times([1.0], staleness=-1)
        with pytest.raises(ConfigurationError):
            asp_iteration_times([])
