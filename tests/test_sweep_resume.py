"""Crash-safe resumable sweeps: the ISSUE's acceptance scenarios.

The load-bearing claims under test:

* a ``--jobs 4 --store`` sweep SIGKILL'd mid-grid and resumed with
  ``--resume`` produces merged results **bit-identical** to an
  uninterrupted serial run, recomputing only the unfinished points;
* corrupted store entries (truncation, bit flips, checksum damage) are
  quarantined and recomputed — a damaged store never crashes a sweep;
* a point that raises fails *per-point*; the rest of the grid
  completes (the partial-failure exit contract).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api.run import SweepPointResult, _sweep_point, run_sweep
from repro.api.spec import RunSpec
from repro.cli import main
from repro.store import ResultStore

GRID = {
    "schema": "hetpipe-spec/1",
    "kind": "scenario",
    "seed": 11,
    "cluster": {"node_codes": "VR", "gpus_per_node": 2},
    "model": {
        "name": "resume-test",
        "batch_size": 8,
        "image_size": 16,
        "conv_widths": [8, 8, 16, 16],
        "fc_dims": [32],
    },
    "pipeline": {
        "nm": 1, "d": 1, "allocation": "ED",
        "warmup_waves": 2, "measured_waves": 4,
    },
    "sweep": {
        "axes": [
            {"path": "pipeline.allocation", "values": ["NP", "ED"]},
            {"path": "pipeline.nm", "values": [1, 2]},
        ]
    },
}


def _grid_spec(**pipeline_overrides) -> RunSpec:
    data = json.loads(json.dumps(GRID))
    data["pipeline"].update(pipeline_overrides)
    return RunSpec.from_dict(data)


def _describe_lines(result) -> list[str]:
    return [p.describe() for p in result.points]


class TestStoreStreaming:
    def test_every_completed_point_lands_in_the_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        result = run_sweep(_grid_spec(), jobs=2, store=store)
        assert len(store) == len(result.points)
        for point in result.points:
            record = store.load(point.spec_hash)
            assert record.kind == point.kind
            assert record.payload["summary"] == point.summary
            assert record.spec["model"]["name"] == "resume-test"

    def test_store_is_optional_and_off_by_default(self, tmp_path):
        result = run_sweep(_grid_spec(), jobs=1)
        assert result.reused == 0
        assert len(result.points) == 4


class TestResume:
    def test_full_store_resumes_with_zero_recompute(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        clean = run_sweep(_grid_spec(), jobs=1, store=store)
        # Poison the executor: any recompute would crash the test.
        resumed = run_sweep(
            _grid_spec(), jobs=4, store=store, resume=True, timeout=None
        )
        assert resumed.reused == len(clean.points)
        assert _describe_lines(resumed) == _describe_lines(clean)
        assert resumed.summary_line() != clean.summary_line()  # reused shown

    def test_partial_store_recomputes_only_missing_points(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        clean = run_sweep(_grid_spec(), jobs=1, store=store)
        victim = clean.points[2]
        os.unlink(store.path_for(victim.spec_hash))
        before = {key: os.path.getmtime(store.path_for(key)) for key in store.keys()}
        resumed = run_sweep(_grid_spec(), jobs=2, store=store, resume=True)
        assert resumed.reused == len(clean.points) - 1
        assert _describe_lines(resumed) == _describe_lines(clean)
        # The surviving entries were reused, not rewritten.
        for key, mtime in before.items():
            assert os.path.getmtime(store.path_for(key)) == mtime

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"])
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path, damage):
        store = ResultStore(str(tmp_path / "store"))
        clean = run_sweep(_grid_spec(), jobs=1, store=store)
        victim = store.path_for(clean.points[1].spec_hash)
        raw = open(victim, "rb").read()
        if damage == "truncate":
            open(victim, "wb").write(raw[:80])
        else:
            flipped = bytearray(raw)
            flipped[len(raw) // 2] ^= 0xFF
            open(victim, "wb").write(bytes(flipped))
        resumed = run_sweep(_grid_spec(), jobs=2, store=store, resume=True)
        assert _describe_lines(resumed) == _describe_lines(clean)
        assert resumed.reused == len(clean.points) - 1
        assert len(os.listdir(store.quarantine_dir)) == 1
        assert store.verify() == []  # recomputed entry is intact again

    def test_foreign_record_kind_is_recomputed_not_trusted(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        clean = run_sweep(_grid_spec(), jobs=1, store=store)
        key = clean.points[0].spec_hash
        store.put(key, "bench", {"summary": "not a sweep point"})
        resumed = run_sweep(_grid_spec(), jobs=1, store=store, resume=True)
        assert _describe_lines(resumed) == _describe_lines(clean)
        assert resumed.reused == len(clean.points) - 1

    def test_resume_ordering_of_on_result_is_unchanged(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        run_sweep(_grid_spec(), jobs=1, store=store)
        os.unlink(store.path_for(run_sweep(_grid_spec(), jobs=1).points[3].spec_hash))
        seen = []
        run_sweep(
            _grid_spec(), jobs=2, store=store, resume=True,
            on_result=lambda p: seen.append(p.index),
        )
        assert seen == [0, 1, 2, 3]


class TestKillAndResume:
    """The acceptance scenario: SIGKILL a parallel sweep mid-grid,
    resume, and the merged output is bit-identical to a clean run."""

    def _spawn_sweep(self, spec_path, store_dir, repo_root):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        return subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
                "sweep", spec_path, "--jobs", "4", "--store", store_dir,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        spec_path = str(tmp_path / "grid.json")
        # A slower grid (more measured waves) so the kill lands mid-run.
        with open(spec_path, "w") as fh:
            json.dump(
                json.loads(_grid_spec(measured_waves=12).to_json()), fh
            )
        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)

        proc = self._spawn_sweep(spec_path, store_dir, repo_root)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and len(store) < 1:
            if proc.poll() is not None:  # finished before we could kill it
                break
            time.sleep(0.02)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        committed = len(store)
        assert store.verify() == []  # whatever landed is intact
        clean = run_sweep(_grid_spec(measured_waves=12), jobs=1)
        resumed = run_sweep(
            _grid_spec(measured_waves=12), jobs=4,
            store=store, resume=True,
        )
        assert _describe_lines(resumed) == _describe_lines(clean)
        assert resumed.reused == committed  # only unfinished points reran
        assert len(store) == len(clean.points)


class TestPartialFailure:
    """A raising point fails per-point; the grid completes (exit 1,
    not an abort)."""

    def test_infeasible_point_fails_only_itself(self):
        spec = _grid_spec()
        data = json.loads(spec.to_json())
        data["sweep"]["axes"][0]["values"] = ["NP", "HD"]  # HD needs 4 GPUs/node
        result = run_sweep(RunSpec.from_dict(data), jobs=2)
        statuses = [p.ok for p in result.points]
        assert statuses == [True, True, False, False]
        assert all(
            "ConfigurationError" in v
            for p in result.failures
            for v in p.violations
        )

    def test_unexpected_exception_is_contained_per_point(self, monkeypatch):
        import repro.api.run as run_mod

        def _explode(spec, jobs=1):
            raise RuntimeError("not a ReproError")

        monkeypatch.setattr(run_mod, "run", _explode)
        point = _sweep_point((0, _grid_spec().to_json(indent=None), ""))
        # the grid spec has a sweep section, so run() raises before the
        # monkeypatch matters on some paths; either way: contained.
        assert isinstance(point, SweepPointResult)
        assert point.ok is False
        assert point.violations


class TestSweepCli:
    def test_resume_without_store_exits_2(self, tmp_path, capsys):
        spec_path = str(tmp_path / "grid.json")
        open(spec_path, "w").write(_grid_spec().to_json())
        assert main(["sweep", spec_path, "--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_store_flags_parse(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "g.json", "--store", "d", "--resume", "--timeout", "2.5"]
        )
        assert args.store == "d" and args.resume and args.timeout == 2.5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "g.json", "--timeout", "0"])

    def test_cli_sweep_with_store_then_resume(self, tmp_path, capsys):
        spec_path = str(tmp_path / "grid.json")
        open(spec_path, "w").write(_grid_spec().to_json())
        store_dir = str(tmp_path / "store")
        assert main(["sweep", spec_path, "--store", store_dir]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", spec_path, "--store", store_dir, "--resume"]) == 0
        second = capsys.readouterr().out
        point_lines = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("[")
        ]
        assert point_lines(first) == point_lines(second)
        assert "4 reused" in second


class TestStoreCli:
    def _populated(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_sweep(_grid_spec(), jobs=1, store=ResultStore(store_dir))
        return store_dir

    def test_ls_lists_every_entry(self, tmp_path, capsys):
        store_dir = self._populated(tmp_path)
        assert main(["store", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert out.count("scenario") == 4

    def test_verify_clean_exits_0(self, tmp_path, capsys):
        store_dir = self._populated(tmp_path)
        assert main(["store", "verify", store_dir]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_verify_corrupt_exits_1_and_names_the_key(self, tmp_path, capsys):
        store_dir = self._populated(tmp_path)
        store = ResultStore(store_dir)
        key = next(iter(store.keys()))
        open(store.path_for(key), "w").write("{")
        assert main(["store", "verify", store_dir]) == 1
        out = capsys.readouterr().out
        assert f"CORRUPT {key[:12]}" in out

    def test_quarantine_then_gc(self, tmp_path, capsys):
        store_dir = self._populated(tmp_path)
        store = ResultStore(store_dir)
        key = next(iter(store.keys()))
        assert main(["store", "quarantine", store_dir, key]) == 0
        assert main(["store", "gc", store_dir]) == 0
        out = capsys.readouterr().out
        assert "purged 1 quarantined entry" in out
        assert key not in ResultStore(store_dir)

    def test_quarantine_unknown_key_exits_2(self, tmp_path, capsys):
        store_dir = self._populated(tmp_path)
        assert main(["store", "quarantine", store_dir, "f" * 64]) == 2
        assert "repro store ls" in capsys.readouterr().err

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["store", "ls", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestBenchHistory:
    def test_record_history_accumulates_distinct_runs(self, tmp_path):
        from repro.exec.bench import record_history

        store_dir = str(tmp_path / "store")
        payload_a = {"schema": "hetpipe-bench/4", "metrics": {"fuzz": {"scenarios_per_sec": 10.0}}}
        payload_b = {"schema": "hetpipe-bench/4", "metrics": {"fuzz": {"scenarios_per_sec": 11.0}}}
        record_history(payload_a, store_dir)
        record_history(payload_b, store_dir)
        record_history(payload_a, store_dir)  # identical rerun dedupes
        store = ResultStore(store_dir)
        assert len(store) == 2
        for key in store.keys():
            record = store.load(key)
            assert record.kind == "bench"
            assert record.payload["bench"]["schema"] == "hetpipe-bench/4"
            assert "scen/s" in record.payload["summary"]
