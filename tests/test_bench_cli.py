"""``repro bench``: payload schema, regression check, CLI exit codes."""

import json

import pytest

from repro.exec.bench import (
    SCHEMA,
    bench_engine,
    bench_plan_cache,
    bench_trace,
    check_against,
    render,
    run_bench,
    write_payload,
)


@pytest.fixture(scope="module")
def payload():
    """One tiny full run shared by the schema tests."""
    return run_bench(quick=True, seeds=2, jobs=1, skip_experiments=True)


class TestPayload:
    def test_schema_and_required_keys(self, payload):
        assert payload["schema"] == SCHEMA
        metrics = payload["metrics"]
        assert metrics["fuzz"]["seeds"] == 2
        assert metrics["fuzz"]["scenarios_per_sec"] > 0
        assert metrics["fuzz"]["violations"] == 0
        assert metrics["engine"]["events_per_sec"] > 0
        assert metrics["trace"]["records_per_sec"] > 0
        assert metrics["plan_cache"]["speedup"] > 1.0, "warm cache must beat cold"

    def test_render_mentions_headline_metrics(self, payload):
        text = render(payload)
        assert "scenarios/s" in text and "events/s" in text

    def test_payload_round_trips_as_json(self, payload, tmp_path):
        path = tmp_path / "bench.json"
        write_payload(payload, str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA


class TestRegressionCheck:
    def _baseline(self, tmp_path, rate):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"schema": SCHEMA, "metrics": {"fuzz": {"scenarios_per_sec": rate}}}
            )
        )
        return str(path)

    def _payload(self, rate):
        return {"schema": SCHEMA, "metrics": {"fuzz": {"scenarios_per_sec": rate}}}

    def test_within_tolerance_passes(self, tmp_path):
        ok, message = check_against(
            self._payload(80.0), self._baseline(tmp_path, 100.0), tolerance=0.30
        )
        assert ok and "80.0" in message

    def test_beyond_tolerance_fails(self, tmp_path):
        ok, _ = check_against(
            self._payload(60.0), self._baseline(tmp_path, 100.0), tolerance=0.30
        )
        assert not ok

    def test_improvement_passes(self, tmp_path):
        ok, _ = check_against(
            self._payload(500.0), self._baseline(tmp_path, 100.0), tolerance=0.30
        )
        assert ok

    def test_schema_mismatch_fails(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "metrics": {}}))
        ok, message = check_against(self._payload(100.0), str(path))
        assert not ok and "schema" in message

    def _with_engine(self, fuzz_rate, engine_rate):
        return {
            "schema": SCHEMA,
            "metrics": {
                "fuzz": {"scenarios_per_sec": fuzz_rate},
                "engine": {"events_per_sec": engine_rate},
            },
        }

    def test_slower_host_passes_via_engine_normalization(self, tmp_path):
        """A uniformly slower machine fails raw but passes normalized."""
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._with_engine(100.0, 1_000_000.0)))
        ok, message = check_against(
            self._with_engine(50.0, 500_000.0), str(path), tolerance=0.30
        )
        assert ok and "normalized" in message

    def test_fuzz_only_regression_fails_both_comparisons(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._with_engine(100.0, 1_000_000.0)))
        ok, _ = check_against(
            self._with_engine(60.0, 1_000_000.0), str(path), tolerance=0.30
        )
        assert not ok


class TestMicroBenches:
    def test_engine_bench_counts_every_event(self):
        result = bench_engine(events=500)
        assert result["events"] == 500

    def test_trace_bench_runs(self):
        assert bench_trace(records=500)["records_per_sec"] > 0

    def test_plan_cache_bench_reports_speedup(self):
        assert bench_plan_cache()["cold_seconds"] > 0


class TestCli:
    def test_bench_cli_writes_payload_and_checks(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_sweep.json"
        code = main([
            "bench", "--quick", "--seeds", "2", "--jobs", "1",
            "--no-experiments", "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["schema"] == SCHEMA
        # checking against itself always passes
        code = main([
            "bench", "--quick", "--seeds", "2", "--jobs", "1",
            "--no-experiments", "--out", "", "--check", str(out),
        ])
        assert code == 0
        assert "OK:" in capsys.readouterr().out

    def test_bench_profile_writes_structured_json(self, tmp_path, capsys):
        from repro.cli import main
        from repro.exec.bench import PROFILE_SCHEMA, PROFILE_TOP

        out = tmp_path / "bench_quick.json"
        code = main([
            "bench", "--quick", "--seeds", "2", "--jobs", "1",
            "--no-experiments", "--out", str(out), "--profile",
        ])
        assert code == 0
        profile = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["total_calls"] > 0 and profile["total_seconds"] >= 0
        entries = profile["entries"]
        assert 0 < len(entries) <= PROFILE_TOP
        cumulative = [e["cumulative_seconds"] for e in entries]
        assert cumulative == sorted(cumulative, reverse=True)
        for entry in entries:
            assert set(entry) == {
                "function", "primitive_calls", "total_calls",
                "self_seconds", "cumulative_seconds",
            }
        # The human top-25 summary lands on stdout, not in a .txt file.
        captured = capsys.readouterr().out
        assert "cumulative" in captured and "ncalls" in captured
        assert not (tmp_path / "BENCH_profile.txt").exists()
