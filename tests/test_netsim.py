"""Contention-aware fabric: routing, sharing semantics, oracles, wiring."""

import pytest

from repro.cluster.catalog import (
    INTERCONNECT_PROFILES,
    interconnect_profile,
    paper_cluster,
    single_type_cluster,
)
from repro.errors import ConfigurationError, InvariantViolation, SimulationError
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.models.profiler import Profiler
from repro.netsim import (
    DEFAULT_FABRIC_SPEC,
    Endpoint,
    Fabric,
    FabricSpec,
    utilization_report,
)
from repro.parallel import (
    measure_ring_allreduce,
    ring_allreduce_time,
    simulate_ring_allreduce,
)
from repro.partition import plan_virtual_worker
from repro.pipeline.one_f_one_b import OneFOneBPipeline
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.scenarios import congested_fabric_spec
from repro.sim.engine import Simulator
from repro.sim.invariants import FabricOracle, default_oracles
from repro.wsp import measure_hetpipe
from repro.wsp.runtime import HetPipeRuntime


def _fabric(codes="VR", gpus_per_node=2, spec=DEFAULT_FABRIC_SPEC):
    sim = Simulator()
    cluster = paper_cluster(codes, gpus_per_node=gpus_per_node)
    return sim, cluster, Fabric(sim, cluster, spec)


class TestRouting:
    def test_intra_node_path(self):
        _, cluster, fabric = _fabric()
        path, latency = fabric.route(
            Endpoint.gpu(cluster.gpu(0)), Endpoint.gpu(cluster.gpu(1))
        )
        assert [l.kind for l in path] == ["pcie_lane", "pcie_switch", "pcie_lane"]
        assert latency == cluster.interconnect.pcie_latency

    def test_cross_node_path_traverses_nics_and_ib(self):
        _, cluster, fabric = _fabric()
        path, latency = fabric.route(
            Endpoint.gpu(cluster.gpu(0)), Endpoint.gpu(cluster.gpu(2))
        )
        assert [l.kind for l in path] == [
            "pcie_lane", "pcie_switch", "nic", "ib_fabric", "nic",
            "pcie_switch", "pcie_lane",
        ]
        assert latency == cluster.interconnect.ib_latency

    def test_host_endpoints_use_host_lane(self):
        _, cluster, fabric = _fabric()
        path, _ = fabric.route(Endpoint.host(0), Endpoint.host(1))
        assert path[0].kind == "host_lane" and path[-1].kind == "host_lane"

    def test_same_node_host_to_host_still_charges_pcie(self):
        sim, cluster, fabric = _fabric()
        done = []
        fabric.transfer(Endpoint.host(0), Endpoint.host(0), 1e6, lambda: done.append(sim.now))
        sim.run()
        ic = cluster.interconnect
        assert done == [pytest.approx(ic.pcie_latency + 1e6 / ic.pcie_effective)]

    def test_same_gpu_transfer_is_noop(self):
        sim, cluster, fabric = _fabric()
        done = []
        fabric.transfer_gpus(0, 0, 1e9, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]
        assert fabric.flows == []


class TestUnloadedEquivalence:
    """With no contention, the fabric reproduces the dedicated model."""

    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 2)])
    def test_single_flow_matches_dedicated_time(self, src, dst):
        sim, cluster, fabric = _fabric()
        done = []
        fabric.transfer_gpus(src, dst, 5e6, lambda: done.append(sim.now))
        sim.run()
        expected = cluster.interconnect.transfer_time(
            5e6, cluster.gpu(src), cluster.gpu(dst)
        )
        assert done == [pytest.approx(expected)]

    def test_congested_spec_is_never_faster(self):
        spec = FabricSpec(pcie_lane_scale=0.5, nic_scale=0.25, ib_fabric_scale=0.5)
        sim, cluster, fabric = _fabric(spec=spec)
        done = fabric.transfer_gpus(0, 2, 5e6)
        dedicated = cluster.interconnect.transfer_time(5e6, cluster.gpu(0), cluster.gpu(2))
        assert done >= dedicated


class TestSharing:
    def test_cross_node_flows_serialize_on_nic(self):
        sim, cluster, fabric = _fabric()
        done = []
        fabric.transfer_gpus(0, 2, 1e6, lambda: done.append(sim.now))
        fabric.transfer_gpus(1, 3, 1e6, lambda: done.append(sim.now))
        sim.run()
        ic = cluster.interconnect
        occupy = 1e6 / ic.ib_effective
        assert done[0] == pytest.approx(ic.ib_latency + occupy)
        assert done[1] == pytest.approx(ic.ib_latency + 2 * occupy)

    def test_disjoint_intra_node_flows_do_not_interact(self):
        # 4 GPUs per node: gpu0->gpu1 and gpu2->gpu3 share only the
        # switch, which has spare capacity for two lane-rate flows
        sim, cluster, fabric = _fabric("V", gpus_per_node=4)
        done = []
        fabric.transfer_gpus(0, 1, 1e6, lambda: done.append(sim.now))
        fabric.transfer_gpus(2, 3, 1e6, lambda: done.append(sim.now))
        sim.run()
        # FIFO reservation still serializes them at the shared switch;
        # both complete, bytes conserve, and utilization stays <= 1
        fabric.verify()
        assert len(done) == 2

    def test_queue_stats_accumulate_under_contention(self):
        sim, cluster, fabric = _fabric()
        for _ in range(4):
            fabric.transfer_gpus(0, 2, 1e6)
        sim.run()
        delay, depth = fabric.queue_stats()
        assert delay > 0
        assert depth >= 3

    def test_congested_links_ranking(self):
        sim, cluster, fabric = _fabric()
        for _ in range(3):
            fabric.transfer_gpus(0, 2, 1e6)
        sim.run()
        top = fabric.congested_links(top=3)
        assert len(top) == 3
        assert top[0].queue_delay_total >= top[-1].queue_delay_total


class TestVerification:
    def test_verify_passes_on_clean_run(self):
        sim, _, fabric = _fabric()
        fabric.transfer_gpus(0, 3, 2e6)
        fabric.transfer(Endpoint.host(0), Endpoint.host(1), 1e6)
        sim.run()
        fabric.verify()

    def test_verify_catches_tampered_counters(self):
        sim, _, fabric = _fabric()
        fabric.transfer_gpus(0, 2, 1e6)
        sim.run()
        fabric.ib_fabric.bytes_moved += 123.0
        with pytest.raises(InvariantViolation):
            fabric.verify()

    def test_verify_catches_overcommitted_busy_time(self):
        sim, _, fabric = _fabric()
        fabric.transfer_gpus(0, 2, 1e6, lambda: None)
        sim.run()
        assert sim.now > 0
        fabric.ib_fabric.busy_time = sim.now * 2
        with pytest.raises(InvariantViolation):
            fabric.verify()

    def test_negative_size_rejected(self):
        _, _, fabric = _fabric()
        with pytest.raises(SimulationError):
            fabric.transfer_gpus(0, 1, -1.0)

    def test_utilization_never_exceeds_one(self):
        sim, _, fabric = _fabric()
        for i in range(10):
            fabric.transfer_gpus(0, 2, 5e5)
        sim.run()
        for link in fabric.links():
            assert link.utilization() <= 1.0 + 1e-12

    def test_utilization_report_rows_cover_all_links(self):
        sim, _, fabric = _fabric()
        fabric.transfer_gpus(0, 2, 1e6)
        sim.run()
        rows = utilization_report(fabric)
        assert len(rows) == len(fabric.links())
        assert len(utilization_report(fabric, top=3)) == 3


class TestFabricSpec:
    def test_invalid_scales_rejected(self):
        with pytest.raises(ConfigurationError):
            FabricSpec(pcie_lane_scale=0.0)
        with pytest.raises(ConfigurationError):
            FabricSpec(ib_fabric_scale=-1.0)

    def test_min_scale_caps_at_one(self):
        assert FabricSpec().min_scale() == 1.0
        assert FabricSpec(nic_scale=0.25).min_scale() == 0.25

    def test_congested_fabric_spec_deterministic(self):
        assert congested_fabric_spec(7) == congested_fabric_spec(7)
        specs = {congested_fabric_spec(seed) for seed in range(30)}
        assert len(specs) > 1  # actually varies across seeds


def _small_plan(cluster, nm=2):
    from repro.scenarios import build_fuzz_model

    model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
    profiler = Profiler(DEFAULT_CALIBRATION)
    plan = plan_virtual_worker(
        model, cluster.gpus[: len(cluster.gpus)], nm, cluster.interconnect,
        DEFAULT_CALIBRATION, profiler, search_orderings=False,
    )
    return model, plan


class TestPipelineOnFabric:
    def test_virtual_worker_runs_and_conserves(self):
        cluster = paper_cluster("VR", gpus_per_node=1)
        model, plan = _small_plan(cluster)
        sim = Simulator()
        fabric = Fabric(sim, cluster)
        from repro.pipeline.tasks import CountingGate

        pipeline = VirtualWorkerPipeline(
            sim, plan, cluster.interconnect, gate=CountingGate(limit=6), fabric=fabric
        )
        pipeline.start()
        sim.run_until_idle()
        assert pipeline.completed == 6
        fabric.verify()
        assert fabric.flows  # stage traffic actually crossed the fabric
        # the per-edge adapters still account bytes for traffic metrics
        assert pipeline.cross_node_bytes() > 0

    def test_one_f_one_b_runs_on_fabric(self):
        cluster = paper_cluster("VR", gpus_per_node=1)
        model, plan = _small_plan(cluster)
        sim = Simulator()
        fabric = Fabric(sim, cluster)
        pipeline = OneFOneBPipeline(
            sim, plan, cluster.interconnect, limit=6, fabric=fabric
        )
        pipeline.start()
        sim.run_until_idle()
        assert pipeline.completed == 6
        fabric.verify()

    def test_shared_pipeline_not_faster_than_dedicated(self):
        cluster = paper_cluster("VR", gpus_per_node=1)
        model, plan = _small_plan(cluster)
        from repro.pipeline.tasks import CountingGate

        times = {}
        for mode in ("dedicated", "shared"):
            sim = Simulator()
            fabric = Fabric(sim, cluster) if mode == "shared" else None
            pipeline = VirtualWorkerPipeline(
                sim, plan, cluster.interconnect, gate=CountingGate(limit=8),
                fabric=fabric,
            )
            pipeline.start()
            sim.run_until_idle()
            times[mode] = sim.now
        assert times["shared"] >= times["dedicated"] - 1e-12


class TestRuntimeIntegration:
    def _measure(self, network_model):
        cluster = paper_cluster("VR", gpus_per_node=2)
        from repro.allocation import allocate
        from repro.experiments.common import plan_assignment
        from repro.scenarios import build_fuzz_model

        model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
        assignment = allocate(cluster, "NP")
        plans = plan_assignment(model, assignment, 2, cluster)
        return measure_hetpipe(
            cluster, model, plans, d=1, placement="default",
            warmup_waves=2, measured_waves=3, network_model=network_model,
        )

    def test_shared_mode_metrics_flags(self):
        dedicated = self._measure("dedicated")
        shared = self._measure("shared")
        assert dedicated.network_model == "dedicated"
        assert shared.network_model == "shared"
        assert shared.net_queue_delay_total >= 0.0

    def test_shared_makespan_not_faster_than_dedicated(self):
        """Contention can only delay the target global version.

        (Windowed throughput is *not* strictly monotone — both window
        endpoints shift — which is why the oracle compares makespans.)
        """
        cluster = paper_cluster("VRG", gpus_per_node=2)
        from repro.allocation import allocate
        from repro.experiments.common import plan_assignment
        from repro.scenarios import build_fuzz_model

        model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
        plans = plan_assignment(model, allocate(cluster, "NP"), 2, cluster)
        makespans = {}
        for mode in ("dedicated", "shared"):
            runtime = HetPipeRuntime(
                cluster, model, plans, d=1, placement="default", network_model=mode
            )
            runtime.start()
            runtime.run_until_global_version(4)
            makespans[mode] = runtime.sim.now
        assert makespans["shared"] >= makespans["dedicated"] - 1e-12

    def test_unknown_network_model_rejected(self):
        cluster = paper_cluster("VR", gpus_per_node=2)
        from repro.allocation import allocate
        from repro.experiments.common import plan_assignment
        from repro.scenarios import build_fuzz_model

        model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
        plans = plan_assignment(model, allocate(cluster, "NP"), 1, cluster)
        with pytest.raises(ConfigurationError):
            HetPipeRuntime(cluster, model, plans, network_model="infinband")

    def test_fabric_oracle_clean_on_shared_run(self):
        cluster = paper_cluster("VR", gpus_per_node=2)
        from repro.allocation import allocate
        from repro.experiments.common import plan_assignment
        from repro.scenarios import build_fuzz_model

        model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
        plans = plan_assignment(model, allocate(cluster, "NP"), 2, cluster)
        runtime = HetPipeRuntime(
            cluster, model, plans, d=1, oracles=default_oracles(),
            network_model="shared",
        )
        runtime.start()
        runtime.run_until_global_version(3)
        runtime.check_invariants()

    def test_fabric_oracle_noop_on_dedicated_run(self):
        oracle = FabricOracle()
        cluster = paper_cluster("VR", gpus_per_node=2)
        from repro.allocation import allocate
        from repro.experiments.common import plan_assignment
        from repro.scenarios import build_fuzz_model

        model = build_fuzz_model("net", 8, 16, (8, 8, 8, 8), (32,))
        plans = plan_assignment(model, allocate(cluster, "NP"), 1, cluster)
        runtime = HetPipeRuntime(cluster, model, plans, oracles=[oracle])
        runtime.start()
        runtime.run_until_global_version(1)
        oracle.verify_final(runtime)  # no fabric -> no-op


class TestAllreduceOnFabric:
    def test_dedicated_simulation_matches_analytic_model(self):
        cluster = single_type_cluster("V", node_count=2, gpus_per_node=2)
        gpus = cluster.gpus
        simulated = measure_ring_allreduce(cluster, gpus, 64e6)
        analytic = ring_allreduce_time(64e6, gpus)
        assert simulated == pytest.approx(analytic, rel=1e-9)

    def test_intra_node_shared_ring_not_faster_than_dedicated(self):
        # the fabric's PCIe lanes are wider than the calibrated ring
        # bandwidth (a software bound); the rate cap keeps the shared
        # model from beating the dedicated one on one-node rings
        cluster = single_type_cluster("V", node_count=1, gpus_per_node=4)
        dedicated = measure_ring_allreduce(cluster, cluster.gpus, 64e6)
        shared = measure_ring_allreduce(cluster, cluster.gpus, 64e6, network_model="shared")
        assert shared >= dedicated - 1e-12

    def test_shared_rings_contend(self):
        cluster = single_type_cluster("V", node_count=2, gpus_per_node=2)
        gpus = cluster.gpus
        one = measure_ring_allreduce(cluster, gpus, 16e6, network_model="shared")
        three = measure_ring_allreduce(
            cluster, gpus, 16e6, network_model="shared", rings=3
        )
        assert three > one  # concurrent rings share the NICs
        dedicated3 = measure_ring_allreduce(cluster, gpus, 16e6, rings=3)
        dedicated1 = measure_ring_allreduce(cluster, gpus, 16e6, rings=1)
        assert dedicated3 == pytest.approx(dedicated1)  # private links: no interaction

    def test_single_gpu_ring_is_instant(self):
        cluster = single_type_cluster("V")
        assert measure_ring_allreduce(cluster, cluster.gpus[:1], 1e6) == 0.0

    def test_fabric_allreduce_conserves(self):
        cluster = single_type_cluster("V", node_count=2, gpus_per_node=2)
        sim = Simulator()
        fabric = Fabric(sim, cluster)
        finished = []
        simulate_ring_allreduce(
            sim, cluster.gpus, 8e6, fabric=fabric, on_complete=finished.append
        )
        sim.run_until_idle()
        assert len(finished) == 1
        fabric.verify()
        n = len(cluster.gpus)
        total_sent = sum(f.nbytes for f in fabric.flows)
        assert total_sent == pytest.approx(2 * (n - 1) * 8e6)


class TestProfiles:
    def test_known_profiles(self):
        assert set(INTERCONNECT_PROFILES) >= {"grpc_tf112", "nccl_modern"}

    def test_default_profile_matches_spec_defaults(self):
        from repro.cluster.topology import InterconnectSpec

        assert interconnect_profile("grpc_tf112") == InterconnectSpec()

    def test_modern_profile_is_faster(self):
        old = interconnect_profile("grpc_tf112")
        new = interconnect_profile("nccl_modern")
        assert new.ib_effective > old.ib_effective
        assert new.ib_latency < old.ib_latency

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            interconnect_profile("carrier_pigeon")
        with pytest.raises(ConfigurationError):
            paper_cluster(profile="carrier_pigeon")

    def test_paper_cluster_accepts_profile(self):
        cluster = paper_cluster("VR", profile="nccl_modern")
        assert cluster.interconnect.ib_scale == pytest.approx(0.80)
