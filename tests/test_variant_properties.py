"""Property-based tests of the pipeline-variant zoo's memory contracts.

Hypothesis draws random chain models, GPU mixes, pipeline depths, and a
variant from the zoo; for every draw the variant's *analytic* peak-memory
accounting (what memory-limited planning prunes on) must dominate the
*simulated* peak — the in-flight occupancy and stashed-version ledger the
pipeline actually reached under the variant's composed admission gates:

* the planner's per-stage ``memory_bytes`` matches the analytic
  :func:`~repro.models.memory.stage_memory_bytes` under the variant's
  weight policy, and fits the stage's GPU;
* the measured per-stage in-flight peak never exceeds ``Nm`` (admission
  caps the whole pipeline at depth), and at stage 0 — the binding stage
  of §4's accounting, where the analytic worst case is ``Nm`` itself —
  the analytic byte bound therefore dominates the simulated peak bytes;
  every later stage's simulated peak is dominated by the same formula
  evaluated at depth ``Nm``;
* the stashed-version ledger respects the variant's version contract
  (``fixed:k`` variants never pin more than ``k`` distinct versions,
  ``in_flight`` variants never more than ``Nm``) even with weight pulls
  landing at adversarial cadences;
* the composed gates never deadlock — every admitted minibatch drains.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import paper_cluster
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec
from repro.models.memory import (
    gpu_usable_bytes,
    in_flight_at_stage,
    stage_memory_bytes,
)
from repro.partition import plan_virtual_worker
from repro.pipeline.tasks import CountingGate
from repro.pipeline.variants import VARIANT_DEFS, build_variant_gate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim import Simulator

CLUSTER = paper_cluster()


def chain_model(flops_list):
    layers = tuple(
        LayerSpec(
            name=f"l{i}",
            kind="conv",
            flops_fwd=f * 1e9,
            flops_bwd=1.5 * f * 1e9,
            param_bytes=5e5,
            output_bytes=2e6,
            stash_bytes=4e6,
        )
        for i, f in enumerate(flops_list)
    )
    return ModelGraph(name="chain", batch_size=32, input_bytes=2e6, layers=layers)


@st.composite
def variant_case(draw):
    length = draw(st.integers(min_value=4, max_value=10))
    flops = [draw(st.floats(min_value=0.5, max_value=20.0)) for _ in range(length)]
    k = draw(st.integers(min_value=2, max_value=4))
    nm = draw(st.integers(min_value=1, max_value=5))
    gpus = [CLUSTER.gpu(base) for base in draw(
        st.lists(st.sampled_from([0, 4, 8, 12]), min_size=k, max_size=k, unique=True)
    )]
    total = draw(st.integers(min_value=5, max_value=20))
    variant = draw(st.sampled_from(sorted(VARIANT_DEFS)))
    bump_every = draw(st.integers(min_value=1, max_value=5))
    return chain_model(flops), gpus, nm, total, variant, bump_every


@settings(max_examples=30, deadline=None)
@given(case=variant_case())
def test_property_analytic_memory_bound_dominates_simulated_peak(case):
    model, gpus, nm, total, variant, bump_every = case
    variant_def = VARIANT_DEFS[variant]
    policy = variant_def.weight_policy
    plan = plan_virtual_worker(
        model, gpus, nm, CLUSTER.interconnect,
        search_orderings=False, weight_policy=policy,
    )

    # The planner's per-stage accounting IS the analytic bound under the
    # variant's weight policy, and every stage fits its device.
    analytic = []
    for s, stage in enumerate(plan.stages):
        bound = stage_memory_bytes(
            model.layers[stage.start:stage.stop],
            in_flight_at_stage(nm, s),
            DEFAULT_CALIBRATION,
            weight_policy=policy,
        )
        assert math.isclose(stage.memory_bytes, bound, rel_tol=1e-9)
        assert stage.memory_bytes <= gpu_usable_bytes(
            stage.gpu.spec, DEFAULT_CALIBRATION
        )
        analytic.append(bound)

    # Simulate under the variant's composed admission gates, with weight
    # pulls landing every `bump_every` completions (adversarial cadence
    # for the version ledger).
    sim = Simulator()
    gate = build_variant_gate(variant_def, CountingGate(limit=total), nm)
    state = {"pipeline": None, "version": 0}

    def on_done(p: int, now: float) -> None:
        if p % bump_every == 0:
            state["version"] += 1
            state["pipeline"].set_weight_version(state["version"])

    pipeline = VirtualWorkerPipeline(
        sim, plan, CLUSTER.interconnect, gate=gate, on_minibatch_done=on_done
    )
    state["pipeline"] = pipeline
    if hasattr(gate, "attach"):
        gate.attach(pipeline)
    pipeline.set_weight_version(0)
    pipeline.start()
    sim.run_until_idle()

    # Composed gates never deadlock: everything admitted drains.
    assert pipeline.completed == total

    for s in range(len(plan.stages)):
        measured = pipeline.stages[s].peak_in_flight
        assert measured <= nm
        stage = plan.stages[s]
        simulated = stage_memory_bytes(
            model.layers[stage.start:stage.stop],
            max(1, measured),
            DEFAULT_CALIBRATION,
            weight_policy=policy,
        )
        # stage_memory_bytes is monotone in occupancy, so the depth-Nm
        # evaluation dominates every stage's simulated peak; at stage 0
        # that evaluation IS the planner's analytic bound (§4's model is
        # exact there — `max(1, Nm - 0)`), closing the loop between what
        # memory-limited planning prunes on and what the run reached.
        depth_bound = stage_memory_bytes(
            model.layers[stage.start:stage.stop],
            nm,
            DEFAULT_CALIBRATION,
            weight_policy=policy,
        )
        assert simulated <= depth_bound * (1 + 1e-12)
        if s == 0:
            assert math.isclose(depth_bound, analytic[0], rel_tol=1e-9)
            assert simulated <= analytic[0] * (1 + 1e-12)

    # The stashed-version ledger respects the variant's contract.
    bound = variant_def.max_weight_versions(nm)
    if bound is not None:
        assert pipeline.versions_peak <= bound
