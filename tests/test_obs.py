"""The unified telemetry layer (`repro.obs`): spec knobs, digest safety,
Chrome-trace timelines, fast-forward macro-spans, and diagnostics bundles.

The load-bearing contract here is *non-perturbation*: observability off
(the default) must leave spec hashes, trace digests, and every measured
number byte-identical to the historical code path, and observability on
must change telemetry only — never the simulated trajectory.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.api.registry import ORACLES
from repro.api.spec import (
    ClusterSpec,
    ModelSpec,
    ObservabilitySpec,
    PipelineSpec,
    NetworkSpec,
    RunSpec,
)
from repro.cli import main
from repro.errors import InvariantViolation, ReproError, SpecError
from repro.obs import (
    BUNDLE_SCHEMA,
    ObsCollector,
    chrome_trace,
    load_bundle,
    replay_bundle,
    trace_run,
    validate_chrome_trace,
    write_bundle,
)
from repro.scenarios import generate_scenario, run_fuzz, run_scenario
from repro.sim.invariants import RuntimeOracle
from repro.sim.trace import Trace
from repro.wsp.measure import measure_run
from repro.wsp.runtime import HetPipeRuntime

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE_DEMO_SPEC = os.path.join(REPO_ROOT, "examples", "specs", "trace_demo.json")


def small_run_spec(**observability) -> RunSpec:
    return RunSpec(
        kind="scenario",
        seed=7,
        cluster=ClusterSpec(node_codes="VR", gpus_per_node=2),
        model=ModelSpec(
            name="obs-test", batch_size=8, image_size=16,
            conv_widths=(8, 8, 16, 16), fc_dims=(32,),
        ),
        pipeline=PipelineSpec(nm=2, d=1, allocation="ED", warmup_waves=2, measured_waves=4),
        observability=ObservabilitySpec(**observability) if observability else None,
    )


class AlwaysFailOracle(RuntimeOracle):
    """Test-only oracle: trips verify_final unconditionally."""

    def __init__(self) -> None:
        self.bound_runs = 0

    def bind(self, runtime) -> None:
        super().bind(runtime)
        self.bound_runs += 1

    def verify_final(self, runtime) -> None:
        raise InvariantViolation("forced: test oracle always fails")


def forced_failure_suite() -> str:
    """Register (once) and return the name of the always-failing suite."""
    if "always_fail_test" not in ORACLES:
        ORACLES.register("always_fail_test", lambda: [AlwaysFailOracle()])
    return "always_fail_test"


class TestObservabilitySpec:
    def test_disabled_section_normalizes_away(self):
        bare = small_run_spec()
        disabled = replace(bare, observability=ObservabilitySpec(enabled=False))
        assert disabled.observability is None
        assert disabled.spec_hash == bare.spec_hash
        assert disabled.to_json() == bare.to_json()
        assert "observability" not in bare.to_dict()

    def test_enabled_section_round_trips(self):
        run = small_run_spec(enabled=True, sample_every=0.5, ring_buffer=32)
        assert run.spec_hash != small_run_spec().spec_hash
        rebuilt = RunSpec.from_json(run.to_json())
        assert rebuilt == run
        assert rebuilt.observability == ObservabilitySpec(
            enabled=True, sample_every=0.5, ring_buffer=32
        )

    def test_validation(self):
        with pytest.raises(SpecError):
            ObservabilitySpec(enabled="yes")
        with pytest.raises(SpecError):
            ObservabilitySpec(enabled=True, sample_every=-1.0)
        with pytest.raises(SpecError):
            ObservabilitySpec(enabled=True, ring_buffer=0)


class TestDigestSafety:
    def test_instrumented_runtime_keeps_the_digest(self):
        run = small_run_spec()
        digests = []
        for obs in (None, ObsCollector(ObservabilitySpec(enabled=True, sample_every=0.01))):
            trace = Trace(enabled=False, digest=True)
            runtime = HetPipeRuntime.from_spec(run, trace=trace, obs=obs)
            runtime.start()
            runtime.run_until_global_version(
                run.pipeline.warmup_waves + run.pipeline.measured_waves - 1
            )
            digests.append((trace.digest(), runtime.sim.now))
        assert digests[0] == digests[1]

    def test_measure_run_metrics_unchanged_by_telemetry(self):
        plain = measure_run(small_run_spec())
        observed = measure_run(small_run_spec(enabled=True, sample_every=0.01))
        assert observed.observability is not None
        assert plain.observability is None
        assert replace(observed, observability=None) == plain

    def test_capture_diagnostics_keeps_scenario_digest(self):
        spec = generate_scenario(0).spec
        assert run_scenario(spec).digest == run_scenario(
            spec, capture_diagnostics=True
        ).digest


class TestTimeline:
    def test_chrome_trace_structure_and_coverage(self):
        run = replace(
            small_run_spec(enabled=True, sample_every=0.01),
            network=NetworkSpec(model="shared"),
            pipeline=replace(small_run_spec().pipeline, shards=2),
        )
        payload = trace_run(run)
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["schema"] == "hetpipe-timeline/1"
        tracks = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        vws = {t.split(".")[0] for t in tracks if t.startswith("vw")}
        assert len(vws) == 2  # every ED virtual worker of the VR pair has a track
        assert any(t.startswith("ps.apply.") for t in tracks)  # PS shards
        assert any(t.split(".")[0] in ("pcie", "host", "nic", "ib") for t in tracks)
        assert any(ev["ph"] == "i" for ev in payload["traceEvents"])  # annotations
        assert any(ev["ph"] == "C" for ev in payload["traceEvents"])  # samples
        span_args = [
            ev["args"] for ev in payload["traceEvents"]
            if ev["ph"] == "X" and "minibatch" in ev.get("args", {})
        ]
        assert span_args  # stage spans carry minibatch ids

    def test_validator_rejects_malformed_payloads(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": {}}) != []
        errors = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "", "ts": -1, "dur": "x"}]}
        )
        assert len(errors) >= 2

    def test_trace_cli_on_checked_in_example(self, tmp_path, capsys):
        out = str(tmp_path / "run.trace.json")
        assert main(["trace", TRACE_DEMO_SPEC, "--out", out]) == 0
        assert "perfetto" in capsys.readouterr().out.lower()
        payload = json.load(open(out))
        assert validate_chrome_trace(payload) == []
        tracks = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert {t.split(".")[0] for t in tracks if t.startswith("vw")} == {
            "vw0", "vw1", "vw2"
        }
        assert any(t.startswith("ps.apply.") for t in tracks)
        assert any(t.split(".")[0] in ("pcie", "host", "nic", "ib") for t in tracks)

    def test_trace_cli_rejects_non_scenario_specs(self, tmp_path, capsys):
        grid = os.path.join(REPO_ROOT, "examples", "specs", "planner_grid.json")
        assert main(["trace", grid, "--out", str(tmp_path / "x.json")]) == 2
        assert "scenario" in capsys.readouterr().err


class TestFastForwardMacroSpans:
    def test_coalesced_cycles_become_macro_spans(self):
        # Seed 4 draws zero jitter, so its steady state actually skips.
        spec = generate_scenario(4).spec
        run = replace(
            spec.to_run_spec(fidelity="fast_forward", verify_equivalence=False),
            observability=ObservabilitySpec(enabled=True),
        )
        collector = ObsCollector(run.observability)
        measure_run(run, obs=collector)
        macro = [s for s in collector.spans if s.name.startswith("fast_forward x")]
        assert macro and collector.counters["fast_forward"] == len(macro)
        for span in macro:
            assert span.end - span.start == pytest.approx(span.args["dt"])
        payload = chrome_trace(collector)
        assert validate_chrome_trace(payload) == []
        assert any(
            ev["ph"] == "X" and ev["name"].startswith("fast_forward x")
            for ev in payload["traceEvents"]
        )


class TestDiagnosticsBundle:
    def _failing_result(self):
        run = replace(small_run_spec(), oracles=forced_failure_suite())
        result = run_scenario(run, capture_diagnostics=True)
        return run, result

    def test_forced_violation_captures_diagnostics(self):
        _, result = self._failing_result()
        assert any("forced:" in v for v in result.violations)
        diag = result.diagnostics
        assert diag is not None
        assert diag["violations"] == list(result.violations)
        assert diag["trace_ring"]  # the ring saw the run's tail
        assert "AlwaysFailOracle" in diag["oracle_state"]
        assert diag["snapshots"]["sim"]["events_processed"] > 0

    def test_bundle_round_trips_and_replays(self, tmp_path):
        run, result = self._failing_result()
        path = write_bundle(str(tmp_path), run, result.diagnostics)
        for name in (
            "spec.json", "bundle.json", "trace_ring.json",
            "oracle_state.json", "snapshots.json", "README.txt",
        ):
            assert os.path.exists(os.path.join(path, name))
        manifest = json.load(open(os.path.join(path, "bundle.json")))
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["spec_hash"] == run.spec_hash
        assert "repro.cli run" in manifest["replay"]
        bundle = load_bundle(path)
        assert bundle.run == run
        assert bundle.violations == result.violations
        replayed = replay_bundle(bundle)
        assert replayed.violations == result.violations
        assert replayed.digest == result.digest

    def test_load_rejects_non_bundles(self, tmp_path):
        with pytest.raises(ReproError):
            load_bundle(str(tmp_path))

    def test_run_fuzz_writes_bundles_for_failures(self, tmp_path, monkeypatch):
        import repro.scenarios.runner as runner

        suite = forced_failure_suite()
        original = runner._fuzz_run_spec

        def forced(*args, **kwargs):
            return replace(original(*args, **kwargs), oracles=suite)

        monkeypatch.setattr(runner, "_fuzz_run_spec", forced)
        report = run_fuzz([0], jobs=1, bundle_dir=str(tmp_path))
        assert report.failures
        path = report.bundle_paths[0]
        assert os.path.isdir(path)
        assert "bundle:" in report.summary()
        assert load_bundle(path).violations


class TestObsReport:
    def test_report_counts_and_resource_coverage(self):
        metrics = measure_run(small_run_spec(enabled=True, sample_every=0.01))
        report = metrics.observability
        assert report.spans > 0
        assert report.annotations > 0
        assert report.samples > 0
        # Some minibatches are still in flight when measurement stops.
        assert report.counters["inject"] >= report.counters["minibatch_done"] > 0
        assert any(name.startswith("ps.") for name in report.utilization)
        assert any(name.endswith(".gpu0") for name in report.utilization)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in report.utilization.values())
