"""HetPipe runtime integration: D gating, placement traffic, accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.partition import plan_virtual_worker
from repro.wsp import measure_hetpipe
from repro.wsp.runtime import HetPipeRuntime


@pytest.fixture(scope="module")
def ed_plans(cluster, resnet152, profiler):
    plans = []
    for slot in range(4):
        vw = [node.gpus[slot] for node in cluster.nodes]
        plans.append(
            plan_virtual_worker(
                resnet152, vw, 2, cluster.interconnect,
                DEFAULT_CALIBRATION, profiler, search_orderings=False,
            )
        )
    return plans


@pytest.fixture(scope="module")
def np_plans(cluster, vgg19, profiler):
    """NP: one VW per node — heterogeneous speeds, stragglers."""
    return [
        plan_virtual_worker(
            vgg19, node.gpus, 2, cluster.interconnect,
            DEFAULT_CALIBRATION, profiler, search_orderings=False,
        )
        for node in cluster.nodes
    ]


@pytest.fixture(scope="module")
def np_res_plans(cluster, resnet152, profiler):
    """NP over ResNet-152: small params -> sync is cheap, so the speed
    difference between VVVV and QQQQ/GGGG pipes dominates and D-gating
    effects are clearly visible."""
    return [
        plan_virtual_worker(
            resnet152, node.gpus, 2, cluster.interconnect,
            DEFAULT_CALIBRATION, profiler, search_orderings=False,
        )
        for node in cluster.nodes
    ]


class TestRuntimeBasics:
    def test_runs_to_global_version(self, cluster, resnet152, ed_plans):
        runtime = HetPipeRuntime(cluster, resnet152, ed_plans, d=0, placement="local")
        runtime.start()
        runtime.run_until_global_version(2)
        assert runtime.ps.global_version >= 2
        # every VW pushed at least 3 waves of Nm=2 minibatches
        assert all(s.minibatches_done >= 6 for s in runtime.stats)

    def test_requires_matching_nm(self, cluster, resnet152, ed_plans, profiler):
        odd = plan_virtual_worker(
            resnet152, [n.gpus[0] for n in cluster.nodes], 3,
            cluster.interconnect, DEFAULT_CALIBRATION, profiler, search_orderings=False,
        )
        with pytest.raises(ConfigurationError):
            HetPipeRuntime(cluster, resnet152, [odd, *ed_plans[1:]], d=0)

    def test_requires_plans(self, cluster, resnet152):
        with pytest.raises(ConfigurationError):
            HetPipeRuntime(cluster, resnet152, [], d=0)


class TestDGating:
    def test_d0_keeps_clock_distance_at_most_one(self, cluster, vgg19, np_plans):
        """D=0 is BSP-like: no VW can finish wave c+1 before everyone
        finished wave c, so pushed-wave spread stays <= 1."""
        runtime = HetPipeRuntime(cluster, vgg19, np_plans, d=0, placement="default")
        runtime.start()
        max_spread = 0

        original = runtime.ps._push_recorded

        def spy(vw, wave, cb):
            nonlocal max_spread
            original(vw, wave, cb)
            waves = runtime.ps.pushed_wave
            max_spread = max(max_spread, max(waves) - max(min(waves), -1))

        runtime.ps._push_recorded = spy
        runtime.run_until_global_version(3)
        assert max_spread <= 1 + 1  # one wave in flight plus the push just recorded

    def test_larger_d_lets_fast_vws_run_ahead(self, cluster, resnet152, np_res_plans):
        spreads = {}
        for d in (0, 4):
            runtime = HetPipeRuntime(cluster, resnet152, np_res_plans, d=d, placement="default")
            runtime.start()
            runtime.run_until_global_version(4)
            spreads[d] = max(runtime.ps.pushed_wave) - runtime.ps.global_version
        assert spreads[4] > spreads[0]
        assert spreads[4] <= 4 + 1

    def test_larger_d_reduces_waiting(self, cluster, resnet152, np_res_plans):
        waits = {}
        for d in (0, 4):
            metrics = measure_hetpipe(
                cluster, resnet152, np_res_plans, d=d, placement="default",
                warmup_waves=2, measured_waves=4,
            )
            waits[d] = metrics.avg_wait_per_wave
        assert waits[4] < waits[0]

    def test_straggler_np_gains_throughput_with_d(self, cluster, resnet152, np_res_plans):
        """With heterogeneous VWs, bounded staleness absorbs stragglers
        between syncs — throughput rises substantially with D (the §8.4
        'larger D has a greater effect for NP' observation)."""
        t0 = measure_hetpipe(
            cluster, resnet152, np_res_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=4,
        ).throughput
        t4 = measure_hetpipe(
            cluster, resnet152, np_res_plans, d=4, placement="default",
            warmup_waves=2, measured_waves=4,
        ).throughput
        assert t4 > t0 * 1.2


class TestPlacementTraffic:
    def test_local_placement_zero_cross_node_sync(self, cluster, resnet152, ed_plans):
        """§8.3: local placement incurs 'no actual network traffic
        across the nodes for parameter synchronization'."""
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="local",
            warmup_waves=2, measured_waves=4,
        )
        assert metrics.sync_cross_node_bytes_per_wave == 0.0

    def test_default_placement_pays_cross_node_sync(self, cluster, resnet152, ed_plans):
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=4,
        )
        # push+pull of (H-1)/H of the parameters per wave
        expected = 2 * resnet152.param_bytes * 3 / 4
        assert metrics.sync_cross_node_bytes_per_wave == pytest.approx(expected, rel=0.05)

    def test_local_faster_than_default_for_big_params(self, cluster, vgg19, profiler):
        plans = []
        for slot in range(4):
            vw = [node.gpus[slot] for node in cluster.nodes]
            plans.append(
                plan_virtual_worker(
                    vgg19, vw, 2, cluster.interconnect,
                    DEFAULT_CALIBRATION, profiler, search_orderings=False,
                )
            )
        local = measure_hetpipe(cluster, vgg19, plans, d=0, placement="local",
                                warmup_waves=2, measured_waves=4).throughput
        default = measure_hetpipe(cluster, vgg19, plans, d=0, placement="default",
                                  warmup_waves=2, measured_waves=4).throughput
        assert local > default


class TestShardedPS:
    def test_shard_bytes_account_for_all_sync_traffic(
        self, cluster, resnet152, ed_plans
    ):
        """Every synchronized byte is attributed to exactly one shard
        slot: the per-slot ledgers must sum to the PS total exactly."""
        runtime = HetPipeRuntime(
            cluster, resnet152, ed_plans, d=0,
            shards=4, shard_placement="size_balanced",
        )
        runtime.start()
        runtime.run_until_global_version(3)
        assert len(runtime.ps.shard_bytes) == 4
        assert all(nbytes > 0 for nbytes in runtime.ps.shard_bytes)
        assert sum(runtime.ps.shard_bytes) == pytest.approx(
            runtime.ps.sync_bytes_total, rel=1e-12
        )

    def test_locality_aware_sharding_zero_cross_node_under_ed(
        self, cluster, resnet152, ed_plans
    ):
        """Locality-aware shards sit on the stage's own node under ED,
        so like 'local' placement the sync traffic never crosses nodes."""
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0,
            shards=4, shard_placement="locality_aware",
            warmup_waves=2, measured_waves=4,
        )
        assert metrics.sync_cross_node_bytes_per_wave == 0.0
        assert metrics.shards == 4
        assert metrics.shard_placement == "locality_aware"

    def test_invalid_shards_rejected(self, cluster, resnet152, ed_plans):
        with pytest.raises(ConfigurationError):
            HetPipeRuntime(cluster, resnet152, ed_plans, d=0, shards=0)
        with pytest.raises(ConfigurationError):
            HetPipeRuntime(cluster, resnet152, ed_plans, d=0, shards=True)


class TestWaveAggregation:
    def test_per_minibatch_push_moves_more_bytes(self, cluster, resnet152, ed_plans):
        wave = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=3,
        )
        per_mb = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=3, push_every_minibatch=True,
        )
        assert per_mb.sync_cross_node_bytes_per_wave > wave.sync_cross_node_bytes_per_wave * 1.4

    def test_wave_aggregation_not_slower(self, cluster, resnet152, ed_plans):
        wave = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=3,
        )
        per_mb = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="default",
            warmup_waves=2, measured_waves=3, push_every_minibatch=True,
        )
        assert wave.throughput >= per_mb.throughput * 0.98


class TestMetricsShape:
    def test_total_concurrent_minibatches(self, cluster, resnet152, ed_plans):
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="local",
            warmup_waves=2, measured_waves=3,
        )
        assert metrics.total_concurrent_minibatches == 2 * 4

    def test_idle_fraction_bounded(self, cluster, resnet152, ed_plans):
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="local",
            warmup_waves=2, measured_waves=3,
        )
        assert 0.0 <= metrics.idle_fraction_of_wait <= 1.0

    def test_per_vw_minibatches_positive(self, cluster, resnet152, ed_plans):
        metrics = measure_hetpipe(
            cluster, resnet152, ed_plans, d=0, placement="local",
            warmup_waves=2, measured_waves=3,
        )
        assert all(done > 0 for done in metrics.per_vw_minibatches)
