"""Experiment harness: shape and paper-claim checks on reduced runs.

These are integration tests of the full stack (cluster -> planner ->
pipeline -> WSP -> baselines).  They use shortened measurement windows;
the benchmarks regenerate the full tables.
"""

import pytest

from repro.cluster import paper_cluster
from repro.allocation import allocate
from repro.experiments.common import (
    TARGET_ACCURACY,
    build_model,
    choose_nm,
    fig3_virtual_workers,
    hetpipe_assignment_for_subset,
)
from repro.experiments.fig3_single_vw import PAPER_FIG3_NM1, run_fig3
from repro.experiments.fig4_multi_vw import run_fig4
from repro.experiments.table4_whimpy import run_table4


class TestCommon:
    def test_fig3_mixes_match_paper_set(self, cluster):
        mixes = fig3_virtual_workers(cluster)
        assert set(mixes) == {"VVVV", "VRGQ", "RRRR", "VVQQ", "GGGG", "RRGG", "QQQQ"}
        for name, gpus in mixes.items():
            assert "".join(g.code for g in gpus) == name

    def test_choose_nm_respects_cap(self, cluster, resnet152):
        assignment = allocate(cluster, "ED")
        choice = choose_nm(build_model("resnet152"), assignment, cluster)
        assert 1 <= choice.nm <= choice.max_feasible
        assert all(plan.nm == choice.nm for plan in choice.plans)

    def test_subset_assignments(self):
        cluster, assignment = hetpipe_assignment_for_subset("V")
        assert assignment.num_virtual_workers == 1
        cluster, assignment = hetpipe_assignment_for_subset("VR")
        assert assignment.num_virtual_workers == 4
        assert assignment.codes() == ["VR"] * 4

    def test_targets_defined_for_both_models(self):
        assert set(TARGET_ACCURACY) == {"vgg19", "resnet152"}


@pytest.mark.slow
class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3("resnet152", max_nm=3, measured_minibatches=16)

    def test_all_mixes_present(self, result):
        assert {row.mix for row in result.rows} == set(PAPER_FIG3_NM1["resnet152"])

    def test_throughput_rises_with_nm(self, result):
        for mix in ("VVVV", "QQQQ", "VRGQ"):
            series = [row.throughput for row in result.rows if row.mix == mix]
            assert series == sorted(series)

    def test_normalization(self, result):
        for row in result.rows:
            if row.nm == 1:
                assert row.normalized == pytest.approx(1.0)
            else:
                assert row.normalized > 1.0

    def test_nm1_absolute_within_band_of_paper(self, result):
        """Calibration check: every Nm=1 mix within 35% of Fig 3."""
        for mix, paper in PAPER_FIG3_NM1["resnet152"].items():
            ours = result.nm1_throughput(mix)
            assert paper * 0.65 < ours < paper * 1.35, (mix, ours, paper)

    def test_homogeneous_order_v_r_g_q(self, result):
        rates = [result.nm1_throughput(m) for m in ("VVVV", "RRRR", "GGGG", "QQQQ")]
        assert rates == sorted(rates, reverse=True)

    def test_render(self, result):
        text = result.render()
        assert "VVVV" in text and "Figure 3" in text


@pytest.mark.slow
class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4("resnet152", measured_waves=4)

    def test_bars_present(self, result):
        labels = [bar.label for bar in result.bars]
        assert labels == ["Horovod", "NP", "ED", "ED-local", "HD"]

    def test_horovod_uses_twelve_gpus_for_resnet(self, result):
        assert result.bar("Horovod").gpus == 12

    def test_hetpipe_uses_all_sixteen(self, result):
        assert result.bar("ED-local").gpus == 16

    def test_ed_local_beats_horovod(self, result):
        """The paper's headline Fig-4 relation for ResNet-152."""
        assert result.bar("ED-local").throughput > result.bar("Horovod").throughput

    def test_ed_local_has_zero_sync_traffic(self, result):
        assert result.bar("ED-local").cross_node_sync_mib_per_wave == 0.0
        assert result.bar("ED").cross_node_sync_mib_per_wave > 0.0

    def test_render(self, result):
        assert "Horovod" in result.render()


@pytest.mark.slow
class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4("resnet152", measured_waves=4)

    def test_all_subsets(self, result):
        assert [row.subset for row in result.rows] == ["V", "VR", "VRQ", "VRQG"]

    def test_resnet_horovod_infeasible_at_16(self, result):
        """Table 4's 'X': ResNet-152 cannot run DP on the G node."""
        assert result.row("VRQG").horovod is None
        assert result.row("VRQ").horovod is not None

    def test_hetpipe_beats_horovod_everywhere(self, result):
        for row in result.rows:
            if row.horovod is not None:
                assert row.hetpipe > row.horovod * 0.95

    def test_whimpy_gpus_speed_up_training(self, result):
        """The paper's 'up to 2.3x' claim: 16 whimpy-augmented GPUs vs
        the single high-end node."""
        assert result.speedup_from_whimpy() > 1.5

    def test_concurrent_minibatches_scale(self, result):
        assert result.row("VRQG").concurrent > result.row("V").concurrent

    def test_render(self, result):
        assert "X" in result.render()  # the infeasibility marker
