"""GPipe-style flush variant (§2.3 comparison)."""

import pytest

from repro.pipeline import measure_flush_pipeline, measure_pipeline
from repro.pipeline.variants import GPipeFlushGate


class TestFlushGate:
    def test_wave_zero_admitted_immediately(self):
        gate = GPipeFlushGate(nm=4, limit=100)
        assert all(gate.may_start(p) for p in (1, 2, 3, 4))

    def test_wave_one_blocked_until_flush(self):
        gate = GPipeFlushGate(nm=4, limit=100)
        assert not gate.may_start(5)
        for _ in range(4):
            gate.on_done()
        assert gate.may_start(5)

    def test_limit_respected(self):
        gate = GPipeFlushGate(nm=2, limit=2)
        assert not gate.may_start(3)

    def test_wake_called_on_done(self):
        gate = GPipeFlushGate(nm=2, limit=10)
        hits = []
        gate.subscribe(lambda: hits.append(True))
        gate.on_done()
        assert hits == [True]


class TestFlushPenalty:
    def test_flush_is_slower_than_continuous(self, vvvv_plan, cluster):
        """The §2.3 claim: GPipe's per-wave flush leaves bubbles that
        HetPipe's continuous pipeline fills."""
        continuous = measure_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=24
        ).throughput
        flush = measure_flush_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=24
        )
        assert flush < continuous

    def test_flush_penalty_meaningful(self, vvvv_plan, cluster):
        continuous = measure_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=24
        ).throughput
        flush = measure_flush_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=24
        )
        assert flush < 0.95 * continuous

    def test_flush_still_beats_naive_mp(self, vvvv_plan, cluster):
        """Even with flushes, intra-wave pipelining beats Nm=1 serial
        execution (GPipe is still useful — just worse than HetPipe)."""
        flush = measure_flush_pipeline(
            vvvv_plan, cluster.interconnect, 32, measured_minibatches=24
        )
        naive_rate = 32 / vvvv_plan.serial_latency
        assert flush > naive_rate
