"""Processor and Channel semantics: FIFO service, accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Channel, Processor, Simulator


class TestProcessor:
    def test_jobs_run_fifo(self):
        sim = Simulator()
        proc = Processor(sim)
        done = []
        proc.submit(2.0, lambda: done.append(("a", sim.now)))
        proc.submit(1.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 2.0), ("b", 3.0)]

    def test_busy_time_accumulates_service_time(self):
        sim = Simulator()
        proc = Processor(sim)
        proc.submit(2.0)
        proc.submit(3.0)
        sim.run()
        assert proc.busy_time == pytest.approx(5.0)
        assert proc.jobs_completed == 2

    def test_utilization(self):
        sim = Simulator()
        proc = Processor(sim)
        proc.submit(2.0)
        sim.schedule(4.0, lambda: None)  # extend the clock to 4s
        sim.run()
        assert proc.utilization() == pytest.approx(0.5)

    def test_utilization_counts_inflight_work(self):
        sim = Simulator()
        proc = Processor(sim)
        proc.submit(10.0)
        sim.run(until=5.0)
        assert proc.utilization() == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        proc = Processor(Simulator())
        with pytest.raises(SimulationError):
            proc.submit(-1.0)

    def test_zero_elapsed_utilization_is_zero(self):
        assert Processor(Simulator()).utilization() == 0.0

    def test_submission_from_callback_queues_fifo(self):
        sim = Simulator()
        proc = Processor(sim)
        done = []

        def first():
            done.append("first")
            proc.submit(1.0, lambda: done.append("from-callback"))

        proc.submit(1.0, first)
        proc.submit(1.0, lambda: done.append("second"))
        sim.run()
        assert done == ["first", "second", "from-callback"]

    def test_state_change_listener_sees_transitions(self):
        sim = Simulator()
        proc = Processor(sim)
        transitions = []
        proc.on_state_change = lambda busy: transitions.append((busy, sim.now))
        proc.submit(1.0)
        proc.submit(1.0)
        sim.run()
        # busy at 0, idle at 2 (back-to-back jobs do not toggle)
        assert transitions == [(True, 0.0), (False, 2.0)]

    def test_queue_depth(self):
        sim = Simulator()
        proc = Processor(sim)
        proc.submit(1.0)
        proc.submit(1.0)
        proc.submit(1.0)
        assert proc.queue_depth == 2  # one executing, two queued
        sim.run()
        assert proc.queue_depth == 0


class TestChannel:
    def test_transfer_time_unloaded(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=100.0, latency=0.5)
        assert link.transfer_time(200) == pytest.approx(2.5)

    def test_transfers_serialize(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=100.0)
        done = []
        link.transfer(100, lambda: done.append(sim.now))
        link.transfer(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_latency_pipelines_between_messages(self):
        # latency delays delivery but does not occupy the link
        sim = Simulator()
        link = Channel(sim, bandwidth=100.0, latency=1.0)
        done = []
        link.transfer(100, lambda: done.append(sim.now))
        link.transfer(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_bytes_moved_accounting(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=10.0)
        link.transfer(30)
        link.transfer(20)
        sim.run()
        assert link.bytes_moved == 50
        assert link.transfers_completed == 2

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            Channel(Simulator(), bandwidth=0.0)

    def test_negative_latency(self):
        with pytest.raises(SimulationError):
            Channel(Simulator(), bandwidth=1.0, latency=-1.0)

    def test_negative_size(self):
        link = Channel(Simulator(), bandwidth=1.0)
        with pytest.raises(SimulationError):
            link.transfer(-5)

    def test_utilization(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=10.0)
        link.transfer(10)  # occupies 1s
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert link.utilization() == pytest.approx(0.25)

    def test_idle_gap_then_transfer(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=10.0)
        done = []
        sim.schedule(5.0, lambda: link.transfer(10, lambda: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(6.0)]

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6, allow_nan=False), min_size=1, max_size=30)
    )
    def test_property_completion_times_monotone_and_work_conserving(self, sizes):
        sim = Simulator()
        link = Channel(sim, bandwidth=1000.0)
        completions = []
        for nbytes in sizes:
            link.transfer(nbytes, lambda: completions.append(sim.now))
        sim.run()
        assert completions == sorted(completions)
        # FIFO with no latency: last completion is exactly total bytes / bw
        assert completions[-1] == pytest.approx(sum(sizes) / 1000.0)

    def test_queue_delay_and_depth_accounting(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=10.0)
        link.transfer(10)  # starts immediately, no wait
        link.transfer(10)  # waits 1s behind the first
        link.transfer(10)  # waits 2s
        assert link.queue_delay_total == pytest.approx(3.0)
        assert link.max_queue_depth == 2  # two transfers waiting at once
        sim.run()

    def test_unloaded_transfers_record_no_queueing(self):
        sim = Simulator()
        link = Channel(sim, bandwidth=10.0, latency=0.5)
        done = []
        link.transfer(10, lambda: done.append(sim.now))
        sim.schedule(10.0, lambda: link.transfer(10, lambda: done.append(sim.now)))
        sim.run()
        assert link.queue_delay_total == 0.0
        assert link.max_queue_depth == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # submit gap
                st.floats(min_value=1.0, max_value=1e5, allow_nan=False),  # size
            ),
            min_size=1,
            max_size=25,
        ),
        st.floats(min_value=0.0, max_value=0.1, allow_nan=False),  # latency
    )
    def test_property_fifo_occupancy_never_overlaps_and_latency_pipelines(
        self, submissions, latency
    ):
        """Channel FIFO laws, for arbitrary arrival processes:

        * occupancy intervals are disjoint (utilization <= 1 always),
        * back-to-back transfers pipeline the latency: each completion
          is exactly its occupancy end + latency,
        * queue delay totals the per-transfer waits exactly.
        """
        bandwidth = 100.0
        sim = Simulator()
        link = Channel(sim, bandwidth=bandwidth, latency=latency)
        intervals: list[tuple[float, float, float]] = []  # (submit, start, end)
        completions: list[float] = []
        t = 0.0
        for gap, nbytes in submissions:
            t += gap

            def submit(nbytes=nbytes):
                submit_time = sim.now
                expected_start = max(sim.now, link._free_at)
                link.transfer(nbytes, lambda: completions.append(sim.now))
                intervals.append((submit_time, expected_start, link._free_at))

            sim.schedule_at(t, submit)
        sim.run()

        assert len(completions) == len(submissions)
        expected_delay = 0.0
        prev_end = 0.0
        for (submit, start, end), done in zip(intervals, completions):
            # queued transfers never overlap occupancy of earlier ones
            assert start >= prev_end - 1e-12
            prev_end = end
            # latency pipelines: delivered exactly `latency` after the
            # link frees, regardless of queueing
            assert done == pytest.approx(end + latency)
            expected_delay += start - submit
        assert link.queue_delay_total == pytest.approx(expected_delay)
        # disjoint occupancy implies utilization can never exceed 1
        assert link.utilization(prev_end) <= 1.0 + 1e-12
        assert link.busy_time == pytest.approx(
            sum(size / bandwidth for _, size in submissions)
        )
