"""Property tests of the parameter server's clock protocol.

Hypothesis drives random interleavings of pushes from N workers (each
worker's waves strictly sequential, as the runtime guarantees) and
checks the §5 clock invariants at every step:

* ``global_version == min(pushed_wave)`` always;
* a version waiter fires exactly once, and never before its version;
* pushes queued behind an in-flight push apply strictly in order.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import paper_cluster
from repro.models.calibration import DEFAULT_CALIBRATION
from repro.sim import Simulator
from repro.wsp.parameter_server import ParameterServerSim

CLUSTER = paper_cluster()


@st.composite
def push_schedule(draw):
    """A random interleaving of per-worker wave pushes with delays."""
    n_workers = draw(st.integers(min_value=2, max_value=4))
    waves_per_worker = draw(st.integers(min_value=1, max_value=5))
    order = []
    for w in range(n_workers):
        order += [w] * waves_per_worker
    order = draw(st.permutations(order))
    delays = [draw(st.floats(min_value=0.0, max_value=0.02)) for _ in order]
    sizes = [draw(st.floats(min_value=1e4, max_value=5e7)) for _ in order]
    return n_workers, waves_per_worker, list(order), delays, sizes


@settings(max_examples=30, deadline=None)
@given(schedule=push_schedule())
def test_property_global_version_is_min_of_pushed(schedule):
    n_workers, waves_per_worker, order, delays, sizes = schedule
    sim = Simulator()
    server = ParameterServerSim(sim, CLUSTER, n_workers, DEFAULT_CALIBRATION)

    observed = []

    original = server._push_recorded

    def spy(vw, wave, cb):
        original(vw, wave, cb)
        observed.append((list(server.pushed_wave), server.global_version))

    server._push_recorded = spy

    next_wave = [0] * n_workers
    clock = 0.0
    for worker, delay, size in zip(order, delays, sizes):
        clock += delay
        wave = next_wave[worker]
        next_wave[worker] += 1
        sim.schedule_at(
            clock,
            (
                lambda worker=worker, wave=wave, size=size: server.push(
                    worker, wave, [(worker % 4, [((worker + 1) % 4, size)])]
                )
            ),
        )
    sim.run_until_idle()

    # every push landed
    assert server.pushed_wave == [waves_per_worker - 1] * n_workers
    assert server.global_version == waves_per_worker - 1
    # the invariant held at every recording point
    for pushed, version in observed:
        assert version == min(pushed)
    # versions observed are monotone
    versions = [v for _, v in observed]
    assert versions == sorted(versions)


@settings(max_examples=30, deadline=None)
@given(
    desired=st.integers(min_value=0, max_value=3),
    waves=st.integers(min_value=1, max_value=5),
)
def test_property_waiters_fire_exactly_once_and_never_early(desired, waves):
    sim = Simulator()
    server = ParameterServerSim(sim, CLUSTER, 2, DEFAULT_CALIBRATION)
    fires = []
    server.when_version(desired, lambda: fires.append(server.global_version))

    for wave in range(waves):
        for worker in (0, 1):
            server.push(worker, wave, [(0, [(1, 1e6)])])
        sim.run_until_idle()

    if waves - 1 >= desired:
        assert len(fires) == 1
        assert fires[0] >= desired
    else:
        assert fires == []


@settings(max_examples=20, deadline=None)
@given(burst=st.integers(min_value=2, max_value=6))
def test_property_backlogged_pushes_apply_in_wave_order(burst):
    """Fire a worker's waves back-to-back (transfers still in flight):
    they must record strictly in order."""
    sim = Simulator()
    server = ParameterServerSim(sim, CLUSTER, 1, DEFAULT_CALIBRATION)
    recorded = []

    original = server._push_recorded

    def spy(vw, wave, cb):
        original(vw, wave, cb)
        recorded.append(wave)

    server._push_recorded = spy
    for wave in range(burst):
        server.push(0, wave, [(0, [(1, 2e7)])])
    sim.run_until_idle()
    assert recorded == list(range(burst))
    assert server.global_version == burst - 1
