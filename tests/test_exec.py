"""Sweep executor: deterministic striping, parallel == serial output."""

import multiprocessing
import os

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.exec import resolve_jobs, stripe_indices, sweep_map
from repro.scenarios import run_fuzz


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError("item 3 exploded")
    return x


def _flaky_exit(arg):
    """Kill the whole process on item 4 until ``counter`` reaches 2.

    ``os._exit`` models a segfault/OOM kill: no exception, no pickle,
    just a dead worker.  An empty counter path dies unconditionally
    (the poisoned-item case)."""
    x, counter = arg
    if x == 4:
        if not counter:
            os._exit(13)
        seen = int(open(counter).read()) if os.path.exists(counter) else 0
        if seen < 2:
            with open(counter, "w") as fh:
                fh.write(str(seen + 1))
            os._exit(13)
    return x * 10


class TestStripes:
    def test_round_robin_deal(self):
        assert stripe_indices(10, 4) == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_covers_every_index_exactly_once(self):
        for n in (0, 1, 5, 17):
            for jobs in (1, 2, 3, 8):
                flat = sorted(i for s in stripe_indices(n, jobs) for i in s)
                assert flat == list(range(n))

    def test_no_empty_stripes(self):
        assert stripe_indices(2, 8) == [[0], [1]]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            stripe_indices(4, 0)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_means_cpu_count(self):
        import os

        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)


class TestSweepMap:
    def test_serial_results_in_order(self):
        assert sweep_map(_square, range(7), jobs=1) == [i * i for i in range(7)]

    def test_parallel_equals_serial(self):
        serial = sweep_map(_square, range(11), jobs=1)
        parallel = sweep_map(_square, range(11), jobs=4)
        assert parallel == serial

    def test_more_jobs_than_items(self):
        assert sweep_map(_square, [5], jobs=8) == [25]
        assert sweep_map(_square, [], jobs=8) == []

    def test_on_result_fires_in_item_order_serial_and_parallel(self):
        for jobs in (1, 3):
            seen = []
            sweep_map(_square, range(6), jobs=jobs, on_result=lambda i, r: seen.append((i, r)))
            assert seen == [(i, i * i) for i in range(6)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            sweep_map(_boom, range(6), jobs=2)
        with pytest.raises(ValueError):
            sweep_map(_boom, range(6), jobs=1)


class TestWorkerDeath:
    """A dying worker process must never hang or poison the batch."""

    def test_transient_death_recovers_via_isolated_retries(self, tmp_path):
        # The stripe worker dies once, then the first isolated retry
        # dies too; the second isolated attempt succeeds — the batch
        # completes with every result intact and in order.
        counter = str(tmp_path / "deaths")
        items = [(i, counter) for i in range(8)]
        assert sweep_map(_flaky_exit, items, jobs=2) == [i * 10 for i in range(8)]

    def test_poisoned_item_raises_typed_error_naming_its_index(self):
        items = [(i, "") for i in range(8)]
        with pytest.raises(WorkerCrashError) as err:
            sweep_map(_flaky_exit, items, jobs=2)
        assert err.value.item_index == 4
        assert "item 4" in str(err.value)

    def test_no_orphan_processes_after_a_crash(self):
        with pytest.raises(WorkerCrashError):
            sweep_map(_flaky_exit, [(i, "") for i in range(8)], jobs=3)
        assert multiprocessing.active_children() == []

    def test_healthy_items_unaffected_by_sibling_stripe_death(self, tmp_path):
        counter = str(tmp_path / "deaths")
        items = [(i, counter) for i in range(9)]
        results = sweep_map(_flaky_exit, items, jobs=3)
        assert results == [i * 10 for i in range(9)]


class TestFuzzParallelDeterminism:
    """The acceptance check: ``--jobs 4`` digests == ``--jobs 1`` digests."""

    def test_fifty_seeds_bit_identical_across_jobs(self):
        serial = run_fuzz(range(50), jobs=1)
        parallel = run_fuzz(range(50), jobs=4)
        assert [r.spec.seed for r in parallel.results] == list(range(50))
        assert [r.digest for r in parallel.results] == [
            r.digest for r in serial.results
        ]
        assert [r.violations for r in parallel.results] == [
            r.violations for r in serial.results
        ]
        assert parallel.total_violations == 0

    def test_verbose_log_lines_identical_across_jobs(self):
        lines = {}
        for jobs in (1, 2):
            buffer = []
            run_fuzz(range(6), verbose_log=buffer.append, jobs=jobs)
            lines[jobs] = buffer
        assert lines[1] == lines[2]
        assert len(lines[1]) == 6
