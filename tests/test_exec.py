"""Sweep executor: deterministic striping, parallel == serial output."""

import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigurationError, ItemTimeoutError, WorkerCrashError
from repro.exec import resolve_jobs, stripe_indices, sweep_map
from repro.scenarios import run_fuzz


def _square(x):
    return x * x


def _hang_on(arg):
    """Sleep far past any test watchdog on the marked item."""
    x, hang = arg
    if x == hang:
        time.sleep(120)
    return x * 10


def _hang_until_marked(arg):
    """Hang only while the marker file is absent, then drop the marker.

    First execution of the marked item hangs (watchdog fires); the
    isolated retry sees the marker and completes — the transient-hang
    model (a load spike, not a pathological item).
    """
    x, marker = arg
    if x == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("seen")
        time.sleep(120)
    return x * 10


def _boom(x):
    if x == 3:
        raise ValueError("item 3 exploded")
    return x


def _flaky_exit(arg):
    """Kill the whole process on item 4 until ``counter`` reaches 2.

    ``os._exit`` models a segfault/OOM kill: no exception, no pickle,
    just a dead worker.  An empty counter path dies unconditionally
    (the poisoned-item case)."""
    x, counter = arg
    if x == 4:
        if not counter:
            os._exit(13)
        seen = int(open(counter).read()) if os.path.exists(counter) else 0
        if seen < 2:
            with open(counter, "w") as fh:
                fh.write(str(seen + 1))
            os._exit(13)
    return x * 10


class TestStripes:
    def test_round_robin_deal(self):
        assert stripe_indices(10, 4) == [[0, 4, 8], [1, 5, 9], [2, 6], [3, 7]]

    def test_covers_every_index_exactly_once(self):
        for n in (0, 1, 5, 17):
            for jobs in (1, 2, 3, 8):
                flat = sorted(i for s in stripe_indices(n, jobs) for i in s)
                assert flat == list(range(n))

    def test_no_empty_stripes(self):
        assert stripe_indices(2, 8) == [[0], [1]]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            stripe_indices(4, 0)


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_means_cpu_count(self):
        import os

        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)


class TestSweepMap:
    def test_serial_results_in_order(self):
        assert sweep_map(_square, range(7), jobs=1) == [i * i for i in range(7)]

    def test_parallel_equals_serial(self):
        serial = sweep_map(_square, range(11), jobs=1)
        parallel = sweep_map(_square, range(11), jobs=4)
        assert parallel == serial

    def test_more_jobs_than_items(self):
        assert sweep_map(_square, [5], jobs=8) == [25]
        assert sweep_map(_square, [], jobs=8) == []

    def test_on_result_fires_in_item_order_serial_and_parallel(self):
        for jobs in (1, 3):
            seen = []
            sweep_map(_square, range(6), jobs=jobs, on_result=lambda i, r: seen.append((i, r)))
            assert seen == [(i, i * i) for i in range(6)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            sweep_map(_boom, range(6), jobs=2)
        with pytest.raises(ValueError):
            sweep_map(_boom, range(6), jobs=1)


class TestWorkerDeath:
    """A dying worker process must never hang or poison the batch."""

    def test_transient_death_recovers_via_isolated_retries(self, tmp_path):
        # The stripe worker dies once, then the first isolated retry
        # dies too; the second isolated attempt succeeds — the batch
        # completes with every result intact and in order.
        counter = str(tmp_path / "deaths")
        items = [(i, counter) for i in range(8)]
        assert sweep_map(_flaky_exit, items, jobs=2) == [i * 10 for i in range(8)]

    def test_poisoned_item_raises_typed_error_naming_its_index(self):
        items = [(i, "") for i in range(8)]
        with pytest.raises(WorkerCrashError) as err:
            sweep_map(_flaky_exit, items, jobs=2)
        assert err.value.item_index == 4
        assert "item 4" in str(err.value)

    def test_no_orphan_processes_after_a_crash(self):
        with pytest.raises(WorkerCrashError):
            sweep_map(_flaky_exit, [(i, "") for i in range(8)], jobs=3)
        assert multiprocessing.active_children() == []

    def test_healthy_items_unaffected_by_sibling_stripe_death(self, tmp_path):
        counter = str(tmp_path / "deaths")
        items = [(i, counter) for i in range(9)]
        results = sweep_map(_flaky_exit, items, jobs=3)
        assert results == [i * 10 for i in range(9)]


class TestStreaming:
    """``on_stream`` fires per completed item in completion order —
    the hook ``repro sweep --store`` persists through."""

    def test_stream_fires_for_every_item(self):
        for jobs in (1, 3):
            streamed = []
            sweep_map(
                _square, range(9), jobs=jobs,
                on_stream=lambda i, r: streamed.append((i, r)),
            )
            assert sorted(streamed) == [(i, i * i) for i in range(9)]

    def test_serial_stream_precedes_in_order_delivery(self):
        order = []
        sweep_map(
            _square, range(4), jobs=1,
            on_stream=lambda i, r: order.append(("stream", i)),
            on_result=lambda i, r: order.append(("result", i)),
        )
        assert order == [
            (phase, i) for i in range(4) for phase in ("stream", "result")
        ]

    def test_on_result_stays_in_order_alongside_streaming(self):
        ordered = []
        sweep_map(
            _square, range(12), jobs=4,
            on_stream=lambda i, r: None,
            on_result=lambda i, r: ordered.append(i),
        )
        assert ordered == list(range(12))


class TestWatchdog:
    """A hung item must neither hang the sweep nor take healthy
    results down with it."""

    def test_pathological_item_raises_typed_error_naming_its_index(self):
        items = [(i, 3) for i in range(6)]
        with pytest.raises(ItemTimeoutError) as err:
            sweep_map(_hang_on, items, jobs=2, timeout=0.5)
        assert err.value.item_index == 3
        assert "item 3" in str(err.value)
        assert multiprocessing.active_children() == []

    def test_transient_hang_recovers_via_isolated_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        items = [(i, marker) for i in range(6)]
        results = sweep_map(_hang_until_marked, items, jobs=2, timeout=1.0)
        assert results == [i * 10 for i in range(6)]

    def test_completed_items_stream_before_the_timeout_aborts(self, tmp_path):
        streamed = []
        items = [(i, 4) for i in range(6)]
        with pytest.raises(ItemTimeoutError):
            sweep_map(
                _hang_on, items, jobs=2, timeout=0.5,
                on_stream=lambda i, r: streamed.append(i),
            )
        assert 0 in streamed  # worker 0's first item landed before the abort

    def test_timeout_forces_process_path_even_serial(self):
        # jobs=1 with a watchdog still spawns a killable worker; a hang
        # must not wedge the parent.
        with pytest.raises(ItemTimeoutError):
            sweep_map(_hang_on, [(3, 3)], jobs=1, timeout=0.5)

    def test_generous_timeout_changes_nothing(self):
        assert sweep_map(_square, range(8), jobs=1, timeout=60.0) == [
            i * i for i in range(8)
        ]
        assert sweep_map(_square, range(8), jobs=3, timeout=60.0) == [
            i * i for i in range(8)
        ]

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_map(_square, range(4), timeout=0.0)


class TestFuzzParallelDeterminism:
    """The acceptance check: ``--jobs 4`` digests == ``--jobs 1`` digests."""

    def test_fifty_seeds_bit_identical_across_jobs(self):
        serial = run_fuzz(range(50), jobs=1)
        parallel = run_fuzz(range(50), jobs=4)
        assert [r.spec.seed for r in parallel.results] == list(range(50))
        assert [r.digest for r in parallel.results] == [
            r.digest for r in serial.results
        ]
        assert [r.violations for r in parallel.results] == [
            r.violations for r in serial.results
        ]
        assert parallel.total_violations == 0

    def test_verbose_log_lines_identical_across_jobs(self):
        lines = {}
        for jobs in (1, 2):
            buffer = []
            run_fuzz(range(6), verbose_log=buffer.append, jobs=jobs)
            lines[jobs] = buffer
        assert lines[1] == lines[2]
        assert len(lines[1]) == 6
