"""Pipeline engine: §4 scheduling conditions, staleness ledger, metrics."""

import pytest

from repro.errors import StalenessViolation
from repro.models.memory import in_flight_at_stage
from repro.pipeline import measure_pipeline, wave_minibatches, wave_of
from repro.pipeline.tasks import CountingGate, OpenGate
from repro.pipeline.virtual_worker import VirtualWorkerPipeline
from repro.sim import Simulator, Trace


def run_pipeline(plan, interconnect, total=30, jitter=0.0):
    """Run ``total`` minibatches through a fresh pipeline; return (pipeline, trace)."""
    sim = Simulator()
    trace = Trace()
    pipeline = VirtualWorkerPipeline(
        sim, plan, interconnect, gate=CountingGate(limit=total), trace=trace, jitter=jitter,
    )
    pipeline.start()
    sim.run_until_idle()
    assert pipeline.completed == total
    return pipeline, trace


class TestWaveArithmetic:
    def test_wave_of(self):
        assert [wave_of(p, 4) for p in (1, 4, 5, 8, 9)] == [0, 0, 1, 1, 2]

    def test_wave_minibatches(self):
        assert list(wave_minibatches(0, 4)) == [1, 2, 3, 4]
        assert list(wave_minibatches(2, 3)) == [7, 8, 9]

    def test_roundtrip(self):
        for nm in (1, 3, 5):
            for wave in range(4):
                for p in wave_minibatches(wave, nm):
                    assert wave_of(p, nm) == wave


class TestSchedulingConditions:
    def test_forwards_in_minibatch_order_per_stage(self, vvvv_plan, cluster):
        _, trace = run_pipeline(vvvv_plan, cluster.interconnect)
        for s in range(vvvv_plan.k - 1):
            done = [r.detail["minibatch"] for r in trace.filter("f_done", f"vw0.s{s}")]
            assert done == sorted(done)

    def test_backwards_in_minibatch_order_per_stage(self, vvvv_plan, cluster):
        _, trace = run_pipeline(vvvv_plan, cluster.interconnect)
        for s in range(vvvv_plan.k - 1):
            done = [r.detail["minibatch"] for r in trace.filter("b_done", f"vw0.s{s}")]
            assert done == sorted(done)

    def test_last_stage_runs_fused_tasks(self, vvvv_plan, cluster):
        _, trace = run_pipeline(vvvv_plan, cluster.interconnect)
        last = vvvv_plan.k - 1
        assert len(trace.filter("fb_done", f"vw0.s{last}")) == 30
        assert not trace.filter("f_done", f"vw0.s{last}")

    def test_completions_in_order(self, vvvv_plan, cluster):
        _, trace = run_pipeline(vvvv_plan, cluster.interconnect)
        done = [r.detail["minibatch"] for r in trace.filter("minibatch_done")]
        assert done == list(range(1, 31))

    def test_admission_bounded_by_nm(self, vvvv_plan, cluster):
        pipeline, trace = run_pipeline(vvvv_plan, cluster.interconnect)
        # reconstruct active counts from the trace
        active = 0
        peak = 0
        events = sorted(
            [(r.time, 1) for r in trace.filter("inject")]
            + [(r.time, -1) for r in trace.filter("minibatch_done")]
        )
        for _, delta in events:
            active += delta
            peak = max(peak, active)
        assert peak <= vvvv_plan.nm

    def test_fifo_on_shared_stage_processor(self, vvvv_plan, cluster):
        """Condition 3: tasks on a GPU execute in readiness order —
        the processor never runs two tasks at once (busy time equals
        the sum of task durations within the run)."""
        pipeline, _ = run_pipeline(vvvv_plan, cluster.interconnect)
        for s, state in enumerate(pipeline.stages):
            stage = vvvv_plan.stages[s]
            if s == vvvv_plan.k - 1:
                expected = 30 * (stage.fwd_compute + stage.bwd_compute)
            else:
                expected = 30 * (stage.fwd_compute + stage.bwd_compute)
            assert state.processor.busy_time == pytest.approx(expected)


class TestStaleness:
    def test_ledger_respects_local_staleness(self, vvvv_plan, cluster):
        pipeline, _ = run_pipeline(vvvv_plan, cluster.interconnect)
        slocal = vvvv_plan.nm - 1
        for p, seen_updates in pipeline.staleness_ledger.items():
            assert seen_updates >= p - 1 - slocal

    def test_injection_raises_on_violation(self, vvvv_plan, cluster):
        sim = Simulator()
        pipeline = VirtualWorkerPipeline(
            sim, vvvv_plan, cluster.interconnect, gate=OpenGate(), slocal=0
        )
        # slocal=0 but Nm=4 admissions -> violation on the second inject
        with pytest.raises(StalenessViolation):
            pipeline.start()


class TestMemoryBehaviour:
    def test_peak_in_flight_never_exceeds_nm(self, vvvv_plan, cluster):
        """Hard bound: admission caps concurrent minibatches at Nm, so
        no stage can ever hold more than Nm in flight.  (The planner's
        per-stage model `in_flight_at_stage` is a steady-state
        approximation and is separately sanity-checked below.)"""
        pipeline, _ = run_pipeline(vvvv_plan, cluster.interconnect)
        for peak in pipeline.peak_in_flight():
            assert peak <= vvvv_plan.nm

    def test_analytic_in_flight_model_is_monotone(self, vvvv_plan):
        bounds = [in_flight_at_stage(vvvv_plan.nm, s) for s in range(vvvv_plan.k)]
        assert bounds[0] == vvvv_plan.nm
        assert bounds == sorted(bounds, reverse=True)

    def test_first_stage_reaches_full_depth(self, vvvv_plan, cluster):
        pipeline, _ = run_pipeline(vvvv_plan, cluster.interconnect)
        assert pipeline.peak_in_flight()[0] == vvvv_plan.nm


class TestMetrics:
    def test_throughput_positive_and_bounded(self, vvvv_plan, cluster, vgg19):
        metrics = measure_pipeline(vvvv_plan, cluster.interconnect, 32, measured_minibatches=20)
        assert metrics.throughput > 0
        # cannot beat the compute-only bottleneck (comm overlaps compute,
        # so the full `period` including comm is not a valid bound)
        # (5% tolerance: the finite measurement window is delimited by
        # completion events, so it can slightly undercount service time)
        compute_bottleneck = max(s.fwd_compute + s.bwd_compute for s in vvvv_plan.stages)
        assert metrics.minibatch_rate <= 1.0 / compute_bottleneck * 1.05

    def test_deeper_pipeline_is_faster(self, cluster, vgg19, profiler):
        from repro.models.calibration import DEFAULT_CALIBRATION
        from repro.partition import plan_virtual_worker

        rates = []
        for nm in (1, 2, 4):
            plan = plan_virtual_worker(
                vgg19, cluster.gpus[0:4], nm, cluster.interconnect,
                DEFAULT_CALIBRATION, profiler, search_orderings=False,
            )
            rates.append(
                measure_pipeline(plan, cluster.interconnect, 32, measured_minibatches=20).throughput
            )
        assert rates[0] < rates[1] < rates[2]

    def test_utilization_rises_with_nm(self, cluster, vgg19, profiler):
        from repro.models.calibration import DEFAULT_CALIBRATION
        from repro.partition import plan_virtual_worker

        utils = []
        for nm in (1, 4):
            plan = plan_virtual_worker(
                vgg19, cluster.gpus[0:4], nm, cluster.interconnect,
                DEFAULT_CALIBRATION, profiler, search_orderings=False,
            )
            utils.append(
                measure_pipeline(plan, cluster.interconnect, 32, measured_minibatches=20).max_utilization
            )
        assert utils[1] > utils[0]
        assert utils[1] <= 1.0

    def test_homogeneous_vw_has_no_cross_node_traffic(self, vvvv_plan, cluster):
        metrics = measure_pipeline(vvvv_plan, cluster.interconnect, 32, measured_minibatches=10)
        assert metrics.cross_node_bytes_per_minibatch == 0.0

    def test_heterogeneous_vw_has_cross_node_traffic(self, ed_plan, cluster):
        metrics = measure_pipeline(ed_plan, cluster.interconnect, 32, measured_minibatches=10)
        assert metrics.cross_node_bytes_per_minibatch > 0.0

    def test_jitter_keeps_pipeline_correct(self, vvvv_plan, cluster):
        pipeline, trace = run_pipeline(vvvv_plan, cluster.interconnect, total=20, jitter=0.1)
        done = [r.detail["minibatch"] for r in trace.filter("minibatch_done")]
        assert done == list(range(1, 21))


class TestLifecycle:
    def test_double_start_rejected(self, vvvv_plan, cluster):
        from repro.errors import SimulationError

        sim = Simulator()
        pipeline = VirtualWorkerPipeline(sim, vvvv_plan, cluster.interconnect, gate=CountingGate(limit=1))
        pipeline.start()
        with pytest.raises(SimulationError):
            pipeline.start()

    def test_stop_drains_in_flight(self, vvvv_plan, cluster):
        sim = Simulator()
        pipeline = VirtualWorkerPipeline(sim, vvvv_plan, cluster.interconnect, gate=CountingGate(limit=100))
        pipeline.start()
        sim.run(max_events=50)
        pipeline.stop()
        sim.run_until_idle()
        assert pipeline.completed == pipeline.next_minibatch - 1 - pipeline.active
        assert pipeline.active == 0
